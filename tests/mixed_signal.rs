//! Cross-crate mixed-signal integration: the full testbench under every
//! controller, checking regulation, safety, and the paper's qualitative
//! orderings on short runs.

use a4a::scenario::{self, ControllerKind};
use a4a::TestbenchBuilder;
use a4a_analog::{metrics, BuckParams};
use a4a_ctrl::{AsyncController, AsyncTiming, BuckController, SyncController, SyncParams};

#[test]
fn all_five_controllers_regulate_and_never_short() {
    for kind in ControllerKind::paper_series() {
        let ctrl = scenario::controller(kind, 4);
        let mut tb = scenario::fig6().build(ctrl);
        tb.run_until(5e-6);
        let v = tb.buck().output_voltage();
        assert!(
            v > 3.0 && v < 3.6,
            "{}: v = {v} after startup",
            kind.label()
        );
        assert_eq!(tb.short_circuits(), 0, "{}", kind.label());
    }
}

#[test]
fn async_reaction_is_orders_faster_than_100mhz() {
    // Time from the UV comparator event to the first PMOS turn-on.
    let first_gp_on = |w: &a4a_analog::Waveform| -> Option<f64> {
        let uv = w
            .events
            .iter()
            .find(|(_, n, v)| n == "uv" && *v)
            .map(|(t, _, _)| *t)?;
        let gp = w
            .events
            .iter()
            .find(|(t, n, v)| n.name().starts_with("gp") && *v && *t > uv)
            .map(|(t, _, _)| *t)?;
        Some(gp - uv)
    };
    let run = |kind: ControllerKind| -> f64 {
        let ctrl = scenario::controller(kind, 4);
        let mut tb = scenario::fig6().build(ctrl);
        tb.run_until(1e-6);
        first_gp_on(tb.waveform()).expect("a charging cycle started")
    };
    let sync = run(ControllerKind::Sync(100.0));
    let asy = run(ControllerKind::Async);
    assert!(
        sync > 4.0 * asy,
        "sync {sync:.3e}s should be several times async {asy:.3e}s"
    );
}

#[test]
fn high_load_step_triggers_hl_and_recovers() {
    let ctrl = AsyncController::new(4, AsyncTiming::default());
    let mut tb = scenario::fig6().build(ctrl);
    tb.run_until(scenario::FIG6_T_END);
    let w = tb.waveform();
    // HL fires at startup and again at the 7 us load step.
    let hl_rises: Vec<f64> = w
        .events
        .iter()
        .filter(|(_, n, v)| n == "hl" && *v)
        .map(|(t, _, _)| *t)
        .collect();
    assert!(!hl_rises.is_empty());
    assert!(hl_rises[0] < 1e-6, "startup HL");
    // Recovered by the end.
    let v = tb.buck().output_voltage();
    assert!(v > 3.0 && v < 3.6, "v = {v}");
}

#[test]
fn ov_mode_engages_on_overshoot() {
    // Drive a scenario engineered to overshoot: light load after a heavy
    // startup dumps the in-flight coil energy into the cap.
    let ctrl = AsyncController::new(4, AsyncTiming::default());
    let mut tb = TestbenchBuilder::new()
        .params(BuckParams::default().with_load(6.0))
        .load_step(3e-6, 60.0)
        .build(ctrl);
    tb.run_until(8e-6);
    let w = tb.waveform();
    let ov = w.events.iter().any(|(_, n, v)| n == "ov" && *v);
    let mode = w.events.iter().any(|(_, n, v)| n == "ov_mode" && *v);
    assert!(ov, "load dump must overshoot past V_max");
    assert!(mode, "controller must switch the current references");
    // And it must come back down close to the target.
    let v = tb.buck().output_voltage();
    assert!(v < 3.5, "v = {v} after OV resolution");
}

#[test]
fn phase_currents_balance_across_the_ring() {
    let ctrl = AsyncController::new(4, AsyncTiming::default());
    let mut tb = scenario::sweep_coil(4.7, 6.0).build(ctrl);
    tb.run_until(8e-6);
    let w = tb.into_waveform().window(3e-6, 8e-6);
    let dcs: Vec<f64> = (0..4).map(|k| metrics::dc_current(&w, k)).collect();
    let max = dcs.iter().cloned().fold(f64::MIN, f64::max);
    let min = dcs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max - min < 0.6 * max.max(1e-3),
        "round-robin should roughly balance the phases: {dcs:?}"
    );
}

#[test]
fn sync_controller_scales_with_clock() {
    // Peak current overshoot shrinks monotonically with clock frequency.
    let peak = |mhz: f64| -> f64 {
        let ctrl = SyncController::new(4, SyncParams::at_mhz(mhz));
        let mut tb = scenario::sweep_coil(1.0, 6.0).build(ctrl);
        tb.run_until(6e-6);
        metrics::peak_current(tb.waveform())
    };
    let p100 = peak(100.0);
    let p1000 = peak(1000.0);
    assert!(
        p100 > p1000,
        "100 MHz peak {p100} should exceed 1 GHz peak {p1000}"
    );
}

#[test]
fn single_phase_testbench_with_basic_controller() {
    let ctrl = a4a_ctrl::BasicBuckController::new();
    assert_eq!(ctrl.phases(), 1);
    let mut tb = TestbenchBuilder::new()
        .params(BuckParams::default().with_phases(1).with_load(30.0))
        .build(ctrl);
    tb.run_until(10e-6);
    let v = tb.buck().output_voltage();
    assert!(v > 3.0 && v < 3.6, "v = {v}");
    assert_eq!(tb.short_circuits(), 0);
}
