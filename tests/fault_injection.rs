//! Fault-injection tier: seeded adversarial scenarios against the
//! discrete-event scheduler, the analog buck, and the mixed-signal
//! testbench.
//!
//! Every scenario comes from `a4a_rt::fault::plans` — a SplitMix64-split
//! batch of [`FaultPlan`]s, deterministic per master seed. The contract
//! under test is uniform: an injected fault must either surface as a
//! typed [`SimError`] or leave the component's invariants intact.
//! **Library code must never panic** — a panic anywhere in this suite is
//! a bug in the simulation stack, not in the test.
//!
//! Reproduce a run exactly with `A4A_PROP_SEED=<hex u64>`:
//!
//! ```text
//! A4A_PROP_SEED=0xDEAD_BEEF cargo test --test fault_injection
//! ```

use a4a::TestbenchBuilder;
use a4a_analog::{Buck, BuckParams};
use a4a_ctrl::{AsyncController, AsyncTiming};
use a4a_rt::fault::{self, FaultKind, FaultPlan};
use a4a_rt::Rng;
use a4a_sim::{EventKey, Scheduler, SimError, Time};

/// Scenario count — at least 50 per the fault-tier acceptance bar, and a
/// multiple of `FaultKind::ALL.len()` so every family runs equally often.
const SCENARIOS: usize = 60;

/// Master seed: `A4A_PROP_SEED` (hex, optional `0x` prefix) or a fixed
/// default. Same convention as the `a4a_rt::prop` harness, so one env
/// var replays both tiers.
fn master_seed() -> u64 {
    match std::env::var("A4A_PROP_SEED") {
        Ok(v) => {
            let v = v.trim().trim_start_matches("0x");
            u64::from_str_radix(v, 16)
                .unwrap_or_else(|_| panic!("A4A_PROP_SEED={v:?} is not a hex u64"))
        }
        Err(_) => 0xA4A_FA17_5EED,
    }
}

#[test]
fn fault_injection_suite() {
    let seed = master_seed();
    let batch = fault::plans(seed, SCENARIOS);
    assert!(batch.len() >= 50, "fault tier must run at least 50 scenarios");
    for plan in &batch {
        run_scenario(plan);
    }
}

/// The batch itself is a pure function of the master seed — a rerun with
/// the same `A4A_PROP_SEED` replays identical scenarios.
#[test]
fn fault_plans_replay_deterministically() {
    let seed = master_seed();
    assert_eq!(fault::plans(seed, SCENARIOS), fault::plans(seed, SCENARIOS));
    for kind in FaultKind::ALL {
        assert!(
            fault::plans(seed, SCENARIOS).iter().any(|p| p.kind == kind),
            "{kind:?} not covered by the suite"
        );
    }
}

fn run_scenario(plan: &FaultPlan) {
    let mut rng = plan.rng();
    match plan.kind {
        FaultKind::CancelAfterPop => cancel_after_pop(&mut rng),
        FaultKind::DoubleCancel => double_cancel(&mut rng),
        FaultKind::ForeignKey => foreign_key(&mut rng),
        FaultKind::EqualTimestampFlood => equal_timestamp_flood(&mut rng),
        FaultKind::NearMaxArithmetic => near_max_arithmetic(&mut rng),
        FaultKind::PastEvent => past_event(&mut rng),
        FaultKind::InterleavedChurn => interleaved_churn(&mut rng),
        FaultKind::NanAnalogParam => nan_analog_param(&mut rng),
        FaultKind::NegativeAnalogParam => negative_analog_param(&mut rng),
        FaultKind::HugeAnalogParam => huge_analog_param(&mut rng),
        FaultKind::BadStep => bad_step(&mut rng),
        FaultKind::AdversarialTestbench => adversarial_testbench(&mut rng),
    }
}

fn random_times(rng: &mut Rng, n: usize) -> Vec<Time> {
    (0..n).map(|_| Time::from_fs(rng.u64_below(100_000))).collect()
}

/// Regression for the pre-PR3 `len()` underflow: keys whose events were
/// already delivered must be rejected by `cancel`, and `len()` must stay
/// exact through arbitrarily many stale-cancel attempts.
fn cancel_after_pop(rng: &mut Rng) {
    let mut sched: Scheduler<u32> = Scheduler::new();
    let n = 4 + rng.usize_below(24);
    let keys: Vec<EventKey> = random_times(rng, n)
        .into_iter()
        .enumerate()
        .map(|(i, t)| sched.schedule(t, i as u32))
        .collect();
    let delivered = 1 + rng.usize_below(n);
    for _ in 0..delivered {
        assert!(sched.pop().is_some());
    }
    // `pop` delivers in (time, seq) order, not key order — replay which
    // keys went out by re-deriving the delivery order from the model.
    // Simpler and airtight: after `delivered` pops, exactly
    // `n - delivered` keys are live; every cancel of a stale key must
    // return false without touching `len()`.
    let mut live = n - delivered;
    assert_eq!(sched.len(), live);
    for &key in &keys {
        let before = sched.len();
        if sched.cancel(key) {
            live -= 1;
            assert_eq!(sched.len(), before - 1);
        } else {
            assert_eq!(sched.len(), before, "stale cancel mutated len()");
            assert!(matches!(sched.try_cancel(key), Err(SimError::StaleKey)));
        }
    }
    assert_eq!(sched.len(), live);
    // The old implementation panicked (usize underflow) right here.
    for &key in &keys {
        assert!(!sched.cancel(key), "second pass must reject everything");
    }
    assert_eq!(sched.len(), live);
    while sched.pop().is_some() {}
    assert_eq!(sched.len(), 0);
}

fn double_cancel(rng: &mut Rng) {
    let mut sched: Scheduler<u32> = Scheduler::new();
    let keys: Vec<EventKey> = random_times(rng, 8)
        .into_iter()
        .enumerate()
        .map(|(i, t)| sched.schedule(t, i as u32))
        .collect();
    let victim = keys[rng.usize_below(keys.len())];
    assert!(sched.cancel(victim));
    assert_eq!(sched.len(), keys.len() - 1);
    for _ in 0..1 + rng.usize_below(10) {
        assert!(!sched.cancel(victim), "double cancel must be rejected");
        assert!(matches!(sched.try_cancel(victim), Err(SimError::StaleKey)));
        assert_eq!(sched.len(), keys.len() - 1);
    }
    let mut popped = 0;
    while sched.pop().is_some() {
        popped += 1;
    }
    assert_eq!(popped, keys.len() - 1, "cancelled event must not deliver");
}

fn foreign_key(rng: &mut Rng) {
    let mut minting: Scheduler<u32> = Scheduler::new();
    let foreign: Vec<EventKey> = random_times(rng, 12)
        .into_iter()
        .enumerate()
        .map(|(i, t)| minting.schedule(t, i as u32))
        .collect();
    let mut victim: Scheduler<u32> = Scheduler::new();
    for &key in &foreign {
        assert!(!victim.cancel(key), "empty scheduler accepted a foreign key");
        assert!(matches!(victim.try_cancel(key), Err(SimError::StaleKey)));
    }
    assert_eq!(victim.len(), 0);
    assert!(victim.is_empty());
    // And the victim still works normally afterwards.
    let k = victim.schedule(Time::from_fs(1), 7);
    assert!(victim.cancel(k));
    assert_eq!(victim.len(), 0);
}

fn equal_timestamp_flood(rng: &mut Rng) {
    let mut sched: Scheduler<u32> = Scheduler::new();
    let t = Time::from_fs(rng.u64_below(1_000_000));
    let n = 16 + rng.usize_below(48);
    let keys: Vec<EventKey> = (0..n).map(|i| sched.schedule(t, i as u32)).collect();
    let mut alive: Vec<u32> = (0..n as u32).collect();
    // Cancel a random subset (possibly none, possibly all).
    for (i, &key) in keys.iter().enumerate() {
        if rng.next_f64() < 0.4 {
            assert!(sched.cancel(key));
            alive.retain(|&v| v != i as u32);
        }
    }
    assert_eq!(sched.len(), alive.len());
    // Survivors must come out in FIFO order at exactly t.
    let mut delivered = Vec::new();
    while let Some((when, ev)) = sched.pop() {
        assert_eq!(when, t, "equal-timestamp flood delivered off-time");
        delivered.push(ev);
    }
    assert_eq!(delivered, alive, "FIFO order broken under flood + cancel");
    assert_eq!(sched.len(), 0);
}

fn near_max_arithmetic(rng: &mut Rng) {
    // Time-level checks: arithmetic near the sentinel must saturate (the
    // operator form) or report (the checked form), never wrap.
    let a = Time::from_fs(fault::near_max_u64(rng, 1 << 20));
    let b = Time::from_fs(1 + rng.u64_below(1 << 21));
    assert_eq!(a.saturating_add(b).as_fs(), a.as_fs().saturating_add(b.as_fs()));
    assert_eq!(a.checked_add(b), a.as_fs().checked_add(b.as_fs()).map(Time::from_fs));

    // Scheduler-level: advance `now` to within a hair of Time::MAX,
    // then demand an overflowing relative schedule.
    let mut sched: Scheduler<u32> = Scheduler::new();
    let near = Time::from_fs(fault::near_max_u64(rng, 1000));
    sched.schedule(near, 0);
    assert_eq!(sched.pop(), Some((near, 0)));
    assert_eq!(sched.now(), near);
    let overflow_delay = Time::from_fs(u64::MAX - near.as_fs() + 1 + rng.u64_below(1000));
    match sched.try_schedule_after(overflow_delay, 1) {
        Err(SimError::TimeOverflow { .. }) => {}
        other => panic!("expected TimeOverflow, got {other:?}"),
    }
    assert_eq!(sched.len(), 0, "failed schedule must not enqueue");
    // The panicking wrapper keeps the saturating "never" semantics.
    let k = sched.schedule_after(overflow_delay, 2);
    assert_eq!(sched.next_time(), Some(Time::MAX));
    assert!(sched.cancel(k));
    // Absolute scheduling at MAX itself stays legal (the sentinel).
    sched.schedule(Time::MAX, 3);
    assert_eq!(sched.pop(), Some((Time::MAX, 3)));
}

fn past_event(rng: &mut Rng) {
    let mut sched: Scheduler<u32> = Scheduler::new();
    let now = Time::from_fs(1000 + rng.u64_below(1_000_000));
    sched.schedule(now, 0);
    assert!(sched.pop().is_some());
    assert_eq!(sched.now(), now);
    for _ in 0..8 {
        let stale = Time::from_fs(rng.u64_below(now.as_fs()));
        match sched.try_schedule(stale, 1) {
            Err(SimError::PastEvent { time, now: reported }) => {
                assert_eq!(time, stale);
                assert_eq!(reported, now);
            }
            other => panic!("expected PastEvent, got {other:?}"),
        }
        assert_eq!(sched.len(), 0, "rejected event must not enqueue");
    }
    // Present-time scheduling is legal and the scheduler still works.
    sched.schedule(now, 2);
    assert_eq!(sched.pop(), Some((now, 2)));
}

fn interleaved_churn(rng: &mut Rng) {
    // Model-based churn: the scheduler against a plain-Vec reference.
    let mut sched: Scheduler<u64> = Scheduler::new();
    let mut model: Vec<(Time, u64, EventKey)> = Vec::new();
    let mut next_id = 0u64;
    for _ in 0..200 {
        match rng.u64_below(4) {
            0 | 1 => {
                let t = sched.now() + Time::from_fs(rng.u64_below(10_000));
                let key = sched.schedule(t, next_id);
                model.push((t, next_id, key));
                next_id += 1;
            }
            2 if !model.is_empty() => {
                let i = rng.usize_below(model.len());
                let (_, _, key) = model.swap_remove(i);
                assert!(sched.cancel(key));
            }
            _ => {
                let expect = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, id, _))| (t, id))
                    .map(|(i, _)| i);
                match expect {
                    Some(i) => {
                        let (t, id, _) = model.remove(i);
                        assert_eq!(sched.peek_time(), Some(t));
                        assert_eq!(sched.pop(), Some((t, id)));
                    }
                    None => assert_eq!(sched.pop(), None),
                }
            }
        }
        assert_eq!(sched.len(), model.len(), "len() drifted from the model");
    }
}

/// Sets one field of a parameter set, selected by `field`, to `value`.
fn poison_param(params: &mut BuckParams, field: usize, value: f64) -> &'static str {
    match field % 9 {
        0 => {
            params.vin = value;
            "vin"
        }
        1 => {
            params.cap = value;
            "cap"
        }
        2 => {
            params.rload = value;
            "rload"
        }
        3 => {
            params.rdson_p = value;
            "rdson_p"
        }
        4 => {
            params.rdson_n = value;
            "rdson_n"
        }
        5 => {
            params.vdiode = value;
            "vdiode"
        }
        6 => {
            params.coil.inductance = value;
            "coil.inductance"
        }
        7 => {
            params.coil.dcr = value;
            "coil.dcr"
        }
        _ => {
            params.coil.esr_hf = value;
            "coil.esr_hf"
        }
    }
}

fn nan_analog_param(rng: &mut Rng) {
    let mut params = BuckParams::default();
    let field = poison_param(&mut params, rng.usize_below(9), f64::NAN);
    match Buck::try_new(params) {
        Err(SimError::InvalidParameter { .. }) => {}
        other => panic!("NaN {field} accepted: {other:?}"),
    }
}

fn negative_analog_param(rng: &mut Rng) {
    let mut params = BuckParams::default();
    let value = -rng.f64_range(1e-12, 1e6);
    let field = poison_param(&mut params, rng.usize_below(9), value);
    match Buck::try_new(params) {
        Err(SimError::InvalidParameter { .. }) => {}
        other => panic!("negative {field} ({value}) accepted: {other:?}"),
    }
}

/// Arbitrary adversarial values (huge, denormal, infinite, NaN, zero…)
/// into one parameter: construction either rejects with a typed error or
/// the resulting model survives stepping with finite state.
fn huge_analog_param(rng: &mut Rng) {
    let mut params = BuckParams::default();
    let value = fault::adversarial_f64(rng);
    let field = poison_param(&mut params, rng.usize_below(9), value);
    match Buck::try_new(params) {
        Err(SimError::InvalidParameter { .. }) => {}
        Err(other) => panic!("{field}={value}: wrong error class {other:?}"),
        Ok(mut buck) => {
            buck.set_switch(0, true, false);
            for _ in 0..50 {
                match buck.try_step(1e-9) {
                    Ok(()) => {
                        assert!(buck.output_voltage().is_finite());
                        assert!(buck.total_coil_current().is_finite());
                    }
                    Err(SimError::NonFinite { .. }) => return, // typed divergence: fine
                    Err(other) => panic!("{field}={value}: wrong error class {other:?}"),
                }
            }
        }
    }
}

fn bad_step(rng: &mut Rng) {
    let mut buck = Buck::try_new(BuckParams::default()).unwrap();
    buck.set_switch(rng.usize_below(4), true, false);
    buck.step(5e-9);
    let (v0, i0, t0) = (buck.output_voltage(), buck.total_coil_current(), buck.time());
    for dt in [f64::NAN, 0.0, -1e-9, f64::INFINITY, -f64::INFINITY] {
        match buck.try_step(dt) {
            Err(SimError::InvalidParameter { .. }) => {}
            other => panic!("dt={dt} accepted: {other:?}"),
        }
        assert_eq!(
            (buck.output_voltage(), buck.total_coil_current(), buck.time()),
            (v0, i0, t0),
            "rejected step mutated the state"
        );
    }
    // The model keeps working after the rejected steps, and the energy
    // ledger stays physical: input energy covers delivered energy.
    for _ in 0..200 {
        buck.try_step(1e-9).unwrap();
    }
    assert!(buck.output_voltage().is_finite());
    let (e_in, e_out) = (buck.energy_in(), buck.energy_out());
    assert!(e_in.is_finite() && e_out.is_finite());
    assert!(
        e_in + 1e-12 + 1e-3 * e_in.abs() >= e_out,
        "energy ledger violated: in={e_in} out={e_out}"
    );
}

fn adversarial_testbench(rng: &mut Rng) {
    // Random adversarial builder configuration: either a typed build
    // error or a clean, finite, short-circuit-free run.
    let ctrl_phases = 1 + rng.usize_below(6);
    let stage_phases = if rng.bool() { ctrl_phases } else { 1 + rng.usize_below(6) };
    let dt = fault::adversarial_f64(rng).abs();
    let mut builder = TestbenchBuilder::new()
        .params(BuckParams::default().with_phases(stage_phases))
        .dt(dt);
    if rng.bool() {
        builder = builder.load_step(fault::adversarial_f64(rng), fault::adversarial_f64(rng));
    }
    let ctrl = AsyncController::new(ctrl_phases, AsyncTiming::default());
    match builder.try_build(ctrl) {
        Err(SimError::PhaseMismatch { controller, power_stage }) => {
            assert_eq!(controller, ctrl_phases);
            assert_eq!(power_stage, stage_phases);
        }
        Err(SimError::InvalidParameter { .. }) => {}
        Err(other) => panic!("wrong build error class: {other:?}"),
        Ok(mut tb) => {
            // A denormal-but-positive dt is legal (validation only
            // demands positive and finite) — bound the horizon to a few
            // hundred analog steps so a pathological-but-valid dt can't
            // stall the suite.
            let t_end = (dt * 500.0).min(1e-6);
            match tb.try_run_until(t_end) {
                Ok(()) => {
                    assert_eq!(tb.short_circuits(), 0);
                    assert!(tb.buck().output_voltage().is_finite());
                    assert!(tb.waveform().v.iter().all(|v| v.is_finite()));
                }
                Err(SimError::NonFinite { .. }) => {} // typed divergence: fine
                Err(other) => panic!("wrong run error class: {other:?}"),
            }
        }
    }
}
