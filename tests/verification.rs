//! §IV's verification claims, checked end to end across crates:
//!
//! "We verified that all STGs are consistent, deadlock-free, and
//! output-persistent. We also verified specific buck converter
//! properties, such as the absence of a short circuit in PMOS/NMOS
//! transistors [...]. All the gate-level implementations were also
//! verified to be deadlock-free, hazard-free and conformant to their
//! STG specifications."

use a4a::A4aFlow;
use a4a_stg::Stg;
use a4a_synth::{synthesize, verify_si, SynthOptions, SynthStyle};

fn all_specs() -> Vec<(&'static str, Stg)> {
    let mut specs = a4a_ctrl::stgs::all_module_stgs();
    specs.extend(a4a_a2a::spec::all_specs());
    specs
}

#[test]
fn every_module_stg_is_consistent_deadlock_free_and_persistent() {
    for (name, stg) in all_specs() {
        // Consistency: state_graph() fails on inconsistent specs.
        let sg = stg
            .state_graph(1_000_000)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = stg.verify(&sg);
        assert!(report.deadlocks.is_empty(), "{name} deadlocks");
        assert!(
            report.persistence.is_empty(),
            "{name} persistence: {:?}",
            report.persistence.first()
        );
        assert!(
            report.csc_conflicts().is_empty(),
            "{name} CSC conflicts block synthesis"
        );
    }
}

#[test]
fn every_module_synthesises_and_conforms_in_both_styles() {
    for (name, stg) in all_specs() {
        for style in [SynthStyle::ComplexGate, SynthStyle::GeneralizedC] {
            let synth = synthesize(&stg, &SynthOptions::new(style))
                .unwrap_or_else(|e| panic!("{name} {style:?}: {e}"));
            let report = verify_si(&stg, synth.netlist(), 1_000_000)
                .unwrap_or_else(|e| panic!("{name} {style:?}: {e}"));
            assert!(
                report.is_clean(),
                "{name} {style:?} violations: {:?}",
                report.violations.first()
            );
        }
    }
}

#[test]
fn basic_buck_short_circuit_property() {
    let stg = a4a_ctrl::stgs::basic_buck_stg();
    let sg = stg.state_graph(1_000_000).expect("consistent");
    let gp = stg.signal_by_name("gp").expect("gp");
    let gn = stg.signal_by_name("gn").expect("gn");
    let violations = stg.check_mutual_exclusion(&sg, gp, gn);
    assert!(
        violations.is_empty(),
        "PMOS and NMOS on together in {} states",
        violations.len()
    );
}

#[test]
fn flow_produces_verilog_and_g_for_every_module() {
    for (name, stg) in all_specs() {
        let result = A4aFlow::new(stg)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(result.verilog.contains("module"), "{name} verilog");
        assert!(result.g_format.contains(".marking"), "{name} .g");
        // Round trip the emitted .g and re-run the flow on it.
        let back = Stg::parse_g(&result.g_format)
            .unwrap_or_else(|e| panic!("{name} reparse: {e}"));
        let again = A4aFlow::new(back)
            .run()
            .unwrap_or_else(|e| panic!("{name} reflow: {e}"));
        assert!(again.si.is_clean(), "{name} reflow violations");
    }
}

#[test]
fn timer_sharing_possibility() {
    // The paper: "the possibility of sharing some of the timers". The
    // three delay controllers have identical protocols, so one timer
    // implementation serves all: their state graphs are isomorphic in
    // size and their synthesised functions are identical.
    let pmos = a4a_ctrl::stgs::delay_ctrl_stg("pmos_delay_ctrl");
    let nmos = a4a_ctrl::stgs::delay_ctrl_stg("nmos_delay_ctrl");
    let ext = a4a_ctrl::stgs::ext_delay_ctrl_stg();
    let opts = SynthOptions::new(SynthStyle::ComplexGate);
    let eq = |stg: &Stg| {
        let synth = synthesize(stg, &opts).expect("synthesis");
        synth.equations(stg)
    };
    assert_eq!(eq(&pmos), eq(&nmos));
    assert_eq!(eq(&pmos), eq(&ext));
}
