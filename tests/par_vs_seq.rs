//! Differential suite: parallel state-graph construction and Petri-net
//! reachability must be *bit-identical* to the sequential baseline —
//! same state counts, same codes, same state numbering, same edge
//! order, same verification verdicts — for every thread count, **and**
//! the packed (bit-per-place) marking representation must be
//! indistinguishable from the dense `Vec<u32>` reference engine
//! (`state_graph_ref_with` / a dense initial marking).
//!
//! The corpus is every STG this repo ships (the controller modules, the
//! composed token ring, the A2A element zoo) plus randomly generated
//! handshake pipelines from `a4a_rt::prop`. `ci.sh` re-runs the whole
//! file at `A4A_THREADS=1`, `2`, and `8`, which additionally routes the
//! default `state_graph`/`explore` entry points (global pool) through
//! each thread count.

use a4a_petri::{Marking, NetBuilder, PetriNet};
use a4a_rt::Pool;
use a4a_stg::{prop_support, StateGraph, Stg};

/// Thread counts compared against the sequential pool-of-1 baseline.
const THREADS: [usize; 2] = [2, 8];

/// Asserts two state graphs are identical in every observable: count,
/// numbering (marking per id), codes, successor lists, and traces.
fn assert_sg_identical(label: &str, seq: &StateGraph, par: &StateGraph) {
    assert_eq!(
        seq.state_count(),
        par.state_count(),
        "{label}: state count differs"
    );
    assert_eq!(seq.edge_count(), par.edge_count(), "{label}: edge count");
    for s in seq.state_ids() {
        assert_eq!(seq.marking(s), par.marking(s), "{label}: marking of {s}");
        assert_eq!(seq.code(s), par.code(s), "{label}: code of {s}");
        assert_eq!(
            seq.successors(s),
            par.successors(s),
            "{label}: successors of {s}"
        );
        assert_eq!(seq.trace_to(s), par.trace_to(s), "{label}: trace to {s}");
    }
}

/// Builds the state graph sequentially and on each parallel pool, and
/// checks graphs plus verification verdicts match.
fn check_stg(label: &str, stg: &Stg, max_states: usize) {
    let seq_pool = Pool::new(1);
    let seq = stg
        .state_graph_with(&seq_pool, max_states)
        .unwrap_or_else(|e| panic!("{label}: sequential build failed: {e}"));
    // Packed vs reference: the dense engine must be indistinguishable.
    let reference = stg
        .state_graph_ref_with(&seq_pool, max_states)
        .unwrap_or_else(|e| panic!("{label}: reference build failed: {e}"));
    assert_sg_identical(&format!("{label} packed-vs-ref"), &reference, &seq);
    let seq_report = stg.verify(&seq);
    for threads in THREADS {
        let pool = Pool::new(threads);
        let par = stg
            .state_graph_with(&pool, max_states)
            .unwrap_or_else(|e| panic!("{label}: parallel({threads}) build failed: {e}"));
        assert_sg_identical(&format!("{label} t{threads}"), &seq, &par);
        let par_ref = stg
            .state_graph_ref_with(&pool, max_states)
            .unwrap_or_else(|e| panic!("{label}: reference({threads}) build failed: {e}"));
        assert_sg_identical(&format!("{label} t{threads} packed-vs-ref"), &par_ref, &par);
        let par_report = stg.verify(&par);
        assert_eq!(
            seq_report.deadlocks, par_report.deadlocks,
            "{label} t{threads}: deadlock verdicts"
        );
        assert_eq!(
            seq_report.persistence, par_report.persistence,
            "{label} t{threads}: persistence verdicts"
        );
        assert_eq!(
            seq_report.coding, par_report.coding,
            "{label} t{threads}: coding verdicts"
        );
        assert_eq!(
            seq_report.is_clean(),
            par_report.is_clean(),
            "{label} t{threads}: clean verdict"
        );
    }
}

/// Same comparison for raw Petri-net reachability.
fn check_net(label: &str, net: &PetriNet, max_states: usize) {
    let seq_pool = Pool::new(1);
    // The dense initial marking drives the reference engine; packing it
    // drives the fast path. Every observable must agree between the two
    // and across thread counts.
    let seq = net
        .explore_with(&seq_pool, net.initial_marking(), max_states)
        .unwrap_or_else(|e| panic!("{label}: sequential explore failed: {e}"));
    let packed = net
        .explore_with(
            &seq_pool,
            net.initial_marking().pack_if_safe(),
            max_states,
        )
        .unwrap_or_else(|e| panic!("{label}: packed explore failed: {e}"));
    assert_eq!(seq.state_count(), packed.state_count(), "{label} packed");
    for s in seq.state_ids() {
        assert_eq!(seq.marking(s), packed.marking(s), "{label} packed: {s}");
        assert_eq!(seq.successors(s), packed.successors(s), "{label} packed: {s}");
    }
    for threads in THREADS {
        let pool = Pool::new(threads);
        let par = net
            .explore_with(&pool, net.initial_marking(), max_states)
            .unwrap_or_else(|e| panic!("{label}: parallel({threads}) explore failed: {e}"));
        let par_packed = net
            .explore_with(&pool, net.initial_marking().pack_if_safe(), max_states)
            .unwrap_or_else(|e| panic!("{label}: packed({threads}) explore failed: {e}"));
        assert_eq!(seq.state_count(), par.state_count(), "{label} t{threads}");
        assert_eq!(seq.edge_count(), par.edge_count(), "{label} t{threads}");
        assert_eq!(
            par.state_count(),
            par_packed.state_count(),
            "{label} t{threads} packed"
        );
        for s in seq.state_ids() {
            assert_eq!(seq.marking(s), par.marking(s), "{label} t{threads}: {s}");
            assert_eq!(
                seq.successors(s),
                par.successors(s),
                "{label} t{threads}: {s}"
            );
            assert_eq!(
                par.marking(s),
                par_packed.marking(s),
                "{label} t{threads} packed: {s}"
            );
            assert_eq!(
                par.successors(s),
                par_packed.successors(s),
                "{label} t{threads} packed: {s}"
            );
        }
        assert_eq!(seq.deadlocks(), par.deadlocks(), "{label} t{threads}");
        assert_eq!(seq.is_safe(), par.is_safe(), "{label} t{threads}");
        assert_eq!(seq.bound(), par.bound(), "{label} t{threads}");
    }
}

#[test]
fn controller_modules_par_vs_seq() {
    for (name, stg) in a4a_ctrl::stgs::all_module_stgs() {
        check_stg(name, &stg, 500_000);
        check_net(name, stg.net(), 500_000);
    }
}

#[test]
fn a2a_zoo_par_vs_seq() {
    for (name, stg) in a4a_a2a::spec::all_specs() {
        check_stg(name, &stg, 500_000);
    }
}

#[test]
fn token_ring_par_vs_seq() {
    // The composed ring is the widest state space in the repo — the
    // case where frontier expansion actually fans out to the workers.
    let ring = a4a_ctrl::stgs::token_ring_stg();
    check_stg("token_ring", &ring, 500_000);
}

#[test]
fn random_pipelines_par_vs_seq() {
    a4a_rt::prop::check_with(
        &a4a_rt::Config::with_cases(24),
        "random_pipelines_par_vs_seq",
        |g| {
            let n = g.usize(1..9);
            let mask = g.u64(0..1 << n);
            let stg = prop_support::pipeline_stg(n, mask);
            check_stg(&format!("pipeline n={n} mask={mask:#b}"), &stg, 100_000);
            Ok(())
        },
    );
}

#[test]
fn composed_pipelines_par_vs_seq() {
    // Two independent pipelines composed share no signals, so the
    // product state space is wide (2n * 2m states) — a better stress of
    // per-level parallelism than a single ring.
    a4a_rt::prop::check_with(
        &a4a_rt::Config::with_cases(8),
        "composed_pipelines_par_vs_seq",
        |g| {
            let n = g.usize(2..6);
            let m = g.usize(2..6);
            let a = prop_support::pipeline_stg_with_prefix(n, g.any_u64(), "a");
            let b = prop_support::pipeline_stg_with_prefix(m, g.any_u64(), "b");
            let ab = a.compose(&b).map_err(|e| {
                a4a_rt::PropError::Fail(format!("compose failed: {e}"))
            })?;
            check_stg(&format!("composed n={n} m={m}"), &ab, 200_000);
            Ok(())
        },
    );
}

#[test]
fn state_limit_trips_identically() {
    // The limit error must fire at the same discovery index for every
    // thread count.
    let ring = a4a_ctrl::stgs::token_ring_stg();
    let seq = ring.state_graph_with(&Pool::new(1), 10).unwrap_err();
    for threads in THREADS {
        let par = ring.state_graph_with(&Pool::new(threads), 10).unwrap_err();
        assert_eq!(format!("{seq}"), format!("{par}"), "t{threads}");
    }
}

#[test]
fn inconsistency_error_is_identical() {
    // An STG wide enough to hit the parallel path, with an inconsistent
    // signal buried in it: the reported transition and trace must not
    // depend on the thread count.
    let mut b = a4a_stg::StgBuilder::new("bad_wide");
    // Eight independent toggles make the second BFS level 8 states wide.
    let mut firsts = Vec::new();
    for i in 0..8 {
        let s = b.input(format!("x{i}"), false);
        let up = b.rise(s);
        let down = b.fall(s);
        b.connect_marked(down, up);
        b.connect(up, down);
        firsts.push(up);
    }
    // An inconsistent pair: two rises of the same signal in a cycle.
    let bad = b.input("bad", false);
    let r1 = b.rise(bad);
    let r2 = b.rise(bad);
    b.connect_marked(r2, r1);
    b.connect(r1, r2);
    let stg = b.build();
    let seq = stg.state_graph_with(&Pool::new(1), 100_000).unwrap_err();
    for threads in THREADS {
        let par = stg
            .state_graph_with(&Pool::new(threads), 100_000)
            .unwrap_err();
        assert_eq!(format!("{seq}"), format!("{par}"), "t{threads}");
    }
}

#[test]
fn unbounded_net_limit_identical() {
    let mut b = NetBuilder::new();
    let p = b.place_with_tokens("p", 1);
    let t = b.transition("t");
    b.arc_read(p, t);
    b.arc_tp(t, p);
    let net = b.build();
    let seq = net
        .explore_with(&Pool::new(1), net.initial_marking(), 16)
        .unwrap_err();
    for threads in THREADS {
        let par = net
            .explore_with(&Pool::new(threads), net.initial_marking(), 16)
            .unwrap_err();
        assert_eq!(seq, par, "t{threads}");
    }
}

#[test]
fn explore_from_arbitrary_marking_par_vs_seq() {
    let ring = a4a_ctrl::stgs::token_ring_stg();
    let net = ring.net();
    // Walk a few steps from the initial marking, then explore from
    // there on every pool.
    let mut m = net.initial_marking();
    for _ in 0..3 {
        let Some(t) = net.transition_ids().find(|&t| net.is_enabled(t, &m)) else {
            break;
        };
        m = net.fire(t, &m);
    }
    let seq = net
        .explore_with(&Pool::new(1), m.clone(), 500_000)
        .unwrap();
    for threads in THREADS {
        let par = net
            .explore_with(&Pool::new(threads), m.clone(), 500_000)
            .unwrap();
        assert_eq!(seq.state_count(), par.state_count(), "t{threads}");
        for s in seq.state_ids() {
            assert_eq!(seq.marking(s), par.marking(s), "t{threads}: {s}");
            assert_eq!(seq.successors(s), par.successors(s), "t{threads}: {s}");
        }
    }
}

#[test]
fn token_overflow_is_typed_and_identical() {
    // A place already at u32::MAX gains one more token on the first
    // firing: a typed TokenOverflow (not a panic), with the same payload
    // for every thread count and both marking representations.
    let mut b = NetBuilder::new();
    let src = b.place_with_tokens("src", 1);
    let sink = b.place_with_tokens("sink", u32::MAX);
    let t = b.transition("t");
    b.arc_pt(src, t);
    b.arc_tp(t, sink);
    let net = b.build();
    let seq = net
        .explore_with(&Pool::new(1), net.initial_marking(), 100)
        .unwrap_err();
    assert_eq!(
        seq,
        a4a_petri::ExploreError::TokenOverflow {
            place: "sink".into(),
            transition: "t".into(),
        }
    );
    for threads in THREADS {
        let par = net
            .explore_with(&Pool::new(threads), net.initial_marking(), 100)
            .unwrap_err();
        assert_eq!(seq, par, "t{threads}");
        // pack_if_safe leaves the unsafe marking dense, so this also
        // covers handing an explicitly packed-or-not marking in.
        let packed = net
            .explore_with(
                &Pool::new(threads),
                net.initial_marking().pack_if_safe(),
                100,
            )
            .unwrap_err();
        assert_eq!(seq, packed, "t{threads} packed");
    }
}

#[test]
fn oversized_state_limit_is_typed() {
    // Limits beyond the 32-bit id space are rejected up front instead of
    // silently truncating state ids.
    let ring = a4a_ctrl::stgs::token_ring_stg();
    let too_big = u32::MAX as usize + 1;
    assert_eq!(
        ring.state_graph(too_big).unwrap_err(),
        a4a_stg::StgError::LimitOverflow { limit: too_big }
    );
    assert_eq!(
        ring.net().explore(too_big).unwrap_err(),
        a4a_petri::ExploreError::LimitOverflow { limit: too_big }
    );
    // The largest representable limit is still accepted.
    assert!(ring.state_graph(u32::MAX as usize).is_ok());
}

/// Keeps `Marking` in the public-surface contract this suite relies on.
#[test]
fn marking_equality_is_structural() {
    let a = Marking::new(vec![1, 0, 2]);
    let b = Marking::new(vec![1, 0, 2]);
    assert_eq!(a, b);
}

#[test]
fn marking_equality_and_hash_cross_representation() {
    let dense = Marking::new(vec![1, 0, 1, 0, 1]);
    let packed = dense.clone().pack_if_safe();
    assert!(packed.is_packed());
    assert_eq!(dense, packed);
    assert_eq!(dense.fx_hash(), packed.fx_hash());
}
