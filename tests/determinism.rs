//! Reproducibility across crates: identical runs produce identical
//! artefacts — the property every regenerated table and figure relies
//! on.

use a4a::scenario::{self, ControllerKind};
use a4a::A4aFlow;
use a4a_synth::{synthesize, SynthOptions, SynthStyle};

#[test]
fn cosim_runs_are_bit_identical() {
    let run = || {
        let ctrl = scenario::controller(ControllerKind::Async, 4);
        let mut tb = scenario::fig6().build(ctrl);
        tb.run_until(4e-6);
        tb.into_waveform()
    };
    let w1 = run();
    let w2 = run();
    assert_eq!(w1.t, w2.t);
    assert_eq!(w1.v, w2.v);
    assert_eq!(w1.i, w2.i);
    assert_eq!(w1.events, w2.events);
}

#[test]
fn sync_cosim_runs_are_bit_identical() {
    let run = || {
        let ctrl = scenario::controller(ControllerKind::Sync(333.0), 4);
        let mut tb = scenario::fig6().build(ctrl);
        tb.run_until(3e-6);
        tb.into_waveform()
    };
    let w1 = run();
    let w2 = run();
    assert_eq!(w1.v, w2.v);
    assert_eq!(w1.events, w2.events);
}

#[test]
fn synthesis_is_deterministic() {
    for (name, stg) in a4a_ctrl::stgs::all_module_stgs() {
        for style in [SynthStyle::ComplexGate, SynthStyle::GeneralizedC] {
            let a = synthesize(&stg, &SynthOptions::new(style)).unwrap();
            let b = synthesize(&stg, &SynthOptions::new(style)).unwrap();
            assert_eq!(
                a.equations(&stg),
                b.equations(&stg),
                "{name} {style:?} not deterministic"
            );
        }
    }
}

#[test]
fn flow_artifacts_are_deterministic() {
    let stg = a4a_ctrl::stgs::basic_buck_stg();
    let a = A4aFlow::new(stg.clone()).run().unwrap();
    let b = A4aFlow::new(stg).run().unwrap();
    assert_eq!(a.verilog, b.verilog);
    assert_eq!(a.g_format, b.g_format);
    assert_eq!(a.equations, b.equations);
}

#[test]
fn waveform_records_debug_tracks() {
    // The async controller exposes `get & !pass`; the sync controller
    // exposes `act`. Both must show up in the recorded events.
    let ctrl = scenario::controller(ControllerKind::Async, 4);
    let mut tb = scenario::fig6().build(ctrl);
    tb.run_until(2e-6);
    assert!(
        tb.waveform()
            .events
            .iter()
            .any(|(_, n, _)| n == "get & !pass"),
        "async token track missing"
    );

    let ctrl = scenario::controller(ControllerKind::Sync(333.0), 4);
    let mut tb = scenario::fig6().build(ctrl);
    tb.run_until(2e-6);
    assert!(
        tb.waveform().events.iter().any(|(_, n, _)| n == "act"),
        "sync activation track missing"
    );
}
