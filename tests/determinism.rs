//! Reproducibility across crates: identical runs produce identical
//! artefacts — the property every regenerated table and figure relies
//! on.

use a4a::scenario::{self, ControllerKind};
use a4a::A4aFlow;
use a4a_bench::ablation;
use a4a_rt::Pool;
use a4a_sim::Time;
use a4a_synth::{synthesize, SynthOptions, SynthStyle};

#[test]
fn cosim_runs_are_bit_identical() {
    let run = || {
        let ctrl = scenario::controller(ControllerKind::Async, 4);
        let mut tb = scenario::fig6().build(ctrl);
        tb.run_until(4e-6);
        tb.into_waveform()
    };
    let w1 = run();
    let w2 = run();
    assert_eq!(w1.t, w2.t);
    assert_eq!(w1.v, w2.v);
    assert_eq!(w1.i, w2.i);
    assert_eq!(w1.events, w2.events);
}

#[test]
fn sync_cosim_runs_are_bit_identical() {
    let run = || {
        let ctrl = scenario::controller(ControllerKind::Sync(333.0), 4);
        let mut tb = scenario::fig6().build(ctrl);
        tb.run_until(3e-6);
        tb.into_waveform()
    };
    let w1 = run();
    let w2 = run();
    assert_eq!(w1.v, w2.v);
    assert_eq!(w1.events, w2.events);
}

#[test]
fn synthesis_is_deterministic() {
    for (name, stg) in a4a_ctrl::stgs::all_module_stgs() {
        for style in [SynthStyle::ComplexGate, SynthStyle::GeneralizedC] {
            let a = synthesize(&stg, &SynthOptions::new(style)).unwrap();
            let b = synthesize(&stg, &SynthOptions::new(style)).unwrap();
            assert_eq!(
                a.equations(&stg),
                b.equations(&stg),
                "{name} {style:?} not deterministic"
            );
        }
    }
}

#[test]
fn flow_artifacts_are_deterministic() {
    let stg = a4a_ctrl::stgs::basic_buck_stg();
    let a = A4aFlow::new(stg.clone()).run().unwrap();
    let b = A4aFlow::new(stg).run().unwrap();
    assert_eq!(a.verilog, b.verilog);
    assert_eq!(a.g_format, b.g_format);
    assert_eq!(a.equations, b.equations);
}

/// Renders the seeded ablation batches on a given pool as an exact
/// digest: every latency as raw `f64` bits, so the comparison is
/// bit-identity, not approximate equality.
fn ablation_digest(pool: &Pool, root: u64) -> String {
    let mut out = String::new();
    for p in [0.0, 0.2, 0.8] {
        for ns in ablation::sync_metastability_batch(pool, p, root, 40) {
            out.push_str(&format!("{:016x} ", ns.to_bits()));
        }
    }
    for (p, tau_ns) in [(0.0, 1.0), (0.3, 2.0), (0.9, 5.0)] {
        for ns in
            ablation::wait_metastability_batch(pool, p, Time::from_ns(tau_ns), root, 200)
        {
            out.push_str(&format!("{:016x} ", ns.to_bits()));
        }
    }
    out
}

#[test]
fn ablation_batches_identical_across_pool_sizes() {
    // The seeded scenario batches split one root seed with SplitMix64,
    // so the result is a function of the seed alone — never of which
    // worker ran which scenario. Pools of 1, 2, and 8 threads must
    // produce the same bits.
    let root = ablation::DEFAULT_ROOT_SEED;
    let baseline = ablation_digest(&Pool::new(1), root);
    for threads in [2, 8] {
        assert_eq!(
            ablation_digest(&Pool::new(threads), root),
            baseline,
            "ablation batch differs on a {threads}-thread pool"
        );
    }
    // A different root seed must change the digest (the seed is live).
    assert_ne!(ablation_digest(&Pool::new(1), root ^ 1), baseline);
}

/// Child-process hook for `ablation_identical_across_processes`: when
/// re-exec'd with `A4A_EMIT_DIGEST=1` this prints the digest of the
/// global pool's ablation batches and nothing else is asserted. In a
/// normal test run the env var is unset and this is a no-op.
#[test]
fn emit_ablation_digest_when_asked() {
    if std::env::var("A4A_EMIT_DIGEST").is_err() {
        return;
    }
    let digest = ablation_digest(Pool::global(), ablation::root_seed());
    println!("A4A_DIGEST {digest}");
}

#[test]
fn ablation_identical_across_processes_with_same_seed() {
    // Two *separate processes* with the same A4A_PROP_SEED but different
    // thread counts must agree bit-for-bit. This closes the gap the
    // in-process test can't cover: the global pool, env parsing, and
    // process-level state.
    let exe = std::env::current_exe().expect("test binary path");
    let run = |threads: &str| -> String {
        let out = std::process::Command::new(&exe)
            .args(["--exact", "emit_ablation_digest_when_asked", "--nocapture"])
            .env("A4A_EMIT_DIGEST", "1")
            .env("A4A_PROP_SEED", "c0ffee")
            .env("A4A_THREADS", threads)
            .output()
            .expect("re-exec test binary");
        assert!(out.status.success(), "child (A4A_THREADS={threads}) failed");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        // The digest can share a line with libtest's `test name ...`
        // prefix under --nocapture, so match anywhere in the line.
        stdout
            .lines()
            .find_map(|l| l.find("A4A_DIGEST ").map(|i| &l[i + "A4A_DIGEST ".len()..]))
            .unwrap_or_else(|| panic!("no digest line in child output:\n{stdout}"))
            .to_string()
    };
    let d1 = run("1");
    let d2 = run("2");
    let d8 = run("8");
    assert_eq!(d1, d2, "process digests differ between 1 and 2 threads");
    assert_eq!(d1, d8, "process digests differ between 1 and 8 threads");
}

#[test]
fn waveform_records_debug_tracks() {
    // The async controller exposes `get & !pass`; the sync controller
    // exposes `act`. Both must show up in the recorded events.
    let ctrl = scenario::controller(ControllerKind::Async, 4);
    let mut tb = scenario::fig6().build(ctrl);
    tb.run_until(2e-6);
    assert!(
        tb.waveform()
            .events
            .iter()
            .any(|(_, n, _)| n == "get & !pass"),
        "async token track missing"
    );

    let ctrl = scenario::controller(ControllerKind::Sync(333.0), 4);
    let mut tb = scenario::fig6().build(ctrl);
    tb.run_until(2e-6);
    assert!(
        tb.waveform().events.iter().any(|(_, n, _)| n == "act"),
        "sync activation track missing"
    );
}
