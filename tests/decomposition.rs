//! Technology mapping across crates: every synthesised controller module
//! decomposes into 2-input cells without changing its Boolean behaviour,
//! and the speed-independence cost of decomposition is observable as
//! gate-level glitches (exactly why the A4A flow synthesises to atomic
//! complex gates / gC first and leaves mapping to timing-validated
//! back-ends).

use a4a_netlist::sim::GateSim;
use a4a_netlist::{combinational_expr, decompose, GateKind, GateLib};
use a4a_sim::Time;
use a4a_stg::SignalKind;
use a4a_synth::{synthesize, SynthOptions, SynthStyle};

fn all_specs() -> Vec<(&'static str, a4a_stg::Stg)> {
    let mut specs = a4a_ctrl::stgs::all_module_stgs();
    specs.extend(a4a_a2a::spec::all_specs());
    specs
}

#[test]
fn every_module_maps_to_two_input_cells() {
    let lib = GateLib::tsmc90();
    for (name, stg) in all_specs() {
        for style in [SynthStyle::ComplexGate, SynthStyle::GeneralizedC] {
            let synth = synthesize(&stg, &SynthOptions::new(style))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mapped = decompose(synth.netlist(), &lib)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            for g in mapped.gate_ids() {
                let gate = mapped.gate(g);
                assert!(
                    gate.pins.len() <= 2,
                    "{name} {style:?}: fanin {} after mapping",
                    gate.pins.len()
                );
            }
            // Area never shrinks, and every original net survives.
            assert!(mapped.gate_count() >= synth.netlist().gate_count());
            for net in synth.netlist().net_ids() {
                let nm = &synth.netlist().net(net).name;
                assert!(mapped.net_by_name(nm).is_some(), "{name}: lost net {nm}");
            }
        }
    }
}

#[test]
fn complex_gate_functions_survive_mapping() {
    let lib = GateLib::tsmc90();
    for (name, stg) in all_specs() {
        let synth = synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mapped = decompose(synth.netlist(), &lib).unwrap();
        let nvars = stg.signal_count();
        assert!(nvars <= 16, "{name} too wide for exhaustive check");
        for s in stg.signal_ids() {
            if stg.signal(s).kind == SignalKind::Input {
                continue;
            }
            let net_name = &stg.signal(s).name;
            let orig_net = synth.netlist().net_by_name(net_name).unwrap();
            let mapped_net = mapped.net_by_name(net_name).unwrap();
            let orig_fn = combinational_expr(synth.netlist(), orig_net);
            let mapped_fn = combinational_expr(&mapped, mapped_net);
            // The mapped cone is over the same nets (ids preserved for
            // originals; intermediates only appear inside), so direct
            // evaluation agrees. Variables index nets; enumerate over
            // the original net count.
            let width = synth.netlist().net_count();
            assert!(width <= 20, "{name}: too many nets to enumerate");
            for m in 0..(1u64 << width) {
                assert_eq!(
                    orig_fn.eval(m),
                    mapped_fn.eval(m),
                    "{name}.{net_name} differs at {m:#b}"
                );
            }
        }
    }
}

#[test]
fn mapping_exposes_hazards_the_atomic_netlist_does_not_have() {
    // The basic buck's gp function is a 2-cube SOP; a classic static-1
    // hazard appears between its product terms once it is split into
    // discrete AND/OR gates. Drive an input sequence that crosses cubes
    // and compare glitch counts.
    let lib = GateLib::tsmc90();
    let stg = a4a_ctrl::stgs::basic_buck_stg();
    let synth = synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate)).unwrap();
    let atomic = synth.netlist().clone();
    let mapped = decompose(&atomic, &lib).unwrap();

    let glitches = |netlist: &a4a_netlist::Netlist| -> usize {
        let mut sim = GateSim::new(netlist);
        for n in ["uv", "oc", "zc", "gp_ack", "gn_ack"] {
            sim.set_input(netlist.net_by_name(n).unwrap(), false);
        }
        sim.init_net(netlist.net_by_name("gp").unwrap(), false);
        sim.init_net(netlist.net_by_name("gn").unwrap(), false);
        for net in netlist.net_ids() {
            if netlist.net(net).name.starts_with("_m") {
                sim.init_net(net, false);
            }
        }
        sim.settle(Time::from_us(1.0));
        // Wiggle inputs pairwise in quick succession to cross cube
        // boundaries.
        let names = ["uv", "oc", "zc", "gp_ack", "gn_ack"];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                let na = netlist.net_by_name(a).unwrap();
                let nb = netlist.net_by_name(b).unwrap();
                for &(va, vb) in
                    &[(true, false), (true, true), (false, true), (false, false)]
                {
                    sim.set_input(na, va);
                    sim.set_input(nb, vb);
                    sim.settle(Time::from_us(1.0));
                }
            }
        }
        sim.glitches().len()
    };

    let atomic_glitches = glitches(&atomic);
    let mapped_glitches = glitches(&mapped);
    assert!(
        mapped_glitches >= atomic_glitches,
        "mapping cannot reduce hazard exposure: {atomic_glitches} vs {mapped_glitches}"
    );
}

#[test]
fn mapped_verilog_uses_only_simple_cells() {
    let lib = GateLib::tsmc90();
    let stg = a4a_a2a::spec::waitx_stg();
    let synth = synthesize(&stg, &SynthOptions::new(SynthStyle::GeneralizedC)).unwrap();
    let mapped = decompose(synth.netlist(), &lib).unwrap();
    // Each combinational gate has at most two pins -> the emitted
    // Verilog contains only 1- and 2-operand assigns.
    for g in mapped.gate_ids() {
        if let GateKind::Complex(e) = &mapped.gate(g).kind {
            assert!(e.support().len() <= 2);
        }
    }
    let v = a4a_netlist::verilog::emit(&mapped);
    assert!(v.contains("module waitx_mapped"));
}
