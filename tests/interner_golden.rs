//! Golden tests for the exploration interner: state-id assignment on
//! the composed token-ring STG is pinned exactly, so any change to the
//! interner, the packed marking representation, or the BFS merge order
//! shows up as a diff here — not as a silently renumbered state space.
//!
//! The companion coverage lives in `tests/par_vs_seq.rs` (differential)
//! and `crates/rt/src/hash.rs` (unit tests of `IdTable` itself).

use a4a_rt::IdTable;
use a4a_stg::SgStateId;

/// Discovery-order signal codes of the token-ring state graph. Breadth-
/// first numbering is part of the engine's contract, so this sequence is
/// a golden: it must never change, at any thread count, with any marking
/// representation.
const RING_CODES: [u64; 14] = [16, 24, 26, 10, 58, 42, 34, 32, 33, 37, 53, 5, 21, 20];

#[test]
fn token_ring_ids_are_pinned() {
    let ring = a4a_ctrl::stgs::token_ring_stg();
    for threads in [1, 2, 8] {
        let pool = a4a_rt::Pool::new(threads);
        for (label, sg) in [
            ("packed", ring.state_graph_with(&pool, 500_000).unwrap()),
            ("ref", ring.state_graph_ref_with(&pool, 500_000).unwrap()),
        ] {
            assert_eq!(sg.state_count(), RING_CODES.len(), "t{threads} {label}");
            assert_eq!(sg.edge_count(), 16, "t{threads} {label}");
            let codes: Vec<u64> = sg.state_ids().map(|s| sg.code(s)).collect();
            assert_eq!(codes, RING_CODES, "t{threads} {label}: numbering moved");
        }
    }
}

#[test]
fn interner_assigns_discovery_order_ids() {
    // Re-intern the ring's markings by hand in discovery order: the
    // IdTable must hand back exactly the engine's ids, with every
    // marking stored once (in the arena, not the table).
    let ring = a4a_ctrl::stgs::token_ring_stg();
    let sg = ring.state_graph(500_000).unwrap();
    let markings: Vec<_> = sg.state_ids().map(|s| sg.marking(s).clone()).collect();
    let mut table = IdTable::new();
    for (i, m) in markings.iter().enumerate() {
        let h = m.fx_hash();
        assert_eq!(
            table.get(h, |id| &markings[id as usize] == m),
            None,
            "state {i} interned twice"
        );
        table.insert(h, i as u32);
    }
    assert_eq!(table.len(), markings.len());
    for (i, m) in markings.iter().enumerate() {
        let got = table.get(m.fx_hash(), |id| &markings[id as usize] == m);
        assert_eq!(got, Some(i as u32), "lookup of state {i}");
    }
}

#[test]
fn states_by_code_covers_every_state_exactly_once() {
    let ring = a4a_ctrl::stgs::token_ring_stg();
    let sg = ring.state_graph(500_000).unwrap();
    let by_code = sg.states_by_code();
    // The ring has unique state encoding: 14 codes, one state each.
    assert_eq!(by_code.len(), 14);
    let mut seen = vec![false; sg.state_count()];
    for (code, states) in &by_code {
        for &s in states {
            assert_eq!(sg.code(s), *code, "{s} grouped under wrong code");
            assert!(!seen[s.index()], "{s} grouped twice");
            seen[s.index()] = true;
        }
    }
    assert!(seen.iter().all(|&b| b), "every state grouped");
    // Group membership agrees with the golden numbering.
    assert_eq!(by_code[&RING_CODES[0]], vec![SgStateId::INITIAL]);
}
