# Gnuplot script regenerating the paper-style figures from the CSVs in
# this directory (run the a4a-bench binaries first):
#   gnuplot -persist plot.gp
set datafile separator ','
set key top right

set terminal pngcairo size 900,600
set output 'fig7a.png'
set title 'Figure 7a: inductor peak current vs coil inductance (6 Ohm load)'
set xlabel 'Coil inductance (uH)'
set ylabel 'Inductor peak current (mA)'
plot for [i=2:6] 'fig7a.csv' using 1:i with linespoints title columnheader(i)

set output 'fig7b.png'
set title 'Figure 7b: inductor peak current vs load (4.7 uH coil)'
set xlabel 'Load resistance (Ohm)'
plot for [i=2:6] 'fig7b.csv' using 1:i with linespoints title columnheader(i)

set output 'fig7c.png'
set title 'Figure 7c: inductor ripple losses vs coil inductance (6 Ohm load)'
set xlabel 'Coil inductance (uH)'
set ylabel 'Inductor losses (uW)'
plot for [i=2:6] 'fig7c.csv' using 1:i with linespoints title columnheader(i)

set output 'fig6.png'
set title 'Figure 6: output voltage waveforms'
set xlabel 'time (us)'
set ylabel 'V_load (V)'
plot 'fig6_333mhz_analog.csv' using ($1*1e6):2 with lines title '333MHz', \
     'fig6_async_analog.csv'  using ($1*1e6):2 with lines title 'ASYNC'
