//! Quickstart: the A4A flow end to end on the basic buck controller.
//!
//! 1. Take the Figure 2b specification (a Signal Transition Graph).
//! 2. Run the automated flow: sanity checks → speed-independent
//!    synthesis → gate-level conformance/hazard verification.
//! 3. Check the buck-specific safety property (no PMOS/NMOS short).
//! 4. Drop the behavioural controller into the mixed-signal testbench
//!    and watch it regulate a single-phase buck.
//!
//! Run with `cargo run --release --example quickstart`.

use a4a::{A4aFlow, TestbenchBuilder};
use a4a_analog::BuckParams;
use a4a_ctrl::{stgs, BasicBuckController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1-2. Specification and flow.
    let stg = stgs::basic_buck_stg();
    println!("specification: {stg}");
    let result = A4aFlow::new(stg.clone()).run()?;
    println!("sanity checks:\n{}", result.sanity.summary());
    println!("equations:\n{}", result.equations);
    println!(
        "SI verification: {} joint states, {} violations",
        result.si.states,
        result.si.violations.len()
    );

    // 3. The paper's safety property.
    let sg = stg.state_graph(100_000)?;
    let gp = stg.signal_by_name("gp").expect("gp");
    let gn = stg.signal_by_name("gn").expect("gn");
    let shorts = stg.check_mutual_exclusion(&sg, gp, gn);
    println!("short-circuit states: {} (must be 0)", shorts.len());

    // 4. Mixed-signal run: a single-phase buck under the basic
    //    controller.
    let ctrl = BasicBuckController::new();
    let mut tb = TestbenchBuilder::new()
        .params(BuckParams::default().with_phases(1).with_load(24.0))
        .build(ctrl);
    tb.run_until(10e-6);
    println!(
        "single-phase buck after 10us: v = {:.3} V (target 3.3), i = {:.3} A, shorts = {}",
        tb.buck().output_voltage(),
        tb.buck().coil_current(0),
        tb.short_circuits()
    );
    Ok(())
}
