//! What the A4A flow looks like when the design is *wrong* — the
//! verification loop of Figure 3 and Figure 4's violation traces:
//!
//! 1. an inconsistent specification (edge against the signal's value);
//! 2. a complete-state-coding (CSC) conflict blocking synthesis;
//! 3. an output-persistence violation (the spec itself allows a hazard);
//! 4. a hand-modified netlist caught by conformance checking, with the
//!    trace leading to the violation.
//!
//! Run with `cargo run --release --example debugging_violations`.

use a4a::{A4aFlow, FlowError};
use a4a_boolmin::Expr;
use a4a_netlist::{GateLib, NetlistBuilder};
use a4a_stg::{Stg, StgBuilder};
use a4a_synth::verify_si;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Inconsistency: two rising edges of the same signal in a row.
    println!("== 1. inconsistent specification ==");
    let mut b = StgBuilder::new("double_rise");
    let a = b.input("a", false);
    let r1 = b.rise(a);
    let r2 = b.rise(a);
    b.connect_marked(r2, r1);
    b.connect(r1, r2);
    let bad = b.build();
    match bad.state_graph(1000) {
        Err(e) => println!("  rejected as expected:\n    {e}\n"),
        Ok(_) => unreachable!("the checker must reject this"),
    }

    // 2. CSC conflict: the classic a+ a- b+ b- cycle.
    println!("== 2. CSC conflict ==");
    let csc = Stg::parse_g(
        "\
.model csc
.inputs a
.outputs b
.graph
a+ a-
a- b+
b+ b-
b- a+
.marking { <b-,a+> }
.end
",
    )?;
    match A4aFlow::new(csc).run() {
        Err(FlowError::Specification { report }) => {
            println!("  flow stopped at the sanity check:\n{}", indent(&report));
        }
        other => println!("  unexpected: {other:?}"),
    }

    // 3. Output persistence: an output competing with an input for one
    // token.
    println!("== 3. output-persistence violation ==");
    let mut b = StgBuilder::new("nonpersistent");
    let inp = b.input("go", false);
    let out = b.output("y", false);
    let gp = b.rise(inp);
    let yp = b.rise(out);
    let p = b.place_with_tokens("choice", 1);
    b.arc_pt(p, gp);
    b.arc_pt(p, yp);
    let np = b.build();
    let sg = np.state_graph(1000)?;
    let report = np.verify(&sg);
    for v in &report.persistence {
        println!(
            "  {}{} disabled by {} (trace: [{}])",
            np.signal(v.disabled.signal).name,
            v.disabled.polarity,
            v.by,
            v.trace.join(", ")
        );
    }
    println!();

    // 4. Conformance: replace the C-element spec's correct gate with a
    // plain AND and let the joint exploration find the trace.
    println!("== 4. non-conformant netlist ==");
    let spec = Stg::parse_g(
        "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
",
    )?;
    let lib = GateLib::tsmc90();
    let mut nb = NetlistBuilder::new("wrong");
    let na = nb.input("a");
    let _nb2 = nb.input("b");
    let nc = nb.net("c");
    nb.complex(nc, &[na], Expr::var(0), &lib); // c = a : wrong!
    let netlist = nb.build()?;
    let si = verify_si(&spec, &netlist, 100_000)?;
    for v in si.violations.iter().take(2) {
        match v {
            a4a_synth::SiViolation::Unexpected { edge, trace } => {
                println!("  unexpected {edge} after [{}]", trace.join(", "));
            }
            a4a_synth::SiViolation::Disabled { signal, by, trace } => {
                println!("  {signal} disabled by {by} after [{}]", trace.join(", "));
            }
        }
    }
    println!("\nEvery violation comes with a replayable trace — the Workcraft debugging loop.");
    Ok(())
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
