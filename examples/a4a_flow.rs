//! Runs the complete A4A flow (Figure 3) over every module of the
//! multiphase buck controller and every A2A interface element:
//! specification → sanity check → synthesis (both styles) → SI
//! verification, printing a per-module report and one emitted Verilog
//! netlist.
//!
//! Run with `cargo run --release --example a4a_flow`.

use a4a::A4aFlow;
use a4a_synth::SynthStyle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut specs = a4a_ctrl::stgs::all_module_stgs();
    specs.extend(a4a_a2a::spec::all_specs());

    println!(
        "{:<18} {:>7} {:>9} {:>9} {:>10} {:>8}",
        "module", "states", "cg lits", "gC lits", "si states", "verdict"
    );
    for (name, stg) in specs {
        let sg = stg.state_graph(1_000_000)?;
        let cg = A4aFlow::new(stg.clone())
            .with_style(SynthStyle::ComplexGate)
            .run()?;
        let gc = A4aFlow::new(stg.clone())
            .with_style(SynthStyle::GeneralizedC)
            .run()?;
        let clean = cg.si.is_clean() && gc.si.is_clean();
        println!(
            "{:<18} {:>7} {:>9} {:>9} {:>10} {:>8}",
            name,
            sg.state_count(),
            cg.synthesis.literal_count(),
            gc.synthesis.literal_count(),
            cg.si.states,
            if clean { "clean" } else { "VIOLATED" }
        );
    }

    // Show one artefact in full: the basic buck controller as Verilog.
    let result = A4aFlow::new(a4a_ctrl::stgs::basic_buck_stg())
        .with_style(SynthStyle::GeneralizedC)
        .run()?;
    println!("\n--- basic_buck.v (generalized-C implementation) ---\n");
    println!("{}", result.verilog);
    Ok(())
}
