//! The Figure 7 trade-off in miniature: because the asynchronous
//! controller reacts faster, it keeps the inductor peak current bounded
//! with a *smaller* coil — and smaller coils in the same family have
//! lower resistance, so the converter also loses less energy.
//!
//! Run with `cargo run --release --example coil_tradeoff`.

use a4a::scenario::{self, ControllerKind};
use a4a_analog::{metrics, CoilModel};

fn main() {
    let coils = [1.0, 1.8, 4.7, 10.0];
    println!(
        "{:>7} {:>10} {:>14} {:>14} {:>12}",
        "L (uH)", "DCR (mOhm)", "sync peak (mA)", "async peak(mA)", "async better"
    );
    for l in coils {
        let coil = CoilModel::coilcraft(l);
        let mut peaks = Vec::new();
        for kind in [ControllerKind::Sync(100.0), ControllerKind::Async] {
            let ctrl = scenario::controller(kind, 4);
            let mut tb = scenario::sweep_coil(l, 6.0).build(ctrl);
            tb.run_until(8e-6);
            peaks.push(metrics::peak_current(tb.waveform()) * 1e3);
        }
        println!(
            "{:>7.2} {:>10.0} {:>14.0} {:>14.0} {:>11.0}mA",
            l,
            coil.dcr * 1e3,
            peaks[0],
            peaks[1],
            peaks[0] - peaks[1]
        );
    }
    println!(
        "\nWith a peak-current budget, the async controller qualifies a smaller\n\
         coil than the 100 MHz synchronous design; the smaller coil's lower DCR\n\
         and high-frequency ESR then buy back conduction losses (Figure 7c)."
    );
}
