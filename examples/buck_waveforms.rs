//! Reproduces the Figure 6 waveform comparison interactively: runs the
//! 10 µs startup / normal-load / high-load scenario under the 333 MHz
//! synchronous controller and the asynchronous token ring, prints the
//! headline metrics, and renders a coarse ASCII strip chart of the
//! output voltage so the ripple difference is visible without plotting.
//!
//! Run with `cargo run --release --example buck_waveforms`.

use a4a::scenario::{self, ControllerKind};
use a4a_analog::{metrics, Waveform};

fn strip_chart(w: &Waveform, rows: u32) -> String {
    // Downsample the voltage into 100 columns between 0 and 4 V.
    const COLS: usize = 100;
    let mut grid = vec![vec![' '; COLS]; rows as usize];
    if w.is_empty() {
        return String::new();
    }
    let t_end = *w.t.last().expect("nonempty");
    for (idx, &t) in w.t.iter().enumerate() {
        let col = ((t / t_end) * (COLS as f64 - 1.0)) as usize;
        let v = w.v[idx].clamp(0.0, 4.0);
        let row = ((1.0 - v / 4.0) * (rows as f64 - 1.0)) as usize;
        grid[row][col] = '*';
    }
    let mut out = String::new();
    for (r, line) in grid.iter().enumerate() {
        let v_axis = 4.0 * (1.0 - r as f64 / (rows as f64 - 1.0));
        out.push_str(&format!("{v_axis:4.1}V |"));
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str("      +");
    out.push_str(&"-".repeat(100));
    out.push_str("\n       0us");
    out.push_str(&" ".repeat(88));
    out.push_str(&format!("{:.0}us\n", t_end * 1e6));
    out
}

fn main() {
    for kind in [ControllerKind::Sync(333.0), ControllerKind::Async] {
        let ctrl = scenario::controller(kind, 4);
        let mut tb = scenario::fig6().build(ctrl);
        tb.run_until(scenario::FIG6_T_END);
        let shorts = tb.short_circuits();
        let w = tb.into_waveform();
        let (a, b) = scenario::FIG6_NORMAL_WINDOW;
        let normal = w.window(a, b);
        println!(
            "== {} ==\n ripple {:.3} V | peak current {:.3} A | mean {:.3} V | shorts {}\n",
            kind.label(),
            metrics::voltage_ripple(&normal),
            metrics::peak_current(&w),
            metrics::mean_voltage(&normal),
            shorts
        );
        println!("{}", strip_chart(&w, 12));
    }
    println!("paper: 0.43 V vs 0.36 V ripple, 0.24 A vs 0.21 A peak (Fig. 6)");
}
