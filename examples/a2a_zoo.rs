//! A guided tour of the A2A interface elements (§III): each element is
//! driven with the same awkward, non-persistent input — a runt pulse, a
//! chattering burst, then a solid assertion — and its handshake
//! behaviour is printed. The point of the zoo: no matter how dirty the
//! analog side is, the asynchronous side only ever sees clean
//! handshakes.
//!
//! Run with `cargo run --release --example a2a_zoo`.

use a4a_a2a::{RWait, Wait, Wait01, Wait2, WaitX};
use a4a_sim::Time;

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

fn main() {
    println!("== WAIT: latch a high level ==");
    let mut w = Wait::new(ns(0.31));
    w.set_req(ns(0.0), true);
    w.set_sig(ns(1.0), true); // runt pulse...
    w.set_sig(ns(1.1), false); // ...retracted before the latch decides
    w.set_sig(ns(5.0), true); // solid assertion
    let ev = w.poll(ns(6.0)).expect("latched");
    println!("  runt pulses filtered: {}", w.filtered_pulses());
    println!("  ack at {} (input retractions after this are contained)", ev.time);
    w.set_sig(ns(7.0), false);
    println!("  ack still high after sig dropped: {}", w.ack());

    println!("\n== WAIT2: one handshake = one full input cycle ==");
    let mut w2 = Wait2::new(ns(0.31));
    w2.set_req(ns(0.0), true);
    w2.set_sig(ns(1.0), true);
    println!("  ack+ at {}", w2.poll(ns(2.0)).expect("high seen").time);
    w2.set_req(ns(3.0), false);
    println!("  req released, ack holds until the input falls: {}", w2.ack());
    w2.set_sig(ns(4.0), false);
    println!("  ack- at {}", w2.poll(ns(5.0)).expect("low seen").time);

    println!("\n== RWAIT: cancellable wait (the ZC timeout) ==");
    let mut rw = RWait::new(ns(0.31));
    rw.set_req(ns(0.0), true);
    rw.cancel(ns(10.0)); // timeout fired: stop waiting
    rw.set_sig(ns(20.0), true);
    println!(
        "  input rose after the cancel; ack stays {} (released handshake)",
        rw.ack()
    );

    println!("\n== WAIT01: a *rising edge*, not a high level ==");
    let mut w01 = Wait01::new(ns(0.31));
    w01.set_sig(ns(0.0), true); // already high before arming
    w01.set_req(ns(1.0), true);
    println!("  armed while input high; no ack yet: {}", !w01.ack());
    w01.set_sig(ns(2.0), false);
    w01.set_sig(ns(3.0), true); // a genuine edge
    println!("  ack after the real edge at {}", w01.poll(ns(4.0)).expect("edge").time);

    println!("\n== WAITX: arbitrate two non-persistent inputs ==");
    let mut wx = WaitX::new(ns(0.36));
    wx.set_req(ns(0.0), true);
    wx.set_sig(ns(1.0), 1, true);
    wx.set_sig(ns(1.05), 0, true); // close second
    let g = wx.poll(ns(2.0)).expect("grant");
    println!("  grant to channel {} (the first to arrive)", g.channel);
    println!(
        "  dual-rail: g0={} g1={} — exactly one high",
        wx.grant(0),
        wx.grant(1)
    );
}
