#!/usr/bin/env bash
# Hermetic CI for the buck-a4a workspace.
#
# The build environment has no crates.io access, and determinism of the
# seeded experiments depends on every dependency living in-tree. This
# script is the tier-1 verify plus a guard that keeps it that way:
#
#   1. cold-cache offline release build
#   2. offline test run (root package tier-1, then the whole workspace)
#   3. fail if any Cargo.toml re-introduces a registry (non-path) dependency
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (tier-1: root package)"
cargo test -q --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> checking for registry dependencies"
# Every [dependencies*] / [dev-dependencies] entry must be either an
# in-workspace path/workspace reference or a section header. A version
# requirement string ("crate = \"1.2\"" or { version = ... }) means a
# registry dependency sneaked back in.
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Extract dependency table bodies, drop blanks/comments, then flag
    # any entry that is neither `path = ...` nor `.workspace = true`.
    offenders=$(awk '
        /^\[/ { in_dep = ($0 ~ /dependencies/) ; next }
        in_dep && NF && $0 !~ /^#/ \
               && $0 !~ /workspace[[:space:]]*=[[:space:]]*true/ \
               && $0 !~ /path[[:space:]]*=/ { print }
    ' "$manifest")
    if [ -n "$offenders" ]; then
        echo "ERROR: registry dependency in $manifest:" >&2
        echo "$offenders" | sed 's/^/    /' >&2
        bad=1
    fi
done
# Belt and braces: the three crates this repo explicitly removed must
# never reappear in any manifest.
if grep -nE '^[[:space:]]*(rand|proptest|criterion)[[:space:]]*=' \
        Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: banned registry crate referenced above" >&2
    bad=1
fi
if [ "$bad" -ne 0 ]; then
    exit 1
fi
echo "OK: hermetic (no registry dependencies)"
