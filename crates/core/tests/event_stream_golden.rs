//! Differential golden for the digital event stream.
//!
//! The track-interning refactor (`Waveform.events` storing `TrackId`
//! instead of heap `String`s) is a pure representation change: the
//! rendered event stream must stay byte-identical to the String-era
//! output. This test pins `events_csv()` for a short Figure-6-style
//! run against a golden captured *before* the interning change, so any
//! drift in track naming, event ordering, or CSV formatting fails
//! loudly.
//!
//! Regenerate (only for an intentional behaviour change) with:
//!
//! ```sh
//! A4A_BLESS=1 cargo test -q -p a4a --test event_stream_golden
//! ```

use a4a::scenario::{self, ControllerKind};

const GOLDEN: &str = include_str!("golden/fig6_async_events_1500ns.csv");
const T_END: f64 = 1.5e-6;

fn short_fig6_events_csv() -> String {
    let ctrl = scenario::controller(ControllerKind::Async, 4);
    let mut tb = scenario::fig6().try_build(ctrl).expect("fig6 config valid");
    tb.try_run_until(T_END).expect("short fig6 run must not diverge");
    tb.waveform().events_csv()
}

#[test]
fn event_stream_matches_string_era_rendering() {
    let got = short_fig6_events_csv();
    if std::env::var_os("A4A_BLESS").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/fig6_async_events_1500ns.csv"
        );
        std::fs::write(path, &got).expect("write golden");
        eprintln!("blessed {path}");
        return;
    }
    assert!(
        got.lines().count() > 50,
        "suspiciously few events ({}) in the 1.5 us window",
        got.lines().count()
    );
    if got != GOLDEN {
        for (idx, (g, w)) in got.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "event stream diverges from the String-era golden at \
                 line {} (got vs golden)",
                idx + 1
            );
        }
        panic!(
            "event stream length changed: {} lines, golden has {}",
            got.lines().count(),
            GOLDEN.lines().count()
        );
    }
}
