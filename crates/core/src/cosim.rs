//! Mixed-signal co-simulation: the Cadence-AMS testbench stand-in.
//!
//! The analog buck integrates with a fixed maximum step, subdivided at
//! every digital event boundary (gate-driver application, controller
//! wakeup, scheduled load step), so switch toggles land at their exact
//! times. Comparator crossings inside a step are located by linear
//! interpolation and delivered to the controller in time order,
//! interleaved with the controller's own timer/clock wakeups.

use std::collections::VecDeque;

use a4a_analog::{
    Buck, BuckParams, SensorBank, SensorEvent, SensorKind, SensorThresholds, TrackId, Waveform,
};
use a4a_ctrl::{BuckController, Command, GateTiming, TimedCommand};
use a4a_sim::{SimError, Time};

/// Pending digital side effects travelling through the gate drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PendKind {
    /// Driver output reaches the power transistor: the switch toggles.
    Apply { phase: usize, pmos: bool, value: bool },
    /// Threshold-crossing acknowledge back to the controller.
    Ack { phase: usize, pmos: bool, value: bool },
    /// Sensor reference switch takes effect.
    OvMode(bool),
    /// Scheduled load step.
    LoadStep(f64),
}

/// Interned track names for everything the testbench records,
/// registered once at build time so the hot loop never formats or
/// allocates a name (`format!("gp{phase}")`, `kind.to_string()`).
#[derive(Debug)]
struct TrackTable {
    hl: TrackId,
    uv: TrackId,
    ov: TrackId,
    oc: Vec<TrackId>,
    zc: Vec<TrackId>,
    gp: Vec<TrackId>,
    gn: Vec<TrackId>,
    ov_mode: TrackId,
    load_step: TrackId,
}

impl TrackTable {
    fn new(phases: usize) -> TrackTable {
        let per_phase = |prefix: &str| -> Vec<TrackId> {
            (0..phases)
                .map(|k| TrackId::intern(&format!("{prefix}{k}")))
                .collect()
        };
        TrackTable {
            hl: TrackId::intern("hl"),
            uv: TrackId::intern("uv"),
            ov: TrackId::intern("ov"),
            oc: per_phase("oc"),
            zc: per_phase("zc"),
            gp: per_phase("gp"),
            gn: per_phase("gn"),
            ov_mode: TrackId::intern("ov_mode"),
            load_step: TrackId::intern("load_step"),
        }
    }

    /// The track a sensor event is recorded on (renders exactly like
    /// the old `kind.to_string()`).
    fn sensor(&self, kind: SensorKind) -> TrackId {
        match kind {
            SensorKind::Hl => self.hl,
            SensorKind::Uv => self.uv,
            SensorKind::Ov => self.ov,
            SensorKind::Oc(k) => self.oc[k],
            SensorKind::Zc(k) => self.zc[k],
        }
    }

    /// The track a gate application is recorded on (`gp{phase}` /
    /// `gn{phase}`).
    fn gate(&self, phase: usize, pmos: bool) -> TrackId {
        if pmos {
            self.gp[phase]
        } else {
            self.gn[phase]
        }
    }
}

/// Builder for [`Testbench`].
#[derive(Debug)]
pub struct TestbenchBuilder {
    params: BuckParams,
    thresholds: SensorThresholds,
    gate_timing: GateTiming,
    dt: f64,
    record_every: usize,
    load_steps: Vec<(f64, f64)>,
}

impl TestbenchBuilder {
    /// Starts from default buck parameters and thresholds.
    pub fn new() -> Self {
        TestbenchBuilder {
            params: BuckParams::default(),
            thresholds: SensorThresholds::default(),
            gate_timing: GateTiming::default(),
            dt: 0.5e-9,
            record_every: 4,
            load_steps: Vec::new(),
        }
    }

    /// Sets the power-stage parameters.
    pub fn params(mut self, params: BuckParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the sensor thresholds.
    pub fn thresholds(mut self, thresholds: SensorThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Sets the gate-driver timing.
    pub fn gate_timing(mut self, gate_timing: GateTiming) -> Self {
        self.gate_timing = gate_timing;
        self
    }

    /// Sets the maximum analog step (default 0.5 ns). The value is
    /// validated at [`TestbenchBuilder::build`] time, so adversarial
    /// configurations surface as a typed error rather than a panic.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Records an analog sample every `n`·dt of simulated time (default
    /// 4). Sampling on a fixed time grid keeps the recorded waveform
    /// uniform even though the integration windows shrink at digital
    /// event boundaries — RMS-based metrics depend on this. Validated at
    /// [`TestbenchBuilder::build`] time.
    pub fn record_every(mut self, n: usize) -> Self {
        self.record_every = n;
        self
    }

    /// Schedules a load-resistance step at an absolute time. Validated
    /// at [`TestbenchBuilder::build`] time.
    pub fn load_step(mut self, at: f64, rload: f64) -> Self {
        self.load_steps.push((at, rload));
        self
    }

    /// Finalises with the given controller.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid; see
    /// [`TestbenchBuilder::try_build`] for the fallible variant.
    pub fn build<C: BuckController>(self, ctrl: C) -> Testbench<C> {
        match self.try_build(ctrl) {
            Ok(tb) => tb,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`TestbenchBuilder::build`]: validates the whole
    /// configuration — power-stage parameters (via [`Buck::try_new`]),
    /// controller/power-stage phase agreement, the analog step, the
    /// record decimation, and every scheduled load step — reporting the
    /// first violation as a [`SimError`].
    pub fn try_build<C: BuckController>(self, ctrl: C) -> Result<Testbench<C>, SimError> {
        let phases = ctrl.phases();
        if phases != self.params.phases {
            return Err(SimError::PhaseMismatch {
                controller: phases,
                power_stage: self.params.phases,
            });
        }
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(SimError::InvalidParameter {
                what: "analog step dt (s)",
                value: self.dt,
            });
        }
        if self.record_every == 0 {
            return Err(SimError::InvalidParameter {
                what: "record decimation",
                value: 0.0,
            });
        }
        for &(at, rload) in &self.load_steps {
            if !(at.is_finite() && at >= 0.0) {
                return Err(SimError::InvalidParameter {
                    what: "load-step time (s)",
                    value: at,
                });
            }
            if !(rload.is_finite() && rload > 0.0) {
                return Err(SimError::InvalidParameter {
                    what: "load-step rload (Ohm)",
                    value: rload,
                });
            }
        }
        let buck = Buck::try_new(self.params)?;
        let mut pending: Vec<(f64, PendKind)> = self
            .load_steps
            .iter()
            .map(|&(at, r)| (at, PendKind::LoadStep(r)))
            .collect();
        pending.sort_by(|a, b| a.0.total_cmp(&b.0));
        // The rest state at t = 0 is the first point of the uniform
        // sampling grid; subsequent grid points clamp the integration
        // windows so every sample lands exactly on the grid.
        let mut record = Waveform::new(phases);
        record.sample(0.0, 0.0, &vec![0.0; phases]);
        Ok(Testbench {
            buck,
            sensors: SensorBank::new(phases, self.thresholds),
            ctrl,
            gate_timing: self.gate_timing,
            dt: self.dt,
            record_every: self.record_every,
            next_sample_at: self.dt * self.record_every as f64,
            sample_idx: 1,
            pending: pending.into(),
            record,
            gp: vec![false; phases],
            gn: vec![false; phases],
            short_circuits: 0,
            last_delivered: Time::ZERO,
            debug_tracks: Vec::new(),
            tracks_buf: Vec::new(),
            events_buf: Vec::new(),
            cmds_buf: Vec::new(),
            tracks: TrackTable::new(phases),
        })
    }
}

impl Default for TestbenchBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The mixed-signal testbench coupling buck, sensors, gate drivers, and
/// a digital controller.
///
/// # Examples
///
/// ```
/// use a4a::TestbenchBuilder;
/// use a4a_ctrl::{AsyncController, AsyncTiming};
///
/// let ctrl = AsyncController::new(4, AsyncTiming::default());
/// let mut tb = TestbenchBuilder::new().build(ctrl);
/// tb.run_until(5e-6);
/// assert!(tb.buck().output_voltage() > 3.0, "regulated near 3.3 V");
/// ```
#[derive(Debug)]
pub struct Testbench<C: BuckController> {
    buck: Buck,
    sensors: SensorBank,
    ctrl: C,
    gate_timing: GateTiming,
    dt: f64,
    record_every: usize,
    /// Next point of the uniform sampling grid (`sample_idx` grid
    /// periods; kept as an index so the grid never drifts from
    /// accumulated floating-point error).
    next_sample_at: f64,
    /// Index of the next sampling-grid point.
    sample_idx: u64,
    /// Pending side effects sorted by time (kept sorted on insert;
    /// drained from the front in O(1)).
    pending: VecDeque<(f64, PendKind)>,
    record: Waveform,
    /// Commanded-and-applied switch states.
    gp: Vec<bool>,
    gn: Vec<bool>,
    /// Count of rejected simultaneous-on commands (must stay zero for a
    /// correct controller; counted instead of panicking so experiments
    /// can report it).
    short_circuits: usize,
    last_delivered: Time,
    /// Last seen controller debug-track values (for change detection).
    /// Tracks the controller stops reporting are dropped from this set,
    /// so a reappearing track is treated as new.
    debug_tracks: Vec<(TrackId, bool)>,
    /// Reused scratch for the per-window debug-track query.
    tracks_buf: Vec<(TrackId, bool)>,
    /// Reused buffer for the per-window comparator events.
    events_buf: Vec<SensorEvent>,
    /// Reused buffer for drained controller commands.
    cmds_buf: Vec<TimedCommand>,
    /// Interned track names, registered once at build time.
    tracks: TrackTable,
}

impl<C: BuckController> Testbench<C> {
    /// The analog power stage.
    pub fn buck(&self) -> &Buck {
        &self.buck
    }

    /// The sensor bank.
    pub fn sensors(&self) -> &SensorBank {
        &self.sensors
    }

    /// The controller.
    pub fn controller(&self) -> &C {
        &self.ctrl
    }

    /// The recorded waveform so far.
    pub fn waveform(&self) -> &Waveform {
        &self.record
    }

    /// Consumes the bench, returning the waveform.
    pub fn into_waveform(self) -> Waveform {
        self.record
    }

    /// Number of rejected short-circuit commands (zero for a correct
    /// controller).
    pub fn short_circuits(&self) -> usize {
        self.short_circuits
    }

    fn push_pending(&mut self, at: f64, kind: PendKind) {
        let idx = self.pending.partition_point(|&(t, _)| t <= at);
        self.pending.insert(idx, (at, kind));
    }

    /// Runs the co-simulation until `t_end` seconds.
    ///
    /// # Panics
    ///
    /// Panics on an invalid `t_end` or when the analog integration
    /// diverges; see [`Testbench::try_run_until`] for the fallible
    /// variant.
    pub fn run_until(&mut self, t_end: f64) {
        if let Err(e) = self.try_run_until(t_end) {
            panic!("{e}");
        }
    }

    /// Fallible [`Testbench::run_until`]: rejects a NaN `t_end` as
    /// [`SimError::InvalidParameter`] and propagates any integration
    /// failure ([`SimError::NonFinite`]) from the analog stage instead
    /// of panicking mid-run.
    pub fn try_run_until(&mut self, t_end: f64) -> Result<(), SimError> {
        if t_end.is_nan() {
            return Err(SimError::InvalidParameter {
                what: "t_end (s)",
                value: t_end,
            });
        }
        while self.buck.time() < t_end {
            let t = self.buck.time();
            // Window end: the earliest of max-step, the next sampling
            // grid point (so samples land *on* the uniform grid, not at
            // the first window end after it), pending side effects, and
            // controller wakeups.
            let mut tn = (t + self.dt).min(t_end);
            if self.next_sample_at > t {
                tn = tn.min(self.next_sample_at);
            }
            if let Some(&(tp, _)) = self.pending.front() {
                if tp > t {
                    tn = tn.min(tp);
                }
            }
            if let Some(w) = self.ctrl.next_wakeup() {
                let w = w.as_secs();
                if w > t {
                    tn = tn.min(w);
                }
            }
            if tn <= t {
                tn = t + self.dt.min(t_end - t).max(1e-12);
            }

            // 1. Integrate the analog stage over the window.
            self.buck.try_step(tn - t)?;

            // 2. Comparator events from the window, into the reused
            //    buffer (the buck hands out its current slice directly —
            //    no per-window collect).
            self.events_buf.clear();
            self.sensors.update_into(
                t,
                tn,
                self.buck.output_voltage(),
                self.buck.currents(),
                &mut self.events_buf,
            );

            // 3. Deliver sensor events, controller wakeups, and pending
            //    side effects in time order.
            self.deliver(tn)?;

            // 4. Record controller debug tracks (e.g. `act`,
            //    `get & !pass`) on change, like Figure 6's signal rows.
            //    Interned ids make the per-window comparison a few word
            //    compares instead of string compares.
            self.tracks_buf.clear();
            self.ctrl.debug_tracks_into(&mut self.tracks_buf);
            if self.tracks_buf != self.debug_tracks {
                for idx in 0..self.tracks_buf.len() {
                    let (id, value) = self.tracks_buf[idx];
                    let changed = self
                        .debug_tracks
                        .iter()
                        .find(|&&(n, _)| n == id)
                        .map(|&(_, v)| v != value)
                        .unwrap_or(true);
                    if changed {
                        self.record.event(tn, id, value);
                    }
                }
                // Adopt the new set wholesale: tracks that disappeared
                // are dropped (not carried forever), so a later
                // reappearance records again. Swap keeps both buffers'
                // capacity.
                std::mem::swap(&mut self.debug_tracks, &mut self.tracks_buf);
            }

            // 5. Record on a uniform time grid (windows vary in length,
            //    so per-window decimation would bias RMS metrics toward
            //    event-dense regions).
            if tn >= self.next_sample_at {
                self.record
                    .sample(tn, self.buck.output_voltage(), self.buck.currents());
                let period = self.dt * self.record_every as f64;
                loop {
                    self.sample_idx += 1;
                    self.next_sample_at = self.sample_idx as f64 * period;
                    if self.next_sample_at > tn {
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Delivers this window's comparator events (in `events_buf`, read
    /// through an index cursor — no `Vec::remove(0)` shifting),
    /// controller wakeups, and pending side effects in time order.
    fn deliver(&mut self, tn: f64) -> Result<(), SimError> {
        let mut cursor = 0;
        loop {
            // Earliest actionable item ≤ tn.
            let t_sensor = self.events_buf.get(cursor).map(|e| e.time);
            let t_pend = self.pending.front().map(|p| p.0).filter(|&x| x <= tn);
            let t_wake = self
                .ctrl
                .next_wakeup()
                .map(|w| w.as_secs())
                .filter(|&w| w <= tn);

            let next = [t_sensor, t_pend, t_wake]
                .into_iter()
                .flatten()
                .fold(f64::INFINITY, f64::min);
            if !next.is_finite() {
                break;
            }

            if Some(next) == t_wake && t_sensor.map(|x| next < x).unwrap_or(true)
                && t_pend.map(|x| next < x).unwrap_or(true)
            {
                let tw = self.clamp_time(next)?;
                self.ctrl.on_wakeup(tw);
                self.drain_commands();
                continue;
            }
            if Some(next) == t_pend && t_sensor.map(|x| next <= x).unwrap_or(true) {
                if let Some((at, kind)) = self.pending.pop_front() {
                    self.apply_pending(at, kind)?;
                }
                continue;
            }
            // Sensor event.
            let ev = self.events_buf[cursor];
            cursor += 1;
            // Let the controller's internal clock catch up first.
            let te = self.clamp_time(ev.time)?;
            if let Some(w) = self.ctrl.next_wakeup() {
                if w <= te {
                    self.ctrl.on_wakeup(te);
                    self.drain_commands();
                }
            }
            self.record
                .event(ev.time, self.tracks.sensor(ev.kind), ev.value);
            self.ctrl.on_sensor(te, ev.kind, ev.value);
            self.drain_commands();
        }
        Ok(())
    }

    /// Monotonic clamp: the controller must never see time move
    /// backwards even when interpolated event times interleave. A
    /// non-representable event time (e.g. a huge interpolated crossing)
    /// surfaces as [`SimError::InvalidTime`] instead of a panic.
    fn clamp_time(&mut self, secs: f64) -> Result<Time, SimError> {
        let t = Time::try_from_secs(secs.max(0.0))?;
        if t < self.last_delivered {
            return Ok(self.last_delivered);
        }
        self.last_delivered = t;
        Ok(t)
    }

    fn apply_pending(&mut self, at: f64, kind: PendKind) -> Result<(), SimError> {
        match kind {
            PendKind::Apply { phase, pmos, value } => {
                let (gp, gn) = if pmos {
                    (value, self.gn[phase])
                } else {
                    (self.gp[phase], value)
                };
                if gp && gn {
                    // A buggy controller would short the bridge; refuse
                    // and count (the STG-verified designs never hit this).
                    self.short_circuits += 1;
                    return Ok(());
                }
                self.gp[phase] = gp;
                self.gn[phase] = gn;
                self.buck.try_set_switch(phase, gp, gn)?;
                self.record.event(at, self.tracks.gate(phase, pmos), value);
                self.push_pending(
                    at + self.gate_timing.ack_delay.as_secs(),
                    PendKind::Ack { phase, pmos, value },
                );
            }
            PendKind::Ack { phase, pmos, value } => {
                let t = self.clamp_time(at)?;
                self.ctrl.on_gate_ack(t, phase, pmos, value);
                self.drain_commands();
            }
            PendKind::OvMode(on) => {
                // Cold path (mode switches are rare events): the Vec
                // returned by set_ov_mode is fine here.
                let evs = self.sensors.set_ov_mode(on, at);
                self.record.event(at, self.tracks.ov_mode, on);
                for ev in evs {
                    let te = self.clamp_time(ev.time)?;
                    self.record
                        .event(ev.time, self.tracks.sensor(ev.kind), ev.value);
                    self.ctrl.on_sensor(te, ev.kind, ev.value);
                }
                self.drain_commands();
            }
            PendKind::LoadStep(r) => {
                self.buck.try_set_load(r)?;
                self.record.event(at, self.tracks.load_step, true);
            }
        }
        Ok(())
    }

    fn drain_commands(&mut self) {
        // The buffer is taken out of `self` for the drain so the
        // controller and `push_pending` can both borrow; steady state
        // never allocates.
        let mut cmds = std::mem::take(&mut self.cmds_buf);
        cmds.clear();
        self.ctrl.take_commands_into(&mut cmds);
        for cmd in &cmds {
            let at = cmd.time.as_secs();
            match cmd.command {
                Command::Gate { phase, pmos, value } => {
                    self.push_pending(
                        at + self.gate_timing.driver_delay.as_secs(),
                        PendKind::Apply { phase, pmos, value },
                    );
                }
                Command::OvMode(on) => {
                    self.push_pending(at, PendKind::OvMode(on));
                }
            }
        }
        self.cmds_buf = cmds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4a_analog::metrics;
    use a4a_ctrl::{AsyncController, AsyncTiming, SyncController, SyncParams};

    #[test]
    fn async_bench_regulates_startup() {
        let ctrl = AsyncController::new(4, AsyncTiming::default());
        let mut tb = TestbenchBuilder::new().build(ctrl);
        tb.run_until(5e-6);
        let v = tb.buck().output_voltage();
        assert!(v > 3.0 && v < 3.6, "v = {v}");
        assert_eq!(tb.short_circuits(), 0);
        assert!(!tb.waveform().is_empty());
    }

    #[test]
    fn sync_bench_regulates_startup() {
        let ctrl = SyncController::new(4, SyncParams::at_mhz(333.0));
        let mut tb = TestbenchBuilder::new().build(ctrl);
        tb.run_until(5e-6);
        let v = tb.buck().output_voltage();
        assert!(v > 3.0 && v < 3.6, "v = {v}");
        assert_eq!(tb.short_circuits(), 0);
    }

    #[test]
    fn load_step_recovers() {
        let ctrl = AsyncController::new(4, AsyncTiming::default());
        let mut tb = TestbenchBuilder::new()
            .load_step(5e-6, 4.0)
            .load_step(7e-6, 6.0)
            .build(ctrl);
        tb.run_until(10e-6);
        let v = tb.buck().output_voltage();
        assert!(v > 3.0 && v < 3.6, "v = {v} after load excursion");
        // The waveform saw the load steps.
        assert!(tb
            .waveform()
            .events
            .iter()
            .filter(|(_, n, _)| n == "load_step")
            .count()
            == 2);
    }

    #[test]
    fn async_ripple_below_sync_ripple() {
        // The headline qualitative claim of Figure 6 in miniature.
        let run = |sync: bool| -> f64 {
            let builder = TestbenchBuilder::new();
            let w = if sync {
                let mut tb =
                    builder.build(SyncController::new(4, SyncParams::at_mhz(100.0)));
                tb.run_until(8e-6);
                tb.into_waveform()
            } else {
                let mut tb =
                    builder.build(AsyncController::new(4, AsyncTiming::default()));
                tb.run_until(8e-6);
                tb.into_waveform()
            };
            // Skip the startup transient.
            metrics::voltage_ripple(&w.window(4e-6, 8e-6))
        };
        let sync_ripple = run(true);
        let async_ripple = run(false);
        assert!(
            async_ripple <= sync_ripple,
            "async {async_ripple} vs sync {sync_ripple}"
        );
    }

    #[test]
    fn waveform_events_recorded() {
        let ctrl = AsyncController::new(2, AsyncTiming::default());
        let mut tb = TestbenchBuilder::new()
            .params(BuckParams::default().with_phases(2))
            .build(ctrl);
        tb.run_until(3e-6);
        let w = tb.waveform();
        assert!(w.events.iter().any(|(_, n, v)| n == "uv" && *v));
        assert!(w.events.iter().any(|(_, n, _)| n == "gp0"));
    }

    #[test]
    #[should_panic(expected = "disagree on phase count")]
    fn phase_mismatch_rejected() {
        let ctrl = AsyncController::new(2, AsyncTiming::default());
        let _ = TestbenchBuilder::new().build(ctrl);
    }

    #[test]
    fn try_build_reports_typed_errors() {
        use a4a_sim::SimError;

        let ctrl = AsyncController::new(2, AsyncTiming::default());
        assert!(matches!(
            TestbenchBuilder::new().try_build(ctrl),
            Err(SimError::PhaseMismatch {
                controller: 2,
                power_stage: 4
            })
        ));

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        assert!(matches!(
            TestbenchBuilder::new().dt(f64::NAN).try_build(ctrl),
            Err(SimError::InvalidParameter {
                what: "analog step dt (s)",
                ..
            })
        ));

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        assert!(matches!(
            TestbenchBuilder::new().record_every(0).try_build(ctrl),
            Err(SimError::InvalidParameter {
                what: "record decimation",
                ..
            })
        ));

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        assert!(matches!(
            TestbenchBuilder::new()
                .load_step(f64::NAN, 4.0)
                .try_build(ctrl),
            Err(SimError::InvalidParameter {
                what: "load-step time (s)",
                ..
            })
        ));

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        assert!(matches!(
            TestbenchBuilder::new()
                .load_step(5e-6, -1.0)
                .try_build(ctrl),
            Err(SimError::InvalidParameter {
                what: "load-step rload (Ohm)",
                ..
            })
        ));

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        let mut params = BuckParams::default();
        params.cap = f64::NAN;
        assert!(matches!(
            TestbenchBuilder::new().params(params).try_build(ctrl),
            Err(SimError::InvalidParameter { what: "cap (F)", .. })
        ));
    }

    #[test]
    fn disappearing_debug_track_is_dropped_and_rerecords() {
        use std::cell::RefCell;
        use std::rc::Rc;

        /// Inert controller whose debug-track list is steered from the
        /// outside (shared cell), to exercise the testbench's
        /// change-detection bookkeeping.
        struct TrackStub {
            tracks: Rc<RefCell<Vec<(a4a_analog::TrackId, bool)>>>,
        }
        impl BuckController for TrackStub {
            fn phases(&self) -> usize {
                4
            }
            fn on_sensor(&mut self, _: Time, _: a4a_analog::SensorKind, _: bool) {}
            fn on_gate_ack(&mut self, _: Time, _: usize, _: bool, _: bool) {}
            fn next_wakeup(&self) -> Option<Time> {
                None
            }
            fn on_wakeup(&mut self, _: Time) {}
            fn take_commands(&mut self) -> Vec<TimedCommand> {
                Vec::new()
            }
            fn debug_tracks_into(&self, out: &mut Vec<(a4a_analog::TrackId, bool)>) {
                out.extend(self.tracks.borrow().iter().copied());
            }
        }

        let dbg = a4a_analog::TrackId::intern("dbg-stub");
        let tracks = Rc::new(RefCell::new(vec![(dbg, true)]));
        let ctrl = TrackStub {
            tracks: Rc::clone(&tracks),
        };
        let mut tb = TestbenchBuilder::new().build(ctrl);
        let count = |tb: &Testbench<TrackStub>| {
            tb.waveform()
                .events
                .iter()
                .filter(|&&(_, n, _)| n == dbg)
                .count()
        };

        // Window 1: the track appears -> recorded once.
        tb.run_until(0.5e-9);
        assert_eq!(count(&tb), 1, "new track records an event");

        // The track disappears: no event, and it must not linger in
        // the stored set.
        tracks.borrow_mut().clear();
        tb.run_until(1.0e-9);
        assert_eq!(count(&tb), 1, "disappearing track records nothing");

        // It reappears with the *same* value: a stale stored entry
        // would suppress this; the drop semantics record it again.
        tracks.borrow_mut().push((dbg, true));
        tb.run_until(1.5e-9);
        assert_eq!(count(&tb), 2, "reappearing track records again");
    }

    #[test]
    fn try_run_until_rejects_nan_and_keeps_working() {
        use a4a_sim::SimError;

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        let mut tb = TestbenchBuilder::new()
            .try_build(ctrl)
            .expect("default configuration is valid");
        assert!(matches!(
            tb.try_run_until(f64::NAN),
            Err(SimError::InvalidParameter { what: "t_end (s)", .. })
        ));
        tb.try_run_until(2e-6).expect("normal run succeeds");
        assert!(tb.buck().output_voltage() > 0.0);
    }
}

#[cfg(test)]
mod accuracy_tests {
    use super::*;
    use a4a_analog::metrics;
    use a4a_ctrl::{AsyncController, AsyncTiming};

    /// The co-simulation's headline metrics are robust to the analog
    /// step size (the windowing at digital event boundaries does the
    /// heavy lifting; dt only bounds the integration error).
    #[test]
    fn metrics_robust_to_dt() {
        let run = |dt: f64| -> (f64, f64) {
            let ctrl = AsyncController::new(4, AsyncTiming::default());
            let mut tb = TestbenchBuilder::new().dt(dt).build(ctrl);
            tb.run_until(4e-6);
            let w = tb.into_waveform();
            let steady = w.window(2e-6, 4e-6);
            (
                metrics::mean_voltage(&steady),
                metrics::peak_current(&w),
            )
        };
        let (v_coarse, i_coarse) = run(1e-9);
        let (v_fine, i_fine) = run(0.25e-9);
        assert!(
            (v_coarse - v_fine).abs() < 0.05,
            "mean voltage: {v_coarse} vs {v_fine}"
        );
        assert!(
            (i_coarse - i_fine).abs() < 0.02,
            "peak current: {i_coarse} vs {i_fine}"
        );
    }
}
