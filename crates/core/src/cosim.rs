//! Mixed-signal co-simulation: the Cadence-AMS testbench stand-in.
//!
//! The analog buck integrates with a fixed maximum step, subdivided at
//! every digital event boundary (gate-driver application, controller
//! wakeup, scheduled load step), so switch toggles land at their exact
//! times. Comparator crossings inside a step are located by linear
//! interpolation and delivered to the controller in time order,
//! interleaved with the controller's own timer/clock wakeups.

use a4a_analog::{Buck, BuckParams, SensorBank, SensorEvent, SensorThresholds, Waveform};
use a4a_ctrl::{BuckController, Command, GateTiming, TimedCommand};
use a4a_sim::{SimError, Time};

/// Pending digital side effects travelling through the gate drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PendKind {
    /// Driver output reaches the power transistor: the switch toggles.
    Apply { phase: usize, pmos: bool, value: bool },
    /// Threshold-crossing acknowledge back to the controller.
    Ack { phase: usize, pmos: bool, value: bool },
    /// Sensor reference switch takes effect.
    OvMode(bool),
    /// Scheduled load step.
    LoadStep(f64),
}

/// Builder for [`Testbench`].
#[derive(Debug)]
pub struct TestbenchBuilder {
    params: BuckParams,
    thresholds: SensorThresholds,
    gate_timing: GateTiming,
    dt: f64,
    record_every: usize,
    load_steps: Vec<(f64, f64)>,
}

impl TestbenchBuilder {
    /// Starts from default buck parameters and thresholds.
    pub fn new() -> Self {
        TestbenchBuilder {
            params: BuckParams::default(),
            thresholds: SensorThresholds::default(),
            gate_timing: GateTiming::default(),
            dt: 0.5e-9,
            record_every: 4,
            load_steps: Vec::new(),
        }
    }

    /// Sets the power-stage parameters.
    pub fn params(mut self, params: BuckParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the sensor thresholds.
    pub fn thresholds(mut self, thresholds: SensorThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Sets the gate-driver timing.
    pub fn gate_timing(mut self, gate_timing: GateTiming) -> Self {
        self.gate_timing = gate_timing;
        self
    }

    /// Sets the maximum analog step (default 0.5 ns). The value is
    /// validated at [`TestbenchBuilder::build`] time, so adversarial
    /// configurations surface as a typed error rather than a panic.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Records an analog sample every `n`·dt of simulated time (default
    /// 4). Sampling on a fixed time grid keeps the recorded waveform
    /// uniform even though the integration windows shrink at digital
    /// event boundaries — RMS-based metrics depend on this. Validated at
    /// [`TestbenchBuilder::build`] time.
    pub fn record_every(mut self, n: usize) -> Self {
        self.record_every = n;
        self
    }

    /// Schedules a load-resistance step at an absolute time. Validated
    /// at [`TestbenchBuilder::build`] time.
    pub fn load_step(mut self, at: f64, rload: f64) -> Self {
        self.load_steps.push((at, rload));
        self
    }

    /// Finalises with the given controller.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid; see
    /// [`TestbenchBuilder::try_build`] for the fallible variant.
    pub fn build<C: BuckController>(self, ctrl: C) -> Testbench<C> {
        match self.try_build(ctrl) {
            Ok(tb) => tb,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`TestbenchBuilder::build`]: validates the whole
    /// configuration — power-stage parameters (via [`Buck::try_new`]),
    /// controller/power-stage phase agreement, the analog step, the
    /// record decimation, and every scheduled load step — reporting the
    /// first violation as a [`SimError`].
    pub fn try_build<C: BuckController>(self, ctrl: C) -> Result<Testbench<C>, SimError> {
        let phases = ctrl.phases();
        if phases != self.params.phases {
            return Err(SimError::PhaseMismatch {
                controller: phases,
                power_stage: self.params.phases,
            });
        }
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(SimError::InvalidParameter {
                what: "analog step dt (s)",
                value: self.dt,
            });
        }
        if self.record_every == 0 {
            return Err(SimError::InvalidParameter {
                what: "record decimation",
                value: 0.0,
            });
        }
        for &(at, rload) in &self.load_steps {
            if !(at.is_finite() && at >= 0.0) {
                return Err(SimError::InvalidParameter {
                    what: "load-step time (s)",
                    value: at,
                });
            }
            if !(rload.is_finite() && rload > 0.0) {
                return Err(SimError::InvalidParameter {
                    what: "load-step rload (Ohm)",
                    value: rload,
                });
            }
        }
        let buck = Buck::try_new(self.params)?;
        let mut pending: Vec<(f64, PendKind)> = self
            .load_steps
            .iter()
            .map(|&(at, r)| (at, PendKind::LoadStep(r)))
            .collect();
        pending.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(Testbench {
            buck,
            sensors: SensorBank::new(phases, self.thresholds),
            ctrl,
            gate_timing: self.gate_timing,
            dt: self.dt,
            record_every: self.record_every,
            next_sample_at: 0.0,
            pending,
            record: Waveform::new(phases),
            gp: vec![false; phases],
            gn: vec![false; phases],
            short_circuits: 0,
            last_delivered: Time::ZERO,
            debug_tracks: Vec::new(),
        })
    }
}

impl Default for TestbenchBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The mixed-signal testbench coupling buck, sensors, gate drivers, and
/// a digital controller.
///
/// # Examples
///
/// ```
/// use a4a::TestbenchBuilder;
/// use a4a_ctrl::{AsyncController, AsyncTiming};
///
/// let ctrl = AsyncController::new(4, AsyncTiming::default());
/// let mut tb = TestbenchBuilder::new().build(ctrl);
/// tb.run_until(5e-6);
/// assert!(tb.buck().output_voltage() > 3.0, "regulated near 3.3 V");
/// ```
#[derive(Debug)]
pub struct Testbench<C: BuckController> {
    buck: Buck,
    sensors: SensorBank,
    ctrl: C,
    gate_timing: GateTiming,
    dt: f64,
    record_every: usize,
    /// Next point of the uniform sampling grid.
    next_sample_at: f64,
    /// Pending side effects sorted by time (kept sorted on insert).
    pending: Vec<(f64, PendKind)>,
    record: Waveform,
    /// Commanded-and-applied switch states.
    gp: Vec<bool>,
    gn: Vec<bool>,
    /// Count of rejected simultaneous-on commands (must stay zero for a
    /// correct controller; counted instead of panicking so experiments
    /// can report it).
    short_circuits: usize,
    last_delivered: Time,
    /// Last seen controller debug-track values (for change detection).
    debug_tracks: Vec<(String, bool)>,
}

impl<C: BuckController> Testbench<C> {
    /// The analog power stage.
    pub fn buck(&self) -> &Buck {
        &self.buck
    }

    /// The sensor bank.
    pub fn sensors(&self) -> &SensorBank {
        &self.sensors
    }

    /// The controller.
    pub fn controller(&self) -> &C {
        &self.ctrl
    }

    /// The recorded waveform so far.
    pub fn waveform(&self) -> &Waveform {
        &self.record
    }

    /// Consumes the bench, returning the waveform.
    pub fn into_waveform(self) -> Waveform {
        self.record
    }

    /// Number of rejected short-circuit commands (zero for a correct
    /// controller).
    pub fn short_circuits(&self) -> usize {
        self.short_circuits
    }

    fn push_pending(&mut self, at: f64, kind: PendKind) {
        let idx = self
            .pending
            .partition_point(|&(t, _)| t <= at);
        self.pending.insert(idx, (at, kind));
    }

    /// Runs the co-simulation until `t_end` seconds.
    ///
    /// # Panics
    ///
    /// Panics on an invalid `t_end` or when the analog integration
    /// diverges; see [`Testbench::try_run_until`] for the fallible
    /// variant.
    pub fn run_until(&mut self, t_end: f64) {
        if let Err(e) = self.try_run_until(t_end) {
            panic!("{e}");
        }
    }

    /// Fallible [`Testbench::run_until`]: rejects a NaN `t_end` as
    /// [`SimError::InvalidParameter`] and propagates any integration
    /// failure ([`SimError::NonFinite`]) from the analog stage instead
    /// of panicking mid-run.
    pub fn try_run_until(&mut self, t_end: f64) -> Result<(), SimError> {
        if t_end.is_nan() {
            return Err(SimError::InvalidParameter {
                what: "t_end (s)",
                value: t_end,
            });
        }
        while self.buck.time() < t_end {
            let t = self.buck.time();
            // Window end: the earliest of max-step, pending side effects,
            // and controller wakeups.
            let mut tn = (t + self.dt).min(t_end);
            if let Some(&(tp, _)) = self.pending.first() {
                if tp > t {
                    tn = tn.min(tp);
                }
            }
            if let Some(w) = self.ctrl.next_wakeup() {
                let w = w.as_secs();
                if w > t {
                    tn = tn.min(w);
                }
            }
            if tn <= t {
                tn = t + self.dt.min(t_end - t).max(1e-12);
            }

            // 1. Integrate the analog stage over the window.
            self.buck.try_step(tn - t)?;

            // 2. Comparator events from the window.
            let currents: Vec<f64> = (0..self.buck.params().phases)
                .map(|k| self.buck.coil_current(k))
                .collect();
            let events = self
                .sensors
                .update(t, tn, self.buck.output_voltage(), &currents);

            // 3. Deliver sensor events, controller wakeups, and pending
            //    side effects in time order.
            self.deliver(events, tn);

            // 4. Record controller debug tracks (e.g. `act`,
            //    `get & !pass`) on change, like Figure 6's signal rows.
            let tracks = self.ctrl.debug_tracks();
            if tracks != self.debug_tracks {
                for (name, value) in &tracks {
                    let changed = self
                        .debug_tracks
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| v != value)
                        .unwrap_or(true);
                    if changed {
                        self.record.event(tn, name.clone(), *value);
                    }
                }
                self.debug_tracks = tracks;
            }

            // 5. Record on a uniform time grid (windows vary in length,
            //    so per-window decimation would bias RMS metrics toward
            //    event-dense regions).
            if tn >= self.next_sample_at {
                let currents: Vec<f64> = (0..self.buck.params().phases)
                    .map(|k| self.buck.coil_current(k))
                    .collect();
                self.record
                    .sample(tn, self.buck.output_voltage(), &currents);
                let period = self.dt * self.record_every as f64;
                self.next_sample_at = (tn / period).floor() * period + period;
            }
        }
        Ok(())
    }

    fn deliver(&mut self, mut events: Vec<SensorEvent>, tn: f64) {
        loop {
            // Earliest actionable item ≤ tn.
            let t_sensor = events.first().map(|e| e.time);
            let t_pend = self.pending.first().map(|p| p.0).filter(|&x| x <= tn);
            let t_wake = self
                .ctrl
                .next_wakeup()
                .map(|w| w.as_secs())
                .filter(|&w| w <= tn);

            let next = [t_sensor, t_pend, t_wake]
                .into_iter()
                .flatten()
                .fold(f64::INFINITY, f64::min);
            if !next.is_finite() {
                break;
            }

            if Some(next) == t_wake && t_sensor.map(|x| next < x).unwrap_or(true)
                && t_pend.map(|x| next < x).unwrap_or(true)
            {
                let tw = self.clamp_time(next);
                self.ctrl.on_wakeup(tw);
                self.drain_commands();
                continue;
            }
            if Some(next) == t_pend && t_sensor.map(|x| next <= x).unwrap_or(true) {
                let (at, kind) = self.pending.remove(0);
                self.apply_pending(at, kind);
                continue;
            }
            // Sensor event.
            let ev = events.remove(0);
            // Let the controller's internal clock catch up first.
            let te = self.clamp_time(ev.time);
            if let Some(w) = self.ctrl.next_wakeup() {
                if w <= te {
                    self.ctrl.on_wakeup(te);
                    self.drain_commands();
                }
            }
            self.record
                .event(ev.time, ev.kind.to_string(), ev.value);
            self.ctrl.on_sensor(te, ev.kind, ev.value);
            self.drain_commands();
        }
    }

    /// Monotonic clamp: the controller must never see time move
    /// backwards even when interpolated event times interleave.
    fn clamp_time(&mut self, secs: f64) -> Time {
        let t = Time::from_secs(secs.max(0.0));
        if t < self.last_delivered {
            return self.last_delivered;
        }
        self.last_delivered = t;
        t
    }

    fn apply_pending(&mut self, at: f64, kind: PendKind) {
        match kind {
            PendKind::Apply { phase, pmos, value } => {
                let (gp, gn) = if pmos {
                    (value, self.gn[phase])
                } else {
                    (self.gp[phase], value)
                };
                if gp && gn {
                    // A buggy controller would short the bridge; refuse
                    // and count (the STG-verified designs never hit this).
                    self.short_circuits += 1;
                    return;
                }
                self.gp[phase] = gp;
                self.gn[phase] = gn;
                self.buck.set_switch(phase, gp, gn);
                self.record.event(
                    at,
                    format!("{}{}", if pmos { "gp" } else { "gn" }, phase),
                    value,
                );
                self.push_pending(
                    at + self.gate_timing.ack_delay.as_secs(),
                    PendKind::Ack { phase, pmos, value },
                );
            }
            PendKind::Ack { phase, pmos, value } => {
                let t = self.clamp_time(at);
                self.ctrl.on_gate_ack(t, phase, pmos, value);
                self.drain_commands();
            }
            PendKind::OvMode(on) => {
                let evs = self.sensors.set_ov_mode(on, at);
                self.record.event(at, "ov_mode", on);
                for ev in evs {
                    let te = self.clamp_time(ev.time);
                    self.record.event(ev.time, ev.kind.to_string(), ev.value);
                    self.ctrl.on_sensor(te, ev.kind, ev.value);
                }
                self.drain_commands();
            }
            PendKind::LoadStep(r) => {
                self.buck.set_load(r);
                self.record.event(at, "load_step", true);
            }
        }
    }

    fn drain_commands(&mut self) {
        let cmds: Vec<TimedCommand> = self.ctrl.take_commands();
        for cmd in cmds {
            let at = cmd.time.as_secs();
            match cmd.command {
                Command::Gate { phase, pmos, value } => {
                    self.push_pending(
                        at + self.gate_timing.driver_delay.as_secs(),
                        PendKind::Apply { phase, pmos, value },
                    );
                }
                Command::OvMode(on) => {
                    self.push_pending(at, PendKind::OvMode(on));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4a_analog::metrics;
    use a4a_ctrl::{AsyncController, AsyncTiming, SyncController, SyncParams};

    #[test]
    fn async_bench_regulates_startup() {
        let ctrl = AsyncController::new(4, AsyncTiming::default());
        let mut tb = TestbenchBuilder::new().build(ctrl);
        tb.run_until(5e-6);
        let v = tb.buck().output_voltage();
        assert!(v > 3.0 && v < 3.6, "v = {v}");
        assert_eq!(tb.short_circuits(), 0);
        assert!(!tb.waveform().is_empty());
    }

    #[test]
    fn sync_bench_regulates_startup() {
        let ctrl = SyncController::new(4, SyncParams::at_mhz(333.0));
        let mut tb = TestbenchBuilder::new().build(ctrl);
        tb.run_until(5e-6);
        let v = tb.buck().output_voltage();
        assert!(v > 3.0 && v < 3.6, "v = {v}");
        assert_eq!(tb.short_circuits(), 0);
    }

    #[test]
    fn load_step_recovers() {
        let ctrl = AsyncController::new(4, AsyncTiming::default());
        let mut tb = TestbenchBuilder::new()
            .load_step(5e-6, 4.0)
            .load_step(7e-6, 6.0)
            .build(ctrl);
        tb.run_until(10e-6);
        let v = tb.buck().output_voltage();
        assert!(v > 3.0 && v < 3.6, "v = {v} after load excursion");
        // The waveform saw the load steps.
        assert!(tb
            .waveform()
            .events
            .iter()
            .filter(|(_, n, _)| n == "load_step")
            .count()
            == 2);
    }

    #[test]
    fn async_ripple_below_sync_ripple() {
        // The headline qualitative claim of Figure 6 in miniature.
        let run = |sync: bool| -> f64 {
            let builder = TestbenchBuilder::new();
            let w = if sync {
                let mut tb =
                    builder.build(SyncController::new(4, SyncParams::at_mhz(100.0)));
                tb.run_until(8e-6);
                tb.into_waveform()
            } else {
                let mut tb =
                    builder.build(AsyncController::new(4, AsyncTiming::default()));
                tb.run_until(8e-6);
                tb.into_waveform()
            };
            // Skip the startup transient.
            metrics::voltage_ripple(&w.window(4e-6, 8e-6))
        };
        let sync_ripple = run(true);
        let async_ripple = run(false);
        assert!(
            async_ripple <= sync_ripple,
            "async {async_ripple} vs sync {sync_ripple}"
        );
    }

    #[test]
    fn waveform_events_recorded() {
        let ctrl = AsyncController::new(2, AsyncTiming::default());
        let mut tb = TestbenchBuilder::new()
            .params(BuckParams::default().with_phases(2))
            .build(ctrl);
        tb.run_until(3e-6);
        let w = tb.waveform();
        assert!(w.events.iter().any(|(_, n, v)| n == "uv" && *v));
        assert!(w.events.iter().any(|(_, n, _)| n == "gp0"));
    }

    #[test]
    #[should_panic(expected = "disagree on phase count")]
    fn phase_mismatch_rejected() {
        let ctrl = AsyncController::new(2, AsyncTiming::default());
        let _ = TestbenchBuilder::new().build(ctrl);
    }

    #[test]
    fn try_build_reports_typed_errors() {
        use a4a_sim::SimError;

        let ctrl = AsyncController::new(2, AsyncTiming::default());
        assert!(matches!(
            TestbenchBuilder::new().try_build(ctrl),
            Err(SimError::PhaseMismatch {
                controller: 2,
                power_stage: 4
            })
        ));

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        assert!(matches!(
            TestbenchBuilder::new().dt(f64::NAN).try_build(ctrl),
            Err(SimError::InvalidParameter {
                what: "analog step dt (s)",
                ..
            })
        ));

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        assert!(matches!(
            TestbenchBuilder::new().record_every(0).try_build(ctrl),
            Err(SimError::InvalidParameter {
                what: "record decimation",
                ..
            })
        ));

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        assert!(matches!(
            TestbenchBuilder::new()
                .load_step(f64::NAN, 4.0)
                .try_build(ctrl),
            Err(SimError::InvalidParameter {
                what: "load-step time (s)",
                ..
            })
        ));

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        assert!(matches!(
            TestbenchBuilder::new()
                .load_step(5e-6, -1.0)
                .try_build(ctrl),
            Err(SimError::InvalidParameter {
                what: "load-step rload (Ohm)",
                ..
            })
        ));

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        let mut params = BuckParams::default();
        params.cap = f64::NAN;
        assert!(matches!(
            TestbenchBuilder::new().params(params).try_build(ctrl),
            Err(SimError::InvalidParameter { what: "cap (F)", .. })
        ));
    }

    #[test]
    fn try_run_until_rejects_nan_and_keeps_working() {
        use a4a_sim::SimError;

        let ctrl = AsyncController::new(4, AsyncTiming::default());
        let mut tb = TestbenchBuilder::new()
            .try_build(ctrl)
            .expect("default configuration is valid");
        assert!(matches!(
            tb.try_run_until(f64::NAN),
            Err(SimError::InvalidParameter { what: "t_end (s)", .. })
        ));
        tb.try_run_until(2e-6).expect("normal run succeeds");
        assert!(tb.buck().output_voltage() > 0.0);
    }
}

#[cfg(test)]
mod accuracy_tests {
    use super::*;
    use a4a_analog::metrics;
    use a4a_ctrl::{AsyncController, AsyncTiming};

    /// The co-simulation's headline metrics are robust to the analog
    /// step size (the windowing at digital event boundaries does the
    /// heavy lifting; dt only bounds the integration error).
    #[test]
    fn metrics_robust_to_dt() {
        let run = |dt: f64| -> (f64, f64) {
            let ctrl = AsyncController::new(4, AsyncTiming::default());
            let mut tb = TestbenchBuilder::new().dt(dt).build(ctrl);
            tb.run_until(4e-6);
            let w = tb.into_waveform();
            let steady = w.window(2e-6, 4e-6);
            (
                metrics::mean_voltage(&steady),
                metrics::peak_current(&w),
            )
        };
        let (v_coarse, i_coarse) = run(1e-9);
        let (v_fine, i_fine) = run(0.25e-9);
        assert!(
            (v_coarse - v_fine).abs() < 0.05,
            "mean voltage: {v_coarse} vs {v_fine}"
        );
        assert!(
            (i_coarse - i_fine).abs() < 0.02,
            "peak current: {i_coarse} vs {i_fine}"
        );
    }
}
