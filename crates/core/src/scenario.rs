//! The evaluation workloads of §V.
//!
//! [`fig6`] builds the Figure 6 scenario (startup → normal load → high
//! load → normal load over 10 µs); [`sweep_coil`] and [`sweep_load`]
//! build the Figure 7 grids. Each returns a configured
//! [`TestbenchBuilder`] so callers only plug in a controller.

use a4a_analog::{BuckParams, CoilModel, SensorThresholds};

use crate::TestbenchBuilder;

/// Which controller drives a run (used by the benches to label series).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControllerKind {
    /// Synchronous at the given `fsm_clk` in MHz.
    Sync(f64),
    /// The asynchronous token ring.
    Async,
}

impl ControllerKind {
    /// The five series of Figures 7a–7c.
    pub fn paper_series() -> Vec<ControllerKind> {
        vec![
            ControllerKind::Sync(100.0),
            ControllerKind::Sync(333.0),
            ControllerKind::Sync(666.0),
            ControllerKind::Sync(1000.0),
            ControllerKind::Async,
        ]
    }

    /// Series label as used in the paper's legends.
    pub fn label(&self) -> String {
        match self {
            ControllerKind::Sync(mhz) if *mhz >= 1000.0 => "1GHz".to_string(),
            ControllerKind::Sync(mhz) => format!("{}MHz", *mhz as u64),
            ControllerKind::Async => "ASYNC".to_string(),
        }
    }
}

/// End time of the Figure 6 run (seconds).
pub const FIG6_T_END: f64 = 10e-6;
/// The normal-load measurement window of Figure 6 (after startup,
/// before the high-load step).
pub const FIG6_NORMAL_WINDOW: (f64, f64) = (2e-6, 6.8e-6);

/// The Figure 6 scenario: startup at t=0 into a 6 Ω load, a high-load
/// step to 3.6 Ω at 7 µs, back to 6 Ω at 8 µs; 4 phases, 4.7 µH coils.
pub fn fig6() -> TestbenchBuilder {
    TestbenchBuilder::new()
        .params(BuckParams::default())
        .thresholds(SensorThresholds::default())
        .load_step(7e-6, 3.6)
        .load_step(8e-6, 6.0)
}

/// A Figure 7a/7c grid point: `l_uh` µH coils at `rload` Ω, run to a
/// steady 8 µs without load steps.
pub fn sweep_coil(l_uh: f64, rload: f64) -> TestbenchBuilder {
    TestbenchBuilder::new().params(
        BuckParams::default()
            .with_coil(CoilModel::coilcraft(l_uh))
            .with_load(rload),
    )
}

/// A Figure 7b grid point: 4.7 µH coils at `rload` Ω.
pub fn sweep_load(rload: f64) -> TestbenchBuilder {
    sweep_coil(4.7, rload)
}

/// The coil grid of Figures 7a and 7c (µH).
pub fn coil_grid() -> Vec<f64> {
    CoilModel::family_uh()
}

/// The load grid of Figure 7b (Ω).
pub fn load_grid() -> Vec<f64> {
    vec![3.0, 6.0, 9.0, 12.0, 15.0]
}

/// Builds a boxed controller of the given kind for `phases` phases.
pub fn controller(kind: ControllerKind, phases: usize) -> Box<dyn a4a_ctrl::BuckController> {
    match kind {
        ControllerKind::Sync(mhz) => Box::new(a4a_ctrl::SyncController::new(
            phases,
            a4a_ctrl::SyncParams::at_mhz(mhz),
        )),
        ControllerKind::Async => Box::new(a4a_ctrl::AsyncController::new(
            phases,
            a4a_ctrl::AsyncTiming::default(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_labels() {
        let labels: Vec<String> = ControllerKind::paper_series()
            .iter()
            .map(ControllerKind::label)
            .collect();
        assert_eq!(labels, vec!["100MHz", "333MHz", "666MHz", "1GHz", "ASYNC"]);
    }

    #[test]
    fn grids_match_paper() {
        assert_eq!(coil_grid().len(), 9);
        assert_eq!(load_grid(), vec![3.0, 6.0, 9.0, 12.0, 15.0]);
    }

    #[test]
    fn controllers_constructible() {
        for kind in ControllerKind::paper_series() {
            let c = controller(kind, 4);
            assert_eq!(c.phases(), 4);
        }
    }
}
