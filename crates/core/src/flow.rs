use std::error::Error;
use std::fmt;

use a4a_netlist::verilog;
use a4a_sim::SimError;
use a4a_stg::{Stg, VerifyReport};
use a4a_synth::{synthesize, verify_si, SiReport, SynthError, SynthOptions, SynthStyle, Synthesis};

/// Errors raised by [`A4aFlow::run`] and by drivers that chain the flow
/// with the mixed-signal testbench.
#[derive(Debug, Clone)]
pub enum FlowError {
    /// The specification failed a sanity check (deadlock, persistence,
    /// CSC) or could not be explored.
    Specification {
        /// The failed stage's report, rendered.
        report: String,
    },
    /// Synthesis or SI verification failed.
    Synthesis(SynthError),
    /// The co-simulation stage failed (invalid testbench configuration,
    /// diverging analog integration, scheduler misuse). Lets `?` carry a
    /// [`SimError`] from [`crate::TestbenchBuilder::try_build`] /
    /// [`crate::Testbench::try_run_until`] through a flow-typed driver.
    Simulation(SimError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Specification { report } => {
                write!(f, "specification failed sanity checks:\n{report}")
            }
            FlowError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            FlowError::Simulation(e) => write!(f, "co-simulation failed: {e}"),
        }
    }
}

impl Error for FlowError {}

impl From<SynthError> for FlowError {
    fn from(e: SynthError) -> Self {
        FlowError::Synthesis(e)
    }
}

impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Simulation(e)
    }
}

/// All artefacts produced by one run of the A4A flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The sanity-check report (consistency is implied by existence).
    pub sanity: VerifyReport,
    /// The synthesised implementation.
    pub synthesis: Synthesis,
    /// The gate-level conformance / hazard report.
    pub si: SiReport,
    /// The specification in `.g` interchange format.
    pub g_format: String,
    /// The implementation as structural Verilog.
    pub verilog: String,
    /// Human-readable signal equations.
    pub equations: String,
}

/// The automated A4A design flow of Figure 3: formal specification in,
/// verified speed-independent netlist out.
///
/// # Examples
///
/// See the crate-level example; the `a4a_flow` workspace example runs
/// the flow over every controller module.
#[derive(Debug, Clone)]
pub struct A4aFlow {
    stg: Stg,
    options: SynthOptions,
    max_states: usize,
}

impl A4aFlow {
    /// Creates a flow over a specification with complex-gate synthesis.
    pub fn new(stg: Stg) -> Self {
        A4aFlow {
            stg,
            options: SynthOptions::new(SynthStyle::ComplexGate),
            max_states: 1_000_000,
        }
    }

    /// Selects the implementation style.
    pub fn with_style(mut self, style: SynthStyle) -> Self {
        self.options.style = style;
        self
    }

    /// Replaces the synthesis options wholesale.
    pub fn with_options(mut self, options: SynthOptions) -> Self {
        self.options = options;
        self
    }

    /// The specification.
    pub fn stg(&self) -> &Stg {
        &self.stg
    }

    /// Runs specification → sanity check → synthesis → SI verification.
    ///
    /// # Errors
    ///
    /// * [`FlowError::Specification`] when the STG is inconsistent,
    ///   deadlocking, non-persistent, or has CSC conflicts;
    /// * [`FlowError::Synthesis`] when minimisation, netlist assembly,
    ///   or the joint verification fail.
    pub fn run(&self) -> Result<FlowResult, FlowError> {
        let sg = self
            .stg
            .state_graph(self.max_states)
            .map_err(|e| FlowError::Specification {
                report: e.to_string(),
            })?;
        let sanity = self.stg.verify(&sg);
        if !sanity.is_clean() {
            return Err(FlowError::Specification {
                report: sanity.summary(),
            });
        }
        let synthesis = synthesize(&self.stg, &self.options)?;
        let si = verify_si(&self.stg, synthesis.netlist(), self.max_states)?;
        let verilog = verilog::emit(synthesis.netlist());
        let g_format = self.stg.to_g();
        let equations = synthesis.equations(&self.stg);
        Ok(FlowResult {
            sanity,
            synthesis,
            si,
            g_format,
            verilog,
            equations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_runs_on_handshake() {
        let stg = Stg::parse_g(
            "\
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
",
        )
        .unwrap();
        let result = A4aFlow::new(stg).run().unwrap();
        assert!(result.sanity.is_clean());
        assert!(result.si.is_clean());
        assert!(result.verilog.contains("assign ack = req;"));
        assert!(result.g_format.contains(".model hs"));
        assert!(result.equations.contains("ack ="));
    }

    #[test]
    fn flow_rejects_csc_conflict() {
        let stg = Stg::parse_g(
            "\
.model bad
.inputs a
.outputs b
.graph
a+ a-
a- b+
b+ b-
b- a+
.marking { <b-,a+> }
.end
",
        )
        .unwrap();
        let err = A4aFlow::new(stg).run().unwrap_err();
        assert!(matches!(err, FlowError::Specification { .. }), "{err}");
    }

    #[test]
    fn sim_errors_convert_into_flow_errors() {
        // A driver that runs flow → testbench can use `?` throughout.
        fn driver() -> Result<f64, FlowError> {
            let stg = a4a_a2a::spec::wait_stg();
            let _ = A4aFlow::new(stg).run()?;
            let ctrl = a4a_ctrl::AsyncController::new(4, a4a_ctrl::AsyncTiming::default());
            let mut tb = crate::TestbenchBuilder::new().try_build(ctrl)?;
            tb.try_run_until(1e-6)?;
            Ok(tb.buck().output_voltage())
        }
        assert!(driver().unwrap() > 0.0);

        let e: FlowError = SimError::StaleKey.into();
        assert!(matches!(e, FlowError::Simulation(SimError::StaleKey)));
        assert!(e.to_string().contains("co-simulation failed"));
    }

    #[test]
    fn both_styles_verify() {
        let stg = a4a_a2a::spec::wait_stg();
        for style in [SynthStyle::ComplexGate, SynthStyle::GeneralizedC] {
            let result = A4aFlow::new(stg.clone()).with_style(style).run().unwrap();
            assert!(result.si.is_clean(), "{style:?}");
        }
    }
}
