//! `a4a` — command-line front end to the A4A flow, the Workcraft
//! equivalent for scripted use:
//!
//! ```text
//! a4a verify  <spec.g>             sanity checks (+ state-graph stats)
//! a4a synth   <spec.g> [--gc]      synthesise; print equations & stats
//! a4a verilog <spec.g> [--gc] [--map]
//!                                  emit structural Verilog (optionally
//!                                  technology-mapped to 2-input cells)
//! a4a timing  <spec.g> [--gc]      static timing report of the netlist
//! a4a dot     <spec.g> [--sg]      Graphviz of the STG (or state graph)
//! a4a modules [dir]                write the built-in controller and A2A
//!                                  module specs as .g files
//! ```
//!
//! A path of `-` reads the specification from stdin.

use std::io::Read as _;
use std::process::ExitCode;

use a4a::A4aFlow;
use a4a_netlist::{decompose, verilog, GateLib};
use a4a_stg::Stg;
use a4a_synth::SynthStyle;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("a4a: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let flags: Vec<&str> = args[1..]
        .iter()
        .filter(|a| a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let positional: Vec<&str> = args[1..]
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if let Some(bad) = flags
        .iter()
        .find(|f| !matches!(**f, "--gc" | "--map" | "--sg"))
    {
        return Err(format!("unknown flag {bad:?}\n{}", usage()));
    }
    let style = if flags.contains(&"--gc") {
        SynthStyle::GeneralizedC
    } else {
        SynthStyle::ComplexGate
    };

    match command.as_str() {
        "verify" => {
            let stg = load(positional.first().copied())?;
            let sg = stg
                .state_graph(1_000_000)
                .map_err(|e| format!("state graph: {e}"))?;
            let report = stg.verify(&sg);
            Ok(format!(
                "{}\nstates: {}  edges: {}\n{}",
                stg,
                sg.state_count(),
                sg.edge_count(),
                report.summary()
            ))
        }
        "synth" => {
            let stg = load(positional.first().copied())?;
            let result = A4aFlow::new(stg.clone())
                .with_style(style)
                .run()
                .map_err(|e| e.to_string())?;
            Ok(format!(
                "{}\n{}gates: {}  literals: {}\nSI: {} joint states, {} violations\n",
                stg,
                result.equations,
                result.synthesis.netlist().gate_count(),
                result.synthesis.literal_count(),
                result.si.states,
                result.si.violations.len()
            ))
        }
        "verilog" => {
            let stg = load(positional.first().copied())?;
            let result = A4aFlow::new(stg)
                .with_style(style)
                .run()
                .map_err(|e| e.to_string())?;
            if flags.contains(&"--map") {
                let mapped = decompose(result.synthesis.netlist(), &GateLib::tsmc90())
                    .map_err(|e| format!("mapping: {e}"))?;
                Ok(verilog::emit(&mapped))
            } else {
                Ok(result.verilog)
            }
        }
        "timing" => {
            let stg = load(positional.first().copied())?;
            let result = A4aFlow::new(stg)
                .with_style(style)
                .run()
                .map_err(|e| e.to_string())?;
            let netlist = result.synthesis.netlist();
            let mut out = String::new();
            for p in a4a_netlist::path::report(netlist).into_iter().take(10) {
                out.push_str(&format!(
                    "{:>10}  {}\n",
                    format!("{}", p.delay),
                    p.render(netlist)
                ));
            }
            Ok(out)
        }
        "dot" => {
            let stg = load(positional.first().copied())?;
            if flags.contains(&"--sg") {
                let sg = stg
                    .state_graph(1_000_000)
                    .map_err(|e| format!("state graph: {e}"))?;
                Ok(sg.to_dot(&stg))
            } else {
                Ok(stg.to_dot())
            }
        }
        "modules" => {
            let dir = positional.first().copied().unwrap_or("specs");
            std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
            let mut out = String::new();
            let mut specs = a4a_ctrl::stgs::all_module_stgs();
            specs.extend(a4a_a2a::spec::all_specs());
            for (name, stg) in specs {
                let path = format!("{dir}/{name}.g");
                std::fs::write(&path, stg.to_g()).map_err(|e| format!("{path}: {e}"))?;
                out.push_str(&format!("wrote {path}\n"));
            }
            Ok(out)
        }
        "--help" | "-h" | "help" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn load(path: Option<&str>) -> Result<Stg, String> {
    let path = path.ok_or_else(|| format!("missing <spec.g> argument\n{}", usage()))?;
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    Stg::parse_g(&text).map_err(|e| format!("{path}: {e}"))
}

fn usage() -> String {
    "usage: a4a <verify|synth|verilog|timing|dot|modules> <spec.g|-> [--gc] [--map] [--sg]\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake_file() -> tempfile::TempFile {
        tempfile::TempFile::with_contents(
            "\
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
",
        )
    }

    /// Minimal scoped temp file (no external crate).
    mod tempfile {
        pub struct TempFile {
            pub path: std::path::PathBuf,
        }
        impl TempFile {
            pub fn with_contents(text: &str) -> TempFile {
                let path = std::env::temp_dir().join(format!(
                    "a4a_cli_test_{}_{}.g",
                    std::process::id(),
                    text.len()
                ));
                std::fs::write(&path, text).expect("write temp spec");
                TempFile { path }
            }
            pub fn path_str(&self) -> String {
                self.path.display().to_string()
            }
        }
        impl Drop for TempFile {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.path);
            }
        }
    }

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn verify_reports_clean() {
        let f = handshake_file();
        let out = run(&args(&["verify", &f.path_str()])).unwrap();
        assert!(out.contains("verdict: clean"), "{out}");
        assert!(out.contains("states: 4"));
    }

    #[test]
    fn synth_prints_equations() {
        let f = handshake_file();
        let out = run(&args(&["synth", &f.path_str()])).unwrap();
        assert!(out.contains("ack = req"), "{out}");
        assert!(out.contains("0 violations"));
    }

    #[test]
    fn verilog_emits_module_and_mapping_flag_works() {
        let f = handshake_file();
        let plain = run(&args(&["verilog", &f.path_str()])).unwrap();
        assert!(plain.contains("module hs"));
        let mapped = run(&args(&["verilog", &f.path_str(), "--map", "--gc"])).unwrap();
        assert!(mapped.contains("module hs_mapped"));
    }

    #[test]
    fn timing_reports_paths() {
        let f = handshake_file();
        let out = run(&args(&["timing", &f.path_str()])).unwrap();
        assert!(out.contains("->") || out.contains("ack"), "{out}");
    }

    #[test]
    fn dot_modes() {
        let f = handshake_file();
        let stg_dot = run(&args(&["dot", &f.path_str()])).unwrap();
        assert!(stg_dot.starts_with("digraph"));
        let sg_dot = run(&args(&["dot", &f.path_str(), "--sg"])).unwrap();
        assert!(sg_dot.contains("_sg"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&args(&["verify"])).is_err());
        assert!(run(&args(&["bogus"])).is_err());
        assert!(run(&args(&["verify", "/nonexistent.g"])).is_err());
        assert!(run(&[]).is_err());
        let err = run(&args(&["verify", "x.g", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("usage:"));
    }
}
