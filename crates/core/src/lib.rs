//! The A4A flow (Figure 3) and the mixed-signal testbench of the
//! multiphase buck case study.
//!
//! This crate is the front door of the reproduction:
//!
//! * [`A4aFlow`] — *specification → sanity check → synthesis → SI
//!   verification → netlist/Verilog*, the automated pipeline the paper
//!   implements in Workcraft on top of Petrify/Punf/MPSat;
//! * [`Testbench`] — the Cadence-AMS stand-in: couples the analog buck
//!   ([`a4a_analog::Buck`]), the comparator bank, the gate drivers, and
//!   any [`a4a_ctrl::BuckController`] into one event-accurate
//!   co-simulation producing [`a4a_analog::Waveform`] records;
//! * [`scenario`] — the workloads of the evaluation section (startup /
//!   normal load / high load / normal load of Figure 6, and the sweep
//!   grids of Figure 7).
//!
//! # Examples
//!
//! Run the A4A flow end to end on an A2A element specification:
//!
//! ```
//! use a4a::A4aFlow;
//!
//! let stg = a4a_a2a::spec::wait_stg();
//! let result = A4aFlow::new(stg).run()?;
//! assert!(result.sanity.is_clean());
//! assert!(result.si.is_clean());
//! assert!(result.verilog.contains("module wait"));
//! # Ok::<(), a4a::FlowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cosim;
mod flow;
pub mod scenario;

pub use cosim::{Testbench, TestbenchBuilder};
pub use flow::{A4aFlow, FlowError, FlowResult};

pub use a4a_a2a as a2a;
pub use a4a_analog as analog;
pub use a4a_boolmin as boolmin;
pub use a4a_ctrl as ctrl;
pub use a4a_netlist as netlist;
pub use a4a_petri as petri;
pub use a4a_sim as sim;
pub use a4a_stg as stg;
pub use a4a_synth as synth;
