//! Property-based tests for the simulation substrate.

use a4a_sim::{Logic, Scheduler, Time};
use proptest::prelude::*;

proptest! {
    /// Events pop in non-decreasing time order regardless of insertion
    /// order, with FIFO tie-breaking.
    #[test]
    fn scheduler_orders_any_sequence(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sched = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            sched.schedule(Time::from_fs(t), i);
        }
        let mut last_time = Time::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut count = 0;
        while let Some((t, idx)) = sched.pop() {
            prop_assert!(t >= last_time, "time went backwards");
            if t != last_time {
                seen_at_time.clear();
            }
            // FIFO among equal times: indices increase.
            if let Some(&prev) = seen_at_time.last() {
                if times[prev] == times[idx] {
                    prop_assert!(idx > prev, "FIFO violated");
                }
            }
            seen_at_time.push(idx);
            last_time = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn scheduler_cancellation(
        times in proptest::collection::vec(0u64..1000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sched = Scheduler::new();
        let keys: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| sched.schedule(Time::from_fs(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let cancel = cancel_mask.get(i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(sched.cancel(*key));
            } else {
                expected.push(i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, idx)) = sched.pop() {
            delivered.push(idx);
        }
        delivered.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(delivered, expected);
    }

    /// Time arithmetic round-trips for any femtosecond pair.
    #[test]
    fn time_add_sub_roundtrip(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let ta = Time::from_fs(a);
        let tb = Time::from_fs(b);
        prop_assert_eq!(ta + tb - tb, ta);
        prop_assert_eq!((ta + tb).saturating_sub(ta), tb);
        prop_assert!(ta.saturating_sub(ta + tb) == Time::ZERO);
    }

    /// Three-valued logic refines Boolean logic: on known values the
    /// operators agree with bool.
    #[test]
    fn logic_refines_bool(a in any::<bool>(), b in any::<bool>()) {
        let la = Logic::from(a);
        let lb = Logic::from(b);
        prop_assert_eq!(la.and(lb), Logic::from(a && b));
        prop_assert_eq!(la.or(lb), Logic::from(a || b));
        prop_assert_eq!(!la, Logic::from(!a));
    }

    /// X is absorbing except against controlling values.
    #[test]
    fn logic_x_pessimism(a in any::<bool>()) {
        let la = Logic::from(a);
        prop_assert_eq!(Logic::X.and(la), if a { Logic::X } else { Logic::Zero });
        prop_assert_eq!(Logic::X.or(la), if a { Logic::One } else { Logic::X });
    }
}
