//! Property-based tests for the simulation substrate.

use a4a_rt::prop::{self, Gen, PropResult};
use a4a_rt::{prop_assert, prop_assert_eq};
use a4a_sim::{EventKey, Logic, Scheduler, SimError, Time};

/// Events pop in non-decreasing time order regardless of insertion
/// order, with FIFO tie-breaking.
#[test]
fn scheduler_orders_any_sequence() {
    prop::check("scheduler_orders_any_sequence", |g: &mut Gen| -> PropResult {
        let times = g.vec(1..200, |g| g.u64(0..1_000_000));
        let mut sched = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            sched.schedule(Time::from_fs(t), i);
        }
        let mut last_time = Time::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut count = 0;
        while let Some((t, idx)) = sched.pop() {
            prop_assert!(t >= last_time, "time went backwards");
            if t != last_time {
                seen_at_time.clear();
            }
            // FIFO among equal times: indices increase.
            if let Some(&prev) = seen_at_time.last() {
                if times[prev] == times[idx] {
                    prop_assert!(idx > prev, "FIFO violated");
                }
            }
            seen_at_time.push(idx);
            last_time = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
        Ok(())
    });
}

/// Cancelling an arbitrary subset removes exactly those events.
#[test]
fn scheduler_cancellation() {
    prop::check("scheduler_cancellation", |g: &mut Gen| -> PropResult {
        let times = g.vec(1..100, |g| g.u64(0..1000));
        let cancel_mask = g.vec(1..100, |g| g.bool());
        let mut sched = Scheduler::new();
        let keys: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| sched.schedule(Time::from_fs(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let cancel = cancel_mask.get(i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(sched.cancel(*key));
            } else {
                expected.push(i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, idx)) = sched.pop() {
            delivered.push(idx);
        }
        delivered.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(delivered, expected);
        Ok(())
    });
}

/// The scheduler contract under arbitrary interleavings of schedule,
/// cancel (including deliberately stale keys), and pop, checked against
/// a naive reference model: `len()` is exact, delivery respects
/// (time, insertion) order, cancel returns `true` exactly when the
/// reference still holds the event, and a delivered key can never be
/// cancelled.
#[test]
fn scheduler_model_interleaved_churn() {
    prop::check("scheduler_model_interleaved_churn", |g: &mut Gen| -> PropResult {
        let ops = g.usize(1..120);
        let mut sched: Scheduler<u64> = Scheduler::new();
        // Reference model: (time, seq) of still-pending events, plus the
        // full key history with each key's reference state.
        let mut pending: Vec<(Time, u64)> = Vec::new();
        let mut keys: Vec<(EventKey, u64, bool)> = Vec::new(); // (key, seq, alive)
        let mut next_seq = 0u64;
        let mut last_popped = Time::ZERO;
        for _ in 0..ops {
            match g.choice(4) {
                0 | 1 => {
                    // Schedule at or after `now` (past events are a
                    // separate property below).
                    let t = sched.now().saturating_add(Time::from_fs(g.u64(0..10_000)));
                    let key = sched.schedule(t, next_seq);
                    pending.push((t, next_seq));
                    keys.push((key, next_seq, true));
                    next_seq += 1;
                }
                2 => {
                    if keys.is_empty() {
                        continue;
                    }
                    let pick = g.usize(0..keys.len());
                    let (key, seq, _) = keys[pick];
                    let alive = pending.iter().any(|&(_, s)| s == seq);
                    prop_assert_eq!(
                        sched.cancel(key),
                        alive,
                        "cancel must mirror the reference model"
                    );
                    pending.retain(|&(_, s)| s != seq);
                    keys[pick].2 = false;
                }
                _ => {
                    // The reference's earliest event: min time, then
                    // min seq (insertion order).
                    let expect = pending
                        .iter()
                        .copied()
                        .min_by_key(|&(t, s)| (t, s));
                    prop_assert_eq!(sched.peek_time(), expect.map(|(t, _)| t));
                    let got = sched.pop();
                    prop_assert_eq!(got, expect.map(|(t, s)| (t, s)));
                    if let Some((t, s)) = expect {
                        prop_assert!(t >= last_popped, "time went backwards");
                        last_popped = t;
                        pending.retain(|&(_, q)| q != s);
                    }
                }
            }
            prop_assert_eq!(sched.len(), pending.len(), "len out of sync");
            prop_assert_eq!(sched.is_empty(), pending.is_empty());
        }
        Ok(())
    });
}

/// `peek_time` (mutating, lazy-pruning) and `next_time` (immutable,
/// scanning) agree after any cancellation pattern, and both agree with
/// what `pop` then delivers.
#[test]
fn scheduler_peek_next_pop_agree() {
    prop::check("scheduler_peek_next_pop_agree", |g: &mut Gen| -> PropResult {
        let times = g.vec(1..60, |g| g.u64(0..500));
        let cancel_mask = g.vec(1..60, |g| g.bool());
        let mut sched = Scheduler::new();
        let keys: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| sched.schedule(Time::from_fs(t), i))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            if cancel_mask.get(i).copied().unwrap_or(false) {
                sched.cancel(*key);
            }
        }
        loop {
            let next = sched.next_time();
            let peek = sched.peek_time();
            prop_assert_eq!(next, peek, "next_time and peek_time disagree");
            match sched.pop() {
                Some((t, _)) => prop_assert_eq!(Some(t), next),
                None => {
                    prop_assert_eq!(next, None);
                    break;
                }
            }
        }
        prop_assert_eq!(sched.len(), 0);
        Ok(())
    });
}

/// Once a key's event has been delivered, every cancellation attempt —
/// first or repeated — is rejected, and `len()` stays exact (the
/// pre-fix scheduler underflowed here).
#[test]
fn scheduler_cancel_after_pop_always_rejected() {
    prop::check(
        "scheduler_cancel_after_pop_always_rejected",
        |g: &mut Gen| -> PropResult {
            let times = g.vec(1..40, |g| g.u64(0..100));
            let mut sched = Scheduler::new();
            let keys: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| sched.schedule(Time::from_fs(t), i))
                .collect();
            let deliver = g.usize(0..times.len() + 1);
            let mut delivered: Vec<usize> = Vec::new();
            for _ in 0..deliver {
                if let Some((_, i)) = sched.pop() {
                    delivered.push(i);
                }
            }
            let before = sched.len();
            prop_assert_eq!(before, times.len() - delivered.len());
            for &i in &delivered {
                prop_assert!(!sched.cancel(keys[i]), "delivered key cancelled");
                prop_assert_eq!(sched.try_cancel(keys[i]), Err(SimError::StaleKey));
                // Double cancel of a live key flips exactly once.
            }
            prop_assert_eq!(sched.len(), before, "stale cancels changed len");
            // Remaining events still drain in order.
            let mut last = sched.now();
            while let Some((t, _)) = sched.pop() {
                prop_assert!(t >= last);
                last = t;
            }
            Ok(())
        },
    );
}

/// Time arithmetic round-trips for any femtosecond pair.
#[test]
fn time_add_sub_roundtrip() {
    prop::check("time_add_sub_roundtrip", |g: &mut Gen| -> PropResult {
        let a = g.u64(0..u64::MAX / 4);
        let b = g.u64(0..u64::MAX / 4);
        let ta = Time::from_fs(a);
        let tb = Time::from_fs(b);
        prop_assert_eq!(ta + tb - tb, ta);
        prop_assert_eq!((ta + tb).saturating_sub(ta), tb);
        prop_assert!(ta.saturating_sub(ta + tb) == Time::ZERO);
        Ok(())
    });
}

/// Three-valued logic refines Boolean logic: on known values the
/// operators agree with bool.
#[test]
fn logic_refines_bool() {
    prop::check("logic_refines_bool", |g: &mut Gen| -> PropResult {
        let a = g.bool();
        let b = g.bool();
        let la = Logic::from(a);
        let lb = Logic::from(b);
        prop_assert_eq!(la.and(lb), Logic::from(a && b));
        prop_assert_eq!(la.or(lb), Logic::from(a || b));
        prop_assert_eq!(!la, Logic::from(!a));
        Ok(())
    });
}

/// X is absorbing except against controlling values.
#[test]
fn logic_x_pessimism() {
    prop::check("logic_x_pessimism", |g: &mut Gen| -> PropResult {
        let a = g.bool();
        let la = Logic::from(a);
        prop_assert_eq!(Logic::X.and(la), if a { Logic::X } else { Logic::Zero });
        prop_assert_eq!(Logic::X.or(la), if a { Logic::One } else { Logic::X });
        Ok(())
    });
}
