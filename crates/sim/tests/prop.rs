//! Property-based tests for the simulation substrate.

use a4a_rt::prop::{self, Gen, PropResult};
use a4a_rt::{prop_assert, prop_assert_eq};
use a4a_sim::{Logic, Scheduler, Time};

/// Events pop in non-decreasing time order regardless of insertion
/// order, with FIFO tie-breaking.
#[test]
fn scheduler_orders_any_sequence() {
    prop::check("scheduler_orders_any_sequence", |g: &mut Gen| -> PropResult {
        let times = g.vec(1..200, |g| g.u64(0..1_000_000));
        let mut sched = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            sched.schedule(Time::from_fs(t), i);
        }
        let mut last_time = Time::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut count = 0;
        while let Some((t, idx)) = sched.pop() {
            prop_assert!(t >= last_time, "time went backwards");
            if t != last_time {
                seen_at_time.clear();
            }
            // FIFO among equal times: indices increase.
            if let Some(&prev) = seen_at_time.last() {
                if times[prev] == times[idx] {
                    prop_assert!(idx > prev, "FIFO violated");
                }
            }
            seen_at_time.push(idx);
            last_time = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
        Ok(())
    });
}

/// Cancelling an arbitrary subset removes exactly those events.
#[test]
fn scheduler_cancellation() {
    prop::check("scheduler_cancellation", |g: &mut Gen| -> PropResult {
        let times = g.vec(1..100, |g| g.u64(0..1000));
        let cancel_mask = g.vec(1..100, |g| g.bool());
        let mut sched = Scheduler::new();
        let keys: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| sched.schedule(Time::from_fs(t), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            let cancel = cancel_mask.get(i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(sched.cancel(*key));
            } else {
                expected.push(i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, idx)) = sched.pop() {
            delivered.push(idx);
        }
        delivered.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(delivered, expected);
        Ok(())
    });
}

/// Time arithmetic round-trips for any femtosecond pair.
#[test]
fn time_add_sub_roundtrip() {
    prop::check("time_add_sub_roundtrip", |g: &mut Gen| -> PropResult {
        let a = g.u64(0..u64::MAX / 4);
        let b = g.u64(0..u64::MAX / 4);
        let ta = Time::from_fs(a);
        let tb = Time::from_fs(b);
        prop_assert_eq!(ta + tb - tb, ta);
        prop_assert_eq!((ta + tb).saturating_sub(ta), tb);
        prop_assert!(ta.saturating_sub(ta + tb) == Time::ZERO);
        Ok(())
    });
}

/// Three-valued logic refines Boolean logic: on known values the
/// operators agree with bool.
#[test]
fn logic_refines_bool() {
    prop::check("logic_refines_bool", |g: &mut Gen| -> PropResult {
        let a = g.bool();
        let b = g.bool();
        let la = Logic::from(a);
        let lb = Logic::from(b);
        prop_assert_eq!(la.and(lb), Logic::from(a && b));
        prop_assert_eq!(la.or(lb), Logic::from(a || b));
        prop_assert_eq!(!la, Logic::from(!a));
        Ok(())
    });
}

/// X is absorbing except against controlling values.
#[test]
fn logic_x_pessimism() {
    prop::check("logic_x_pessimism", |g: &mut Gen| -> PropResult {
        let a = g.bool();
        let la = Logic::from(a);
        prop_assert_eq!(Logic::X.and(la), if a { Logic::X } else { Logic::Zero });
        prop_assert_eq!(Logic::X.or(la), if a { Logic::One } else { Logic::X });
        Ok(())
    });
}
