use std::fmt;
use std::ops::Not;

/// A three-valued digital logic level.
///
/// `X` represents an unknown or metastable level: gate outputs before
/// initialisation, and the output of a synchroniser or arbiter while it is
/// still resolving. Boolean operators follow the usual pessimistic
/// three-valued algebra (`X & Zero == Zero`, `X & One == X`, ...), so `X`
/// propagates exactly as far as it can actually influence the circuit.
///
/// # Examples
///
/// ```
/// use a4a_sim::Logic;
///
/// assert_eq!(Logic::X.and(Logic::Zero), Logic::Zero);
/// assert_eq!(Logic::X.or(Logic::One), Logic::One);
/// assert_eq!(!Logic::X, Logic::X);
/// assert_eq!(Logic::from(true), Logic::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown or metastable.
    #[default]
    X,
}

impl Logic {
    /// Returns `true` when the level is definitely [`Logic::One`].
    pub fn is_one(self) -> bool {
        self == Logic::One
    }

    /// Returns `true` when the level is definitely [`Logic::Zero`].
    pub fn is_zero(self) -> bool {
        self == Logic::Zero
    }

    /// Returns `true` when the level is unknown.
    pub fn is_x(self) -> bool {
        self == Logic::X
    }

    /// Three-valued AND.
    pub fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Three-valued OR.
    pub fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Converts to `bool`, treating `X` pessimistically as the given
    /// default.
    pub fn to_bool(self, default_for_x: bool) -> bool {
        match self {
            Logic::Zero => false,
            Logic::One => true,
            Logic::X => default_for_x,
        }
    }

    /// Converts to `Option<bool>`, `None` for `X`.
    pub fn known(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }
}

impl Not for Logic {
    type Output = Logic;

    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }
}

impl From<bool> for Logic {
    fn from(value: bool) -> Logic {
        if value {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

    #[test]
    fn and_truth_table() {
        assert_eq!(Logic::One.and(Logic::One), Logic::One);
        assert_eq!(Logic::One.and(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::X.and(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::X.and(Logic::One), Logic::X);
        assert_eq!(Logic::X.and(Logic::X), Logic::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Logic::Zero.or(Logic::Zero), Logic::Zero);
        assert_eq!(Logic::Zero.or(Logic::One), Logic::One);
        assert_eq!(Logic::X.or(Logic::One), Logic::One);
        assert_eq!(Logic::X.or(Logic::Zero), Logic::X);
    }

    #[test]
    fn de_morgan_holds_in_three_values() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a.and(b)), (!a).or(!b));
                assert_eq!(!(a.or(b)), (!a).and(!b));
            }
        }
    }

    #[test]
    fn double_negation() {
        for a in ALL {
            assert_eq!(!!a, a);
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Logic::from(true), Logic::One);
        assert_eq!(Logic::from(false), Logic::Zero);
        assert_eq!(Logic::One.known(), Some(true));
        assert_eq!(Logic::X.known(), None);
        assert!(Logic::X.to_bool(true));
        assert!(!Logic::X.to_bool(false));
    }

    #[test]
    fn display() {
        assert_eq!(Logic::Zero.to_string(), "0");
        assert_eq!(Logic::One.to_string(), "1");
        assert_eq!(Logic::X.to_string(), "x");
    }
}
