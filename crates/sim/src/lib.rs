//! Simulation substrate shared by every simulator in the A4A buck
//! reproduction.
//!
//! Three building blocks live here:
//!
//! * [`Time`] — an integer femtosecond timestamp. Event-driven simulation
//!   needs exact time comparison (two events scheduled "at the same time"
//!   must compare equal), which floating-point seconds cannot guarantee.
//!   One femtosecond of resolution spans eighteen thousand seconds in a
//!   `u64`, far beyond the microsecond scale of the buck experiments.
//! * [`Logic`] — a three-valued digital level (`Zero`, `One`, `X`) used by
//!   the gate-level simulator before reset and to model metastability.
//! * [`Scheduler`] — a deterministic discrete-event queue. Events that carry
//!   the same timestamp are delivered in insertion order, so a simulation
//!   run is a pure function of its inputs and seeds.
//! * [`SimError`] — the typed error every fallible `try_*` entry point of
//!   the simulation stack returns. The panicking wrappers format the same
//!   error into their panic message; recoverable misuse (past events,
//!   stale cancellation keys, NaN times, out-of-range values) never needs
//!   to unwind.
//!
//! # Examples
//!
//! ```
//! use a4a_sim::{Scheduler, Time};
//!
//! let mut sched: Scheduler<&'static str> = Scheduler::new();
//! sched.schedule(Time::from_ns(5.0), "late");
//! sched.schedule(Time::from_ns(1.0), "early");
//! let (t, ev) = sched.pop().expect("two events queued");
//! assert_eq!((t, ev), (Time::from_ns(1.0), "early"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod logic;
mod sched;
mod time;

pub use error::SimError;
pub use logic::Logic;
pub use sched::{EventKey, Scheduler};
pub use time::Time;
