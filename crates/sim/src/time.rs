use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use crate::SimError;

/// A simulation timestamp with femtosecond resolution.
///
/// `Time` wraps an unsigned femtosecond count. Integer timestamps make
/// event ordering exact: `t + dt - dt == t` always holds, and two events
/// scheduled for "the same instant" genuinely compare equal, which a
/// floating-point representation cannot guarantee.
///
/// Construction helpers exist for the scales that appear in the buck
/// experiments (`ps`, `ns`, `us`); conversion back to floating-point seconds
/// is provided for the analog solver.
///
/// # Examples
///
/// ```
/// use a4a_sim::Time;
///
/// let t = Time::from_ns(2.5) + Time::from_ps(500.0);
/// assert_eq!(t, Time::from_ns(3.0));
/// assert!((t.as_secs() - 3.0e-9).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero timestamp (simulation start).
    pub const ZERO: Time = Time(0);
    /// The largest representable timestamp; useful as an "never" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a timestamp from an integer number of femtoseconds.
    pub const fn from_fs(fs: u64) -> Self {
        Time(fs)
    }

    /// Creates a timestamp from picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is NaN, negative, infinite, or out of range; see
    /// [`Time::try_from_ps`] for the fallible variant.
    pub fn from_ps(ps: f64) -> Self {
        Self::from_scaled(ps, 1e3, "ps")
    }

    /// Creates a timestamp from nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is NaN, negative, infinite, or out of range; see
    /// [`Time::try_from_ns`] for the fallible variant.
    pub fn from_ns(ns: f64) -> Self {
        Self::from_scaled(ns, 1e6, "ns")
    }

    /// Creates a timestamp from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is NaN, negative, infinite, or out of range; see
    /// [`Time::try_from_us`] for the fallible variant.
    pub fn from_us(us: f64) -> Self {
        Self::from_scaled(us, 1e9, "us")
    }

    /// Creates a timestamp from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN, negative, infinite, or out of range; see
    /// [`Time::try_from_secs`] for the fallible variant.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_scaled(secs, 1e15, "s")
    }

    /// Fallible [`Time::from_ps`]: rejects NaN, negative, infinite, and
    /// out-of-range values with [`SimError::InvalidTime`] instead of
    /// panicking.
    pub fn try_from_ps(ps: f64) -> Result<Self, SimError> {
        Self::try_from_scaled(ps, 1e3, "ps")
    }

    /// Fallible [`Time::from_ns`]: rejects NaN, negative, infinite, and
    /// out-of-range values with [`SimError::InvalidTime`] instead of
    /// panicking.
    pub fn try_from_ns(ns: f64) -> Result<Self, SimError> {
        Self::try_from_scaled(ns, 1e6, "ns")
    }

    /// Fallible [`Time::from_us`]: rejects NaN, negative, infinite, and
    /// out-of-range values with [`SimError::InvalidTime`] instead of
    /// panicking.
    pub fn try_from_us(us: f64) -> Result<Self, SimError> {
        Self::try_from_scaled(us, 1e9, "us")
    }

    /// Fallible [`Time::from_secs`]: rejects NaN, negative, infinite, and
    /// out-of-range values with [`SimError::InvalidTime`] instead of
    /// panicking.
    pub fn try_from_secs(secs: f64) -> Result<Self, SimError> {
        Self::try_from_scaled(secs, 1e15, "s")
    }

    fn from_scaled(value: f64, scale: f64, unit: &'static str) -> Self {
        match Self::try_from_scaled(value, scale, unit) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    fn try_from_scaled(value: f64, scale: f64, unit: &'static str) -> Result<Self, SimError> {
        if !value.is_finite() || value < 0.0 {
            return Err(SimError::InvalidTime { value, unit });
        }
        let fs = (value * scale).round();
        // `as u64` would silently saturate; 2^64 is the first f64 that no
        // longer fits (u64::MAX itself is not exactly representable).
        if fs >= u64::MAX as f64 {
            return Err(SimError::InvalidTime { value, unit });
        }
        Ok(Time(fs as u64))
    }

    /// Returns the raw femtosecond count.
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Returns the timestamp in seconds as a floating-point number.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-15
    }

    /// Returns the timestamp in nanoseconds as a floating-point number.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Returns the timestamp in microseconds as a floating-point number.
    pub fn as_us(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating subtraction: returns `self - other`, or [`Time::ZERO`]
    /// when `other` is later than `self`.
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Checked addition that saturates at [`Time::MAX`] instead of
    /// overflowing, so `Time::MAX + dt` stays a valid "never" sentinel.
    pub fn saturating_add(self, other: Time) -> Time {
        Time(self.0.saturating_add(other.0))
    }

    /// Checked addition: `None` when the sum leaves the `u64`
    /// femtosecond range (the panicking `+` operator's fallible twin).
    pub fn checked_add(self, other: Time) -> Option<Time> {
        self.0.checked_add(other.0).map(Time)
    }

    /// Checked subtraction: `None` when `other` is later than `self`.
    pub fn checked_sub(self, other: Time) -> Option<Time> {
        self.0.checked_sub(other.0).map(Time)
    }

    /// Checked multiplication by a scalar: `None` on overflow.
    pub fn checked_mul(self, rhs: u64) -> Option<Time> {
        self.0.checked_mul(rhs).map(Time)
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("time overflow"))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;

    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;

    fn mul(self, rhs: u64) -> Time {
        Time(self.0.checked_mul(rhs).expect("time overflow"))
    }
}

impl Div<u64> for Time {
    type Output = Time;

    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fs = self.0;
        if fs == u64::MAX {
            write!(f, "never")
        } else if fs >= 1_000_000_000 {
            write!(f, "{:.3}us", self.as_us())
        } else if fs >= 1_000_000 {
            write!(f, "{:.3}ns", self.as_ns())
        } else if fs >= 1_000 {
            write!(f, "{:.3}ps", fs as f64 / 1e3)
        } else {
            write!(f, "{}fs", fs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Time::from_ns(1.0), Time::from_fs(1_000_000));
        assert_eq!(Time::from_ps(1.0), Time::from_fs(1_000));
        assert_eq!(Time::from_us(1.0), Time::from_fs(1_000_000_000));
        assert_eq!(Time::from_secs(1e-15), Time::from_fs(1));
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = Time::from_ns(3.25);
        let dt = Time::from_ps(17.0);
        assert_eq!(t + dt - dt, t);
        assert_eq!(t * 2 / 2, t);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Time::from_ns(1.0).saturating_sub(Time::from_ns(2.0)), Time::ZERO);
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        assert_eq!(Time::MAX.saturating_add(Time::from_ns(1.0)), Time::MAX);
    }

    #[test]
    fn conversions_to_float() {
        let t = Time::from_ns(7.5);
        assert!((t.as_ns() - 7.5).abs() < 1e-12);
        assert!((t.as_secs() - 7.5e-9).abs() < 1e-21);
        assert!((t.as_us() - 0.0075).abs() < 1e-15);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Time::from_fs(12).to_string(), "12fs");
        assert_eq!(Time::from_ns(2.0).to_string(), "2.000ns");
        assert_eq!(Time::from_us(3.0).to_string(), "3.000us");
        assert_eq!(Time::MAX.to_string(), "never");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Time::from_ns(5.0), Time::ZERO, Time::from_ps(1.0)];
        v.sort();
        assert_eq!(v, vec![Time::ZERO, Time::from_ps(1.0), Time::from_ns(5.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let _ = Time::from_ns(-1.0);
    }

    #[test]
    fn try_constructors_reject_nan_negative_and_huge() {
        for bad in [f64::NAN, -1.0, f64::INFINITY, f64::NEG_INFINITY, 1e30] {
            assert!(
                matches!(
                    Time::try_from_ns(bad),
                    Err(SimError::InvalidTime { unit: "ns", .. })
                ),
                "{bad} accepted"
            );
        }
        assert!(matches!(
            Time::try_from_secs(-0.5),
            Err(SimError::InvalidTime { unit: "s", .. })
        ));
        assert_eq!(Time::try_from_ps(1.0), Ok(Time::from_fs(1_000)));
    }

    #[test]
    fn try_and_panicking_constructors_agree_on_valid_input() {
        for v in [0.0, 1.5, 2.25e3, 17.0] {
            assert_eq!(Time::try_from_ns(v).unwrap(), Time::from_ns(v));
            assert_eq!(Time::try_from_us(v).unwrap(), Time::from_us(v));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_time_panics() {
        let _ = Time::from_ns(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn overflowing_time_panics() {
        // 2^64 fs is out of range; before the range check this silently
        // saturated to u64::MAX via `as u64`.
        let _ = Time::from_secs(1e5);
    }

    #[test]
    fn checked_ops_mirror_operators() {
        let a = Time::from_ns(2.0);
        let b = Time::from_ns(3.0);
        assert_eq!(a.checked_add(b), Some(a + b));
        assert_eq!(b.checked_sub(a), Some(b - a));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(Time::MAX.checked_add(Time::from_fs(1)), None);
        assert_eq!(a.checked_mul(3), Some(a * 3));
        assert_eq!(Time::MAX.checked_mul(2), None);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_ns(1.0), Time::from_ns(2.0)].into_iter().sum();
        assert_eq!(total, Time::from_ns(3.0));
    }
}
