use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A simulation timestamp with femtosecond resolution.
///
/// `Time` wraps an unsigned femtosecond count. Integer timestamps make
/// event ordering exact: `t + dt - dt == t` always holds, and two events
/// scheduled for "the same instant" genuinely compare equal, which a
/// floating-point representation cannot guarantee.
///
/// Construction helpers exist for the scales that appear in the buck
/// experiments (`ps`, `ns`, `us`); conversion back to floating-point seconds
/// is provided for the analog solver.
///
/// # Examples
///
/// ```
/// use a4a_sim::Time;
///
/// let t = Time::from_ns(2.5) + Time::from_ps(500.0);
/// assert_eq!(t, Time::from_ns(3.0));
/// assert!((t.as_secs() - 3.0e-9).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero timestamp (simulation start).
    pub const ZERO: Time = Time(0);
    /// The largest representable timestamp; useful as an "never" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a timestamp from an integer number of femtoseconds.
    pub const fn from_fs(fs: u64) -> Self {
        Time(fs)
    }

    /// Creates a timestamp from picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is negative or not finite.
    pub fn from_ps(ps: f64) -> Self {
        Self::from_scaled(ps, 1e3)
    }

    /// Creates a timestamp from nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Self {
        Self::from_scaled(ns, 1e6)
    }

    /// Creates a timestamp from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us(us: f64) -> Self {
        Self::from_scaled(us, 1e9)
    }

    /// Creates a timestamp from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_scaled(secs, 1e15)
    }

    fn from_scaled(value: f64, scale: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "time must be finite and non-negative, got {value}"
        );
        Time((value * scale).round() as u64)
    }

    /// Returns the raw femtosecond count.
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Returns the timestamp in seconds as a floating-point number.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-15
    }

    /// Returns the timestamp in nanoseconds as a floating-point number.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Returns the timestamp in microseconds as a floating-point number.
    pub fn as_us(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating subtraction: returns `self - other`, or [`Time::ZERO`]
    /// when `other` is later than `self`.
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// Checked addition that saturates at [`Time::MAX`] instead of
    /// overflowing, so `Time::MAX + dt` stays a valid "never" sentinel.
    pub fn saturating_add(self, other: Time) -> Time {
        Time(self.0.saturating_add(other.0))
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("time overflow"))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;

    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;

    fn mul(self, rhs: u64) -> Time {
        Time(self.0.checked_mul(rhs).expect("time overflow"))
    }
}

impl Div<u64> for Time {
    type Output = Time;

    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fs = self.0;
        if fs == u64::MAX {
            write!(f, "never")
        } else if fs >= 1_000_000_000 {
            write!(f, "{:.3}us", self.as_us())
        } else if fs >= 1_000_000 {
            write!(f, "{:.3}ns", self.as_ns())
        } else if fs >= 1_000 {
            write!(f, "{:.3}ps", fs as f64 / 1e3)
        } else {
            write!(f, "{}fs", fs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Time::from_ns(1.0), Time::from_fs(1_000_000));
        assert_eq!(Time::from_ps(1.0), Time::from_fs(1_000));
        assert_eq!(Time::from_us(1.0), Time::from_fs(1_000_000_000));
        assert_eq!(Time::from_secs(1e-15), Time::from_fs(1));
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = Time::from_ns(3.25);
        let dt = Time::from_ps(17.0);
        assert_eq!(t + dt - dt, t);
        assert_eq!(t * 2 / 2, t);
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Time::from_ns(1.0).saturating_sub(Time::from_ns(2.0)), Time::ZERO);
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        assert_eq!(Time::MAX.saturating_add(Time::from_ns(1.0)), Time::MAX);
    }

    #[test]
    fn conversions_to_float() {
        let t = Time::from_ns(7.5);
        assert!((t.as_ns() - 7.5).abs() < 1e-12);
        assert!((t.as_secs() - 7.5e-9).abs() < 1e-21);
        assert!((t.as_us() - 0.0075).abs() < 1e-15);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Time::from_fs(12).to_string(), "12fs");
        assert_eq!(Time::from_ns(2.0).to_string(), "2.000ns");
        assert_eq!(Time::from_us(3.0).to_string(), "3.000us");
        assert_eq!(Time::MAX.to_string(), "never");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Time::from_ns(5.0), Time::ZERO, Time::from_ps(1.0)];
        v.sort();
        assert_eq!(v, vec![Time::ZERO, Time::from_ps(1.0), Time::from_ns(5.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        let _ = Time::from_ns(-1.0);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_ns(1.0), Time::from_ns(2.0)].into_iter().sum();
        assert_eq!(total, Time::from_ns(3.0));
    }
}
