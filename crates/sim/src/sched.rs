use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::{SimError, Time};

/// Opaque handle to a scheduled event, used to cancel it.
///
/// Cancellation is how inertial delays are modelled: a pending output change
/// that is revoked before its delay elapses is a filtered glitch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey(u64);

/// A deterministic discrete-event queue.
///
/// Events are delivered in timestamp order; events with equal timestamps are
/// delivered in the order they were scheduled (FIFO). This makes every
/// simulation built on the scheduler reproducible run-to-run.
///
/// # Examples
///
/// ```
/// use a4a_sim::{Scheduler, Time};
///
/// let mut sched = Scheduler::new();
/// let key = sched.schedule(Time::from_ns(2.0), 'b');
/// sched.schedule(Time::from_ns(2.0), 'c');
/// sched.schedule(Time::from_ns(1.0), 'a');
/// sched.cancel(key);
/// let order: Vec<char> = std::iter::from_fn(|| sched.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Time,
    /// Sequence numbers scheduled but neither delivered nor cancelled.
    /// Membership here is what makes [`Scheduler::cancel`] reject stale
    /// keys in O(1), and `pending.len()` is the exact pending count —
    /// the heap may still hold cancelled entries awaiting lazy removal.
    pending: HashSet<u64>,
    /// Cancelled-but-not-yet-popped sequence numbers. Always a subset of
    /// the heap's entries, so it cannot grow unboundedly.
    cancelled: HashSet<u64>,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler positioned at [`Time::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
            pending: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// The timestamp of the most recently popped event (simulation "now").
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `event` for delivery at absolute time `time`.
    ///
    /// Returns a key that can later be passed to [`Scheduler::cancel`].
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current simulation time — an
    /// event in the past indicates a model bug.
    pub fn schedule(&mut self, time: Time, event: E) -> EventKey {
        match self.try_schedule(time, event) {
            Ok(key) => key,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Scheduler::schedule`]: an event in the past is
    /// reported as [`SimError::PastEvent`] and the queue is left
    /// untouched.
    pub fn try_schedule(&mut self, time: Time, event: E) -> Result<EventKey, SimError> {
        if time < self.now {
            return Err(SimError::PastEvent {
                time,
                now: self.now,
            });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Entry { time, seq, event });
        Ok(EventKey(seq))
    }

    /// Schedules `event` at `delay` after the current simulation time.
    /// The sum saturates at [`Time::MAX`], keeping the "never" sentinel
    /// valid; use [`Scheduler::try_schedule_after`] to detect overflow.
    pub fn schedule_after(&mut self, delay: Time, event: E) -> EventKey {
        let time = self.now.saturating_add(delay);
        self.schedule(time, event)
    }

    /// Fallible [`Scheduler::schedule_after`]: reports
    /// [`SimError::TimeOverflow`] when `now + delay` leaves the
    /// representable range instead of saturating.
    pub fn try_schedule_after(&mut self, delay: Time, event: E) -> Result<EventKey, SimError> {
        let time = self
            .now
            .checked_add(delay)
            .ok_or(SimError::TimeOverflow {
                op: "schedule_after",
            })?;
        self.try_schedule(time, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it was
    /// already delivered or already cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if self.pending.remove(&key.0) {
            self.cancelled.insert(key.0);
            true
        } else {
            false
        }
    }

    /// Fallible [`Scheduler::cancel`]: misuse of a key whose event was
    /// already delivered or cancelled is reported as
    /// [`SimError::StaleKey`].
    pub fn try_cancel(&mut self, key: EventKey) -> Result<(), SimError> {
        if self.cancel(key) {
            Ok(())
        } else {
            Err(SimError::StaleKey)
        }
    }

    /// Removes and returns the earliest pending event, advancing `now`.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.pending.remove(&entry.seq);
            self.now = entry.time;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// The timestamp of the earliest pending (non-cancelled) event,
    /// without mutating the queue. Linear scan — intended for the small
    /// queues of behavioural models; prefer [`Scheduler::peek_time`] in
    /// tight loops that can take `&mut self`.
    pub fn next_time(&self) -> Option<Time> {
        self.heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .map(|e| e.time)
            .min()
    }

    /// The timestamp of the earliest pending event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(Time::from_ns(3.0), 3);
        s.schedule(Time::from_ns(1.0), 1);
        s.schedule(Time::from_ns(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut s = Scheduler::new();
        let t = Time::from_ns(1.0);
        for i in 0..10 {
            s.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut s = Scheduler::new();
        let k = s.schedule(Time::from_ns(1.0), "dropped");
        s.schedule(Time::from_ns(2.0), "kept");
        assert!(s.cancel(k));
        assert!(!s.cancel(k), "double cancel reports false");
        assert_eq!(s.pop(), Some((Time::from_ns(2.0), "kept")));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn now_advances_with_pop() {
        let mut s = Scheduler::new();
        s.schedule(Time::from_ns(4.0), ());
        assert_eq!(s.now(), Time::ZERO);
        s.pop();
        assert_eq!(s.now(), Time::from_ns(4.0));
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut s = Scheduler::new();
        s.schedule(Time::from_ns(1.0), "first");
        s.pop();
        s.schedule_after(Time::from_ns(2.0), "second");
        assert_eq!(s.pop(), Some((Time::from_ns(3.0), "second")));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule(Time::from_ns(2.0), ());
        s.pop();
        s.schedule(Time::from_ns(1.0), ());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut s = Scheduler::new();
        let k = s.schedule(Time::from_ns(1.0), 1);
        s.schedule(Time::from_ns(2.0), 2);
        s.cancel(k);
        assert_eq!(s.peek_time(), Some(Time::from_ns(2.0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn next_time_is_immutable_and_skips_cancelled() {
        let mut s = Scheduler::new();
        let k = s.schedule(Time::from_ns(1.0), 1);
        s.schedule(Time::from_ns(2.0), 2);
        s.cancel(k);
        assert_eq!(s.next_time(), Some(Time::from_ns(2.0)));
        assert_eq!(s.len(), 1, "no mutation");
        s.pop();
        assert_eq!(s.next_time(), None);
    }

    #[test]
    fn cancel_after_pop_is_rejected_and_len_cannot_underflow() {
        // Regression: cancelling an already-delivered key used to insert
        // it into the cancelled set anyway, so `len()` — then computed as
        // `heap.len() - cancelled.len()` — underflowed and panicked.
        let mut s = Scheduler::new();
        let k = s.schedule(Time::from_ns(1.0), "delivered");
        assert_eq!(s.pop(), Some((Time::from_ns(1.0), "delivered")));
        assert!(!s.cancel(k), "delivered key must not cancel");
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        // The queue keeps working after the misuse.
        s.schedule(Time::from_ns(2.0), "next");
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop(), Some((Time::from_ns(2.0), "next")));
    }

    #[test]
    fn try_cancel_reports_stale_keys() {
        let mut s = Scheduler::new();
        let k = s.schedule(Time::from_ns(1.0), ());
        assert_eq!(s.try_cancel(k), Ok(()));
        assert_eq!(s.try_cancel(k), Err(SimError::StaleKey));
        let k2 = s.schedule(Time::from_ns(2.0), ());
        s.pop();
        assert_eq!(s.try_cancel(k2), Err(SimError::StaleKey));
    }

    #[test]
    fn try_schedule_rejects_past_events_without_mutating() {
        let mut s = Scheduler::new();
        s.schedule(Time::from_ns(2.0), 1);
        s.pop();
        let err = s.try_schedule(Time::from_ns(1.0), 2).unwrap_err();
        assert!(matches!(err, SimError::PastEvent { .. }));
        assert!(s.is_empty(), "failed schedule must not enqueue");
        // Present-time events are fine.
        assert!(s.try_schedule(Time::from_ns(2.0), 3).is_ok());
    }

    #[test]
    fn try_schedule_after_reports_overflow() {
        let mut s = Scheduler::new();
        s.schedule(Time::MAX - Time::from_fs(1), ());
        s.pop();
        let err = s.try_schedule_after(Time::from_ns(1.0), ()).unwrap_err();
        assert_eq!(err, SimError::TimeOverflow { op: "schedule_after" });
        // The saturating wrapper still lands on the MAX sentinel.
        let k = s.schedule_after(Time::from_ns(1.0), ());
        assert_eq!(s.next_time(), Some(Time::MAX));
        assert!(s.cancel(k));
    }

    #[test]
    fn foreign_keys_are_rejected() {
        let mut a = Scheduler::new();
        a.schedule(Time::from_ns(1.0), ());
        let mut b: Scheduler<()> = Scheduler::new();
        // A key minted by `a` names a sequence number `b` never issued.
        let k = a.schedule(Time::from_ns(2.0), ());
        assert!(!b.cancel(k));
        assert!(b.is_empty());
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut s = Scheduler::new();
        let k1 = s.schedule(Time::from_ns(1.0), ());
        s.schedule(Time::from_ns(2.0), ());
        assert_eq!(s.len(), 2);
        s.cancel(k1);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
