use std::error::Error;
use std::fmt;

use crate::Time;

/// A recoverable simulation failure.
///
/// The simulation stack distinguishes *model bugs* (which keep panicking
/// through the infallible entry points, because continuing would produce
/// silently wrong physics) from *recoverable conditions* that a driver —
/// a sweep over user-supplied parameters, the fault-injection tier, a
/// service endpoint — must be able to observe without unwinding. Every
/// `try_*` method in `a4a-sim`, `a4a-analog`, `a4a-ctrl`, `a4a-a2a`, and
/// the `a4a` testbench reports its failure as a `SimError`; the
/// corresponding panicking wrappers format the same error into their
/// panic message, so the two paths can never drift apart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// An event was scheduled before the scheduler's current time.
    PastEvent {
        /// The requested (past) timestamp.
        time: Time,
        /// The scheduler's current time.
        now: Time,
    },
    /// A time computation left the representable `u64` femtosecond range.
    TimeOverflow {
        /// The operation that overflowed (e.g. `"schedule_after"`).
        op: &'static str,
    },
    /// A floating-point time value was NaN, negative, infinite, or too
    /// large for the femtosecond range.
    InvalidTime {
        /// The offending value, in `unit`s.
        value: f64,
        /// The unit the value was given in (`"ns"`, `"ps"`, ...).
        unit: &'static str,
    },
    /// An [`EventKey`](crate::EventKey) was cancelled after its event had
    /// already been delivered or cancelled.
    StaleKey,
    /// A numeric model parameter was rejected (NaN, wrong sign, out of
    /// range). `what` names the parameter.
    InvalidParameter {
        /// The parameter's name, possibly with its unit.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Both power transistors of a phase were commanded on at once.
    ShortCircuit {
        /// The offending phase.
        phase: usize,
        /// Simulation time of the command (seconds).
        at_secs: f64,
    },
    /// A phase index was out of range for the model it addressed.
    PhaseOutOfRange {
        /// The requested phase.
        phase: usize,
        /// The number of phases the model has.
        phases: usize,
    },
    /// A controller and a power stage disagree on the phase count.
    PhaseMismatch {
        /// Phases the controller drives.
        controller: usize,
        /// Phases the power stage has.
        power_stage: usize,
    },
    /// The analog state stopped being finite — the integration diverged
    /// (e.g. an absurdly large step). The model is poisoned and must be
    /// discarded.
    NonFinite {
        /// What diverged (e.g. `"buck state"`).
        what: &'static str,
        /// Simulation time at detection (seconds).
        at_secs: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PastEvent { time, now } => {
                write!(f, "event scheduled in the past: {time} < {now}")
            }
            SimError::TimeOverflow { op } => {
                write!(f, "time overflow in {op}")
            }
            SimError::InvalidTime { value, unit } => {
                write!(
                    f,
                    "time must be finite, non-negative, and within the \
                     femtosecond range: got {value}{unit}"
                )
            }
            SimError::StaleKey => {
                write!(f, "stale event key: already delivered or cancelled")
            }
            SimError::InvalidParameter { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            SimError::ShortCircuit { phase, at_secs } => {
                write!(
                    f,
                    "short circuit: PMOS and NMOS of phase {phase} driven on \
                     simultaneously at t={at_secs}s"
                )
            }
            SimError::PhaseOutOfRange { phase, phases } => {
                write!(f, "phase {phase} out of range (model has {phases})")
            }
            SimError::PhaseMismatch {
                controller,
                power_stage,
            } => {
                write!(
                    f,
                    "controller and power stage disagree on phase count: \
                     {controller} vs {power_stage}"
                )
            }
            SimError::NonFinite { what, at_secs } => {
                write!(f, "non-finite {what} at t={at_secs}s: model diverged")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_condition() {
        let e = SimError::PastEvent {
            time: Time::ZERO,
            now: Time::from_fs(5),
        };
        assert!(e.to_string().contains("in the past"));
        assert!(SimError::StaleKey.to_string().contains("stale"));
        let e = SimError::InvalidTime {
            value: f64::NAN,
            unit: "ns",
        };
        assert!(e.to_string().contains("non-negative"));
        let e = SimError::ShortCircuit {
            phase: 2,
            at_secs: 1e-6,
        };
        assert!(e.to_string().contains("short circuit"));
        let e = SimError::PhaseMismatch {
            controller: 2,
            power_stage: 4,
        };
        assert!(e.to_string().contains("disagree on phase count"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(SimError::StaleKey);
        assert!(e.source().is_none());
    }
}
