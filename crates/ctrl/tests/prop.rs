//! Property-based fuzzing of both controllers: random sensor event
//! streams must never produce a short-circuit command sequence, and
//! commands must be time-monotone per phase.

use a4a_analog::SensorKind;
use a4a_ctrl::{
    AsyncController, AsyncTiming, BuckController, Command, SyncController, SyncParams,
};
use a4a_rt::prop::{self, Config, Gen, PropResult, TestCaseError};
use a4a_rt::prop_assert;
use a4a_sim::Time;

#[derive(Debug, Clone, Copy)]
enum Fuzz {
    Hl(bool),
    Uv(bool),
    Ov(bool),
    Oc(usize, bool),
    Zc(usize, bool),
}

fn arb_events(g: &mut Gen, phases: usize, len: usize) -> Vec<(u64, Fuzz)> {
    let steps = g.vec(1..len, |g| {
        let dt = g.u64(1..400);
        let f = match g.choice(5) {
            0 => Fuzz::Hl(g.bool()),
            1 => Fuzz::Uv(g.bool()),
            2 => Fuzz::Ov(g.bool()),
            3 => Fuzz::Oc(g.usize(0..phases), g.bool()),
            _ => Fuzz::Zc(g.usize(0..phases), g.bool()),
        };
        (dt, f)
    });
    let mut t = 10u64;
    steps
        .into_iter()
        .map(|(dt, f)| {
            t += dt;
            (t, f)
        })
        .collect()
}

/// Drives a controller with the fuzz stream, acking every gate command,
/// and asserts the safety properties on the command log.
fn drive(ctrl: &mut dyn BuckController, events: &[(u64, Fuzz)], phases: usize) -> Result<(), TestCaseError> {
    // Track sensor levels so we only deliver actual changes (comparator
    // outputs are level signals).
    let mut levels = std::collections::HashMap::new();
    let mut acks: Vec<(Time, usize, bool, bool)> = Vec::new();
    let mut gp = vec![false; phases];
    let mut gn = vec![false; phases];
    let mut last_cmd_time = Time::ZERO;
    let ack_delay = Time::from_ns(2.0);

    let process =
        |ctrl: &mut dyn BuckController,
         acks: &mut Vec<(Time, usize, bool, bool)>,
         gp: &mut Vec<bool>,
         gn: &mut Vec<bool>,
         last_cmd_time: &mut Time,
         now: Time|
         -> Result<(), TestCaseError> {
            loop {
                acks.sort_by_key(|a| a.0);
                let next_ack = acks.first().map(|a| a.0).filter(|&t| t <= now);
                let next_wake = ctrl.next_wakeup().filter(|&t| t <= now);
                match (next_ack, next_wake) {
                    (Some(ta), w) if w.map(|tw| ta <= tw).unwrap_or(true) => {
                        let (t, phase, pmos, value) = acks.remove(0);
                        let _ = ta;
                        ctrl.on_gate_ack(t, phase, pmos, value);
                    }
                    (_, Some(tw)) => {
                        ctrl.on_wakeup(tw);
                    }
                    _ => break,
                }
                for cmd in ctrl.take_commands() {
                    prop_assert!(
                        cmd.time >= *last_cmd_time,
                        "commands must be time-sorted per drain"
                    );
                    *last_cmd_time = cmd.time;
                    if let Command::Gate { phase, pmos, value } = cmd.command {
                        if pmos {
                            gp[phase] = value;
                        } else {
                            gn[phase] = value;
                        }
                        prop_assert!(
                            !(gp[phase] && gn[phase]),
                            "short circuit on phase {} at {}",
                            phase,
                            cmd.time
                        );
                        acks.push((cmd.time + ack_delay, phase, pmos, value));
                    }
                }
            }
            Ok(())
        };

    for &(t_ns, fuzz) in events {
        let t = Time::from_ns(t_ns as f64);
        process(ctrl, &mut acks, &mut gp, &mut gn, &mut last_cmd_time, t)?;
        let (kind, value) = match fuzz {
            Fuzz::Hl(v) => (SensorKind::Hl, v),
            Fuzz::Uv(v) => (SensorKind::Uv, v),
            Fuzz::Ov(v) => (SensorKind::Ov, v),
            Fuzz::Oc(k, v) => (SensorKind::Oc(k), v),
            Fuzz::Zc(k, v) => (SensorKind::Zc(k), v),
        };
        let slot = levels.entry(format!("{kind}")).or_insert(false);
        if *slot != value {
            *slot = value;
            ctrl.on_sensor(t, kind, value);
            // Collect immediately-emitted commands too.
            for cmd in ctrl.take_commands() {
                last_cmd_time = last_cmd_time.max(cmd.time);
                if let Command::Gate { phase, pmos, value } = cmd.command {
                    if pmos {
                        gp[phase] = value;
                    } else {
                        gn[phase] = value;
                    }
                    prop_assert!(!(gp[phase] && gn[phase]), "short circuit");
                    acks.push((cmd.time + ack_delay, phase, pmos, value));
                }
            }
        }
    }
    // Drain the tail.
    let end = Time::from_us(100.0);
    process(ctrl, &mut acks, &mut gp, &mut gn, &mut last_cmd_time, end)?;
    Ok(())
}

/// The asynchronous controller never shorts the bridge under any
/// sensor fuzz.
#[test]
fn async_never_shorts() {
    prop::check_with(&Config::with_cases(40), "async_never_shorts", |g: &mut Gen| -> PropResult {
        let events = arb_events(g, 3, 60);
        let mut ctrl = AsyncController::new(3, AsyncTiming::default());
        drive(&mut ctrl, &events, 3)?;
        Ok(())
    });
}

/// Neither does the synchronous controller, at any clock rate.
#[test]
fn sync_never_shorts() {
    prop::check_with(&Config::with_cases(40), "sync_never_shorts", |g: &mut Gen| -> PropResult {
        let events = arb_events(g, 3, 60);
        let mhz = g.f64(50.0..1200.0);
        let mut ctrl = SyncController::new(3, SyncParams::at_mhz(mhz));
        drive(&mut ctrl, &events, 3)?;
        Ok(())
    });
}

/// The basic single-phase controller is safe too.
#[test]
fn basic_never_shorts() {
    prop::check_with(&Config::with_cases(40), "basic_never_shorts", |g: &mut Gen| -> PropResult {
        let events = arb_events(g, 1, 40);
        let mut ctrl = a4a_ctrl::BasicBuckController::new();
        drive(&mut ctrl, &events, 1)?;
        Ok(())
    });
}
