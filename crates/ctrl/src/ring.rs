//! The asynchronous token-ring controller (Figure 5b/5c).
//!
//! One identical phase controller per buck phase, connected in a ring.
//! The token holder is the *active* stage: its MODE_CTRL arms a WAITX2
//! on the UV/OV comparators and reacts within nanoseconds; an early
//! acknowledge lets the token move on (after the TOKEN_TIMER minimum
//! dwell) so the next stage can help while this one is still charging.
//! HL activates every stage at once through the WAIT + opportunistic
//! MERGE path. Charging follows the basic-buck pattern with
//! break-before-make enforced through the gate acknowledges, PMIN/NMIN
//! minimum on-times, and the PEXT first-cycle extension (detected by a
//! WAIT01 on UV).
//!
//! The model is event-driven: module decision delays come from
//! [`AsyncTiming`] (calibrated against the synthesised gate-level
//! modules) and there is no clock anywhere — reaction latency is purely
//! the sum of the modules a signal actually traverses.

use a4a_analog::{SensorKind, TrackId};
use a4a_sim::{Scheduler, Time};

use crate::{AsyncTiming, BuckController, Command, TimedCommand};

/// Charging state of one phase (the CHARGE_CTRL + delay-controller
/// portion of Figure 5c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    /// Both transistors off.
    Idle,
    /// `gp` commanded on, waiting for `gp_ack` rise.
    TurnPmosOn,
    /// PMOS conducting; waiting for OC (and the minimum on-time).
    PmosOn,
    /// `gp` commanded off, waiting for `gp_ack` fall (break before
    /// make).
    TurnPmosOff,
    /// `gn` commanded on, waiting for `gn_ack` rise.
    TurnNmosOn,
    /// NMOS conducting; waiting for ZC or for the next charge demand.
    NmosOn,
    /// `gn` commanded off, waiting for `gn_ack` fall.
    TurnNmosOff {
        /// Start a new PMOS cycle after the ack (late/no-ZC scenario),
        /// or finish to idle (early-ZC / OV-resolved scenario).
        recharge: bool,
    },
}

/// Internal scheduled actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Act {
    /// Activation (token arrival or HL merge) delivered to a stage.
    Arm { phase: usize },
    /// The token moves to the next stage.
    PassToken,
    /// CHARGE_CTRL begins a UV charging cycle.
    StartCycle { phase: usize },
    /// CHARGE_CTRL begins OV sinking.
    StartOv { phase: usize },
    /// A gate command leaves the controller.
    Gate { phase: usize, pmos: bool, value: bool },
    /// The sensor references switch between normal and OV mode.
    OvMode(bool),
    /// PMOS minimum on-time expired: act on a pending OC.
    PminDone { phase: usize },
    /// NMOS minimum on-time expired: act on a pending ZC.
    NminDone { phase: usize },
}

#[derive(Debug, Clone)]
struct Phase {
    state: PState,
    /// Activation pending (token/HL), not yet consumed by a demand.
    armed: bool,
    /// A StartCycle/StartOv is in flight for this stage.
    start_pending: bool,
    /// A demand arrived while the stage was mid-cycle; recharge when the
    /// current cycle completes.
    recharge_queued: bool,
    gp: bool,
    gn: bool,
    gp_ack: bool,
    gn_ack: bool,
    /// Earliest time `gp` may be commanded off.
    pmos_min_until: Time,
    /// Earliest time `gn` may be commanded off.
    nmos_min_until: Time,
    /// OC seen while PMOS on (pending if before the minimum on-time).
    oc_pending: bool,
    /// ZC seen while NMOS on.
    zc_pending: bool,
    /// RWAIT cancelled: ZC no longer ends this NMOS phase.
    zc_cancelled: bool,
    /// Next cycle is the first after a UV detection: extend PMIN by
    /// PEXT (the WAIT01 + EXT_DELAY_CTRL path).
    first_cycle: bool,
    /// Sinking energy in OV mode.
    ov_sink: bool,
}

impl Phase {
    fn new() -> Phase {
        Phase {
            state: PState::Idle,
            armed: false,
            start_pending: false,
            recharge_queued: false,
            gp: false,
            gn: false,
            gp_ack: false,
            gn_ack: false,
            pmos_min_until: Time::ZERO,
            nmos_min_until: Time::ZERO,
            oc_pending: false,
            zc_pending: false,
            zc_cancelled: false,
            first_cycle: true,
            ov_sink: false,
        }
    }
}

/// The asynchronous token-ring controller. See the module documentation.
///
/// # Examples
///
/// ```
/// use a4a_ctrl::{AsyncController, AsyncTiming, BuckController};
/// use a4a_analog::SensorKind;
/// use a4a_sim::Time;
///
/// let mut ctrl = AsyncController::new(4, AsyncTiming::default());
/// ctrl.on_wakeup(Time::from_ns(1.0));              // arm stage 0
/// ctrl.on_sensor(Time::from_ns(10.0), SensorKind::Uv, true);
/// ctrl.on_wakeup(Time::from_ns(12.0));
/// let cmds = ctrl.take_commands();
/// assert!(!cmds.is_empty(), "UV triggers charging within ~1 ns");
/// ```
#[derive(Debug)]
pub struct AsyncController {
    timing: AsyncTiming,
    phases: Vec<Phase>,
    sched: Scheduler<Act>,
    out: Vec<TimedCommand>,
    // Sensor levels.
    hl: bool,
    uv: bool,
    ov: bool,
    // Token state.
    token_holder: usize,
    token_arrived_at: Time,
    token_pass_scheduled: bool,
    ov_mode: bool,
    /// Interned name of the `get & !pass` debug track.
    track_get_not_pass: TrackId,
}

impl AsyncController {
    /// Creates the controller for `phases` buck phases. The token starts
    /// at phase 0, which is armed immediately.
    ///
    /// # Panics
    ///
    /// Panics when `phases` is zero.
    pub fn new(phases: usize, timing: AsyncTiming) -> Self {
        assert!(phases > 0, "at least one phase required");
        let mut ctrl = AsyncController {
            timing,
            phases: (0..phases).map(|_| Phase::new()).collect(),
            sched: Scheduler::new(),
            out: Vec::new(),
            hl: false,
            uv: false,
            ov: false,
            token_holder: 0,
            token_arrived_at: Time::ZERO,
            token_pass_scheduled: false,
            ov_mode: false,
            track_get_not_pass: TrackId::intern("get & !pass"),
        };
        ctrl.sched.schedule(Time::ZERO, Act::Arm { phase: 0 });
        ctrl
    }

    /// The configured timing.
    pub fn timing(&self) -> &AsyncTiming {
        &self.timing
    }

    /// The stage currently holding the token.
    pub fn token_holder(&self) -> usize {
        self.token_holder
    }

    fn emit(&mut self, t: Time, command: Command) {
        self.out.push(TimedCommand { time: t, command });
    }

    /// A stage with a pending activation reacts to a pending demand
    /// (the WAITX2 grant of MODE_CTRL).
    fn check_demand(&mut self, t: Time, phase: usize) {
        let p = &self.phases[phase];
        if !p.armed || p.start_pending {
            return;
        }
        let is_holder = phase == self.token_holder;
        if self.ov && is_holder {
            // OV grant: switch the references, sink energy.
            self.phases[phase].armed = false;
            self.phases[phase].start_pending = true;
            let t_mode = t + self.timing.d_waitx + self.timing.d_mode + self.timing.d_mode_switch;
            self.sched.schedule(t_mode, Act::OvMode(true));
            self.sched
                .schedule(t + self.timing.ov_path(), Act::StartOv { phase });
            self.early_ack_token(t, phase);
        } else if self.uv {
            self.phases[phase].armed = false;
            self.phases[phase].start_pending = true;
            self.sched
                .schedule(t + self.timing.uv_path(), Act::StartCycle { phase });
            self.early_ack_token(t, phase);
        }
    }

    /// MODE_CTRL's early acknowledge: the token may move once its
    /// minimum dwell expires.
    fn early_ack_token(&mut self, t: Time, phase: usize) {
        if phase != self.token_holder || self.token_pass_scheduled {
            return;
        }
        self.token_pass_scheduled = true;
        let earliest = self
            .token_arrived_at
            .saturating_add(self.timing.policy.activation_period);
        let at = earliest.max(t + self.timing.d_token);
        self.sched.schedule(at, Act::PassToken);
    }

    /// CHARGE_CTRL entry: begin a charging cycle respecting break
    /// before make.
    fn start_cycle(&mut self, t: Time, phase: usize) {
        self.phases[phase].start_pending = false;
        match self.phases[phase].state {
            PState::Idle => {
                self.command_gate(t, phase, true, true);
            }
            PState::NmosOn => {
                // Late/no-ZC scenario: cancel the ZC wait (RWAIT) and
                // hand over once OC releases and NMIN expires.
                self.phases[phase].recharge_queued = true;
                self.maybe_recharge(t, phase);
            }
            // Mid-transition: queue a recharge for when the cycle
            // settles.
            _ => {
                self.phases[phase].recharge_queued = true;
            }
        }
    }

    /// OV sinking: make sure the NMOS conducts until the negative
    /// current limit.
    fn start_ov(&mut self, t: Time, phase: usize) {
        self.phases[phase].start_pending = false;
        self.phases[phase].ov_sink = true;
        match self.phases[phase].state {
            PState::Idle => {
                self.phases[phase].state = PState::TurnNmosOn;
                self.sched.schedule(
                    t,
                    Act::Gate {
                        phase,
                        pmos: false,
                        value: true,
                    },
                );
            }
            PState::PmosOn => {
                // The reference switch makes OC fire at I_0; the regular
                // OC path turns the PMOS off. Nothing extra to do here.
            }
            PState::NmosOn => {
                // Already sinking; the new ZC reference (I_neg) applies.
            }
            _ => {}
        }
    }

    /// Emits a gate command now (or schedules the state entry for it).
    fn command_gate(&mut self, t: Time, phase: usize, pmos: bool, value: bool) {
        self.apply_gate(t, phase, pmos, value);
    }

    fn apply_gate(&mut self, t: Time, phase: usize, pmos: bool, value: bool) {
        {
            let p = &mut self.phases[phase];
            match (pmos, value) {
                (true, true) => {
                    debug_assert!(!p.gn && !p.gn_ack, "break-before-make violated");
                    p.gp = true;
                    p.state = PState::TurnPmosOn;
                }
                (true, false) => {
                    p.gp = false;
                    p.state = PState::TurnPmosOff;
                }
                (false, true) => {
                    debug_assert!(!p.gp && !p.gp_ack, "break-before-make violated");
                    p.gn = true;
                    p.state = PState::TurnNmosOn;
                }
                (false, false) => {
                    p.gn = false;
                    if !matches!(p.state, PState::TurnNmosOff { .. }) {
                        p.state = PState::TurnNmosOff { recharge: false };
                    }
                }
            }
        }
        self.emit(t, Command::Gate { phase, pmos, value });
    }

    /// PMOS conducting phase reached both OC and its minimum on-time:
    /// turn it off.
    fn finish_pmos(&mut self, t: Time, phase: usize) {
        if self.phases[phase].state != PState::PmosOn {
            return;
        }
        let at = t.max(self.phases[phase].pmos_min_until);
        if at > t {
            self.sched.schedule(at, Act::PminDone { phase });
            return;
        }
        self.sched.schedule(
            t,
            Act::Gate {
                phase,
                pmos: true,
                value: false,
            },
        );
        // State changes when the command is processed.
        self.phases[phase].state = PState::TurnPmosOff;
        self.phases[phase].gp = false;
    }

    /// NMOS conducting phase reached both ZC and its minimum on-time:
    /// turn it off.
    fn finish_nmos(&mut self, t: Time, phase: usize) {
        if self.phases[phase].state != PState::NmosOn {
            return;
        }
        if self.phases[phase].zc_cancelled {
            return;
        }
        let at = t.max(self.phases[phase].nmos_min_until);
        if at > t {
            self.sched.schedule(at, Act::NminDone { phase });
            return;
        }
        self.phases[phase].state = PState::TurnNmosOff { recharge: false };
        self.phases[phase].gn = false;
        self.sched.schedule(
            t,
            Act::Gate {
                phase,
                pmos: false,
                value: false,
            },
        );
    }

    /// Figure 2b's late/no-ZC scenario: while UV stays asserted, the
    /// NMOS phase hands straight back to a new PMOS cycle (observing the
    /// NMOS minimum on-time), keeping the coil in continuous conduction.
    /// The WAIT2 on the OC condition gates this: a new PMOS cycle only
    /// begins once the over-current has released (current back below
    /// `I_max`), which is what bounds the peak current.
    fn maybe_recharge(&mut self, t: Time, phase: usize) {
        let p = &self.phases[phase];
        if p.state != PState::NmosOn
            || !self.uv
            || p.ov_sink
            || p.zc_cancelled
            || p.oc_pending
        {
            return;
        }
        self.phases[phase].recharge_queued = false;
        let p = &self.phases[phase];
        let at = (t + self.timing.uv_path()).max(p.nmos_min_until);
        self.phases[phase].zc_cancelled = true;
        self.phases[phase].state = PState::TurnNmosOff { recharge: true };
        self.phases[phase].gn = false;
        self.sched.schedule(
            at,
            Act::Gate {
                phase,
                pmos: false,
                value: false,
            },
        );
    }

    fn process(&mut self, t: Time, act: Act) {
        match act {
            Act::Arm { phase } => {
                self.phases[phase].armed = true;
                self.check_demand(t, phase);
            }
            Act::PassToken => {
                self.token_pass_scheduled = false;
                self.token_holder = (self.token_holder + 1) % self.phases.len();
                self.token_arrived_at = t;
                let phase = self.token_holder;
                self.sched.schedule(t, Act::Arm { phase });
            }
            Act::StartCycle { phase } => self.start_cycle(t, phase),
            Act::StartOv { phase } => self.start_ov(t, phase),
            Act::Gate { phase, pmos, value } => {
                // Commands scheduled from timer paths: reflect them in
                // the machine state and emit.
                let already = if pmos {
                    self.phases[phase].gp == value
                        && matches!(
                            self.phases[phase].state,
                            PState::TurnPmosOn | PState::TurnPmosOff
                        )
                } else {
                    false
                };
                if !already {
                    self.apply_gate(t, phase, pmos, value);
                } else {
                    self.emit(t, Command::Gate { phase, pmos, value });
                }
            }
            Act::OvMode(on) => {
                if self.ov_mode != on {
                    self.ov_mode = on;
                    self.emit(t, Command::OvMode(on));
                }
            }
            Act::PminDone { phase } => {
                if self.phases[phase].oc_pending {
                    self.finish_pmos(t, phase);
                }
            }
            Act::NminDone { phase } => {
                if self.phases[phase].zc_pending {
                    self.finish_nmos(t, phase);
                }
            }
        }
    }
}

impl BuckController for AsyncController {
    fn phases(&self) -> usize {
        self.phases.len()
    }

    fn on_sensor(&mut self, t: Time, kind: SensorKind, value: bool) {
        match kind {
            SensorKind::Hl => {
                self.hl = value;
                if value {
                    // WAIT + MERGE + TOKEN_CTRL: every stage is drafted.
                    let at = t + self.timing.d_wait + self.timing.d_merge + self.timing.d_token;
                    for phase in 0..self.phases.len() {
                        self.sched.schedule(at, Act::Arm { phase });
                    }
                }
            }
            SensorKind::Uv => {
                self.uv = value;
                if value {
                    for phase in 0..self.phases.len() {
                        self.phases[phase].first_cycle = true;
                    }
                    self.check_demand(t, self.token_holder);
                    for phase in 0..self.phases.len() {
                        // HL-armed stages also see the demand; stages
                        // still free-wheeling recharge directly (no ZC).
                        self.check_demand(t, phase);
                        self.maybe_recharge(t, phase);
                    }
                }
            }
            SensorKind::Ov => {
                self.ov = value;
                if value {
                    self.check_demand(t, self.token_holder);
                } else {
                    // WAITX2 releases once the winner drops: back to
                    // normal references.
                    if self.ov_mode {
                        self.sched
                            .schedule(t + self.timing.d_mode, Act::OvMode(false));
                    }
                    for p in &mut self.phases {
                        p.ov_sink = false;
                    }
                }
            }
            SensorKind::Oc(phase) => {
                if phase < self.phases.len() {
                    self.phases[phase].oc_pending = value;
                    if !value {
                        // WAIT2 release phase: a deferred recharge may
                        // now proceed.
                        self.maybe_recharge(t, phase);
                    }
                    if value && self.phases[phase].state == PState::PmosOn {
                        let when = t + self.timing.oc_path();
                        let min = self.phases[phase].pmos_min_until;
                        if when >= min {
                            self.phases[phase].state = PState::TurnPmosOff;
                            self.phases[phase].gp = false;
                            self.sched.schedule(
                                when,
                                Act::Gate {
                                    phase,
                                    pmos: true,
                                    value: false,
                                },
                            );
                        } else {
                            self.sched.schedule(min, Act::PminDone { phase });
                        }
                    }
                }
            }
            SensorKind::Zc(phase) => {
                if phase < self.phases.len() {
                    self.phases[phase].zc_pending = value;
                    if value
                        && self.phases[phase].state == PState::NmosOn
                        && !self.phases[phase].zc_cancelled
                    {
                        let when = t + self.timing.zc_path();
                        let min = self.phases[phase].nmos_min_until;
                        if when >= min {
                            self.phases[phase].state = PState::TurnNmosOff { recharge: false };
                            self.phases[phase].gn = false;
                            self.sched.schedule(
                                when,
                                Act::Gate {
                                    phase,
                                    pmos: false,
                                    value: false,
                                },
                            );
                        } else {
                            self.sched.schedule(min, Act::NminDone { phase });
                        }
                    }
                }
            }
        }
    }

    fn on_gate_ack(&mut self, t: Time, phase: usize, pmos: bool, value: bool) {
        if pmos {
            self.phases[phase].gp_ack = value;
        } else {
            self.phases[phase].gn_ack = value;
        }
        let state = self.phases[phase].state;
        match (state, pmos, value) {
            (PState::TurnPmosOn, true, true) => {
                let ext = if self.phases[phase].first_cycle {
                    self.phases[phase].first_cycle = false;
                    self.timing.policy.pext
                } else {
                    Time::ZERO
                };
                self.phases[phase].state = PState::PmosOn;
                self.phases[phase].pmos_min_until = t + self.timing.policy.pmin + ext;
                if self.phases[phase].oc_pending {
                    // OC already latched (e.g. OV-mode reference with
                    // positive current): finish after the minimum.
                    self.sched.schedule(
                        self.phases[phase].pmos_min_until,
                        Act::PminDone { phase },
                    );
                }
            }
            (PState::TurnPmosOff, true, false) => {
                // Break before make done: NMOS on.
                self.phases[phase].state = PState::TurnNmosOn;
                self.phases[phase].gn = true;
                self.sched.schedule(
                    t + self.timing.d_charge,
                    Act::Gate {
                        phase,
                        pmos: false,
                        value: true,
                    },
                );
            }
            (PState::TurnNmosOn, false, true) => {
                self.phases[phase].state = PState::NmosOn;
                self.phases[phase].nmos_min_until = t + self.timing.policy.nmin;
                self.phases[phase].zc_cancelled = false;
                if self.phases[phase].zc_pending {
                    self.sched.schedule(
                        self.phases[phase].nmos_min_until,
                        Act::NminDone { phase },
                    );
                }
                // The no-ZC scenario of Figure 2b: a still-asserted UV
                // takes the phase straight back into charging.
                self.maybe_recharge(t, phase);
            }
            (PState::TurnNmosOff { recharge }, false, false) => {
                // A queued demand expires if the UV condition has
                // cleared meanwhile (the WAITX2 grant was released).
                let recharge = recharge || (self.phases[phase].recharge_queued && self.uv);
                self.phases[phase].recharge_queued = false;
                if recharge {
                    self.phases[phase].state = PState::TurnPmosOn;
                    self.phases[phase].gp = true;
                    self.sched.schedule(
                        t + self.timing.d_charge,
                        Act::Gate {
                            phase,
                            pmos: true,
                            value: true,
                        },
                    );
                } else {
                    self.phases[phase].state = PState::Idle;
                    // A queued activation may start a new cycle now.
                    self.check_demand(t, phase);
                }
            }
            _ => {}
        }
    }

    fn next_wakeup(&self) -> Option<Time> {
        self.sched.next_time()
    }

    fn on_wakeup(&mut self, t: Time) {
        while let Some(at) = self.sched.next_time() {
            if at > t {
                break;
            }
            let (time, act) = self.sched.pop().expect("peeked nonempty");
            self.process(time, act);
        }
    }

    fn take_commands(&mut self) -> Vec<TimedCommand> {
        let mut cmds = std::mem::take(&mut self.out);
        cmds.sort_by_key(|c| c.time);
        cmds
    }

    fn take_commands_into(&mut self, out: &mut Vec<TimedCommand>) {
        let start = out.len();
        out.append(&mut self.out);
        out[start..].sort_by_key(|c| c.time);
    }

    fn debug_tracks_into(&self, out: &mut Vec<(TrackId, bool)>) {
        out.push((
            self.track_get_not_pass,
            self.phases[self.token_holder].armed || self.token_pass_scheduled,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    /// Drives a controller manually, acking gate commands after a fixed
    /// driver+ack delay, and returns all emitted commands.
    struct Harness {
        ctrl: AsyncController,
        acks: Vec<(Time, usize, bool, bool)>,
        log: Vec<TimedCommand>,
        ack_delay: Time,
    }

    impl Harness {
        fn new(phases: usize) -> Harness {
            Harness {
                ctrl: AsyncController::new(phases, AsyncTiming::default()),
                acks: Vec::new(),
                log: Vec::new(),
                ack_delay: Time::from_ns(2.5),
            }
        }

        fn drain(&mut self, now: Time) {
            loop {
                // Deliver due acks first.
                self.acks.sort_by_key(|a| a.0);
                if let Some(&(t, phase, pmos, value)) = self.acks.first() {
                    if t <= now {
                        self.acks.remove(0);
                        self.ctrl.on_gate_ack(t, phase, pmos, value);
                        continue;
                    }
                }
                if let Some(w) = self.ctrl.next_wakeup() {
                    if w <= now {
                        self.ctrl.on_wakeup(w);
                        for cmd in self.ctrl.take_commands() {
                            self.log.push(cmd);
                            if let Command::Gate { phase, pmos, value } = cmd.command {
                                self.acks.push((
                                    cmd.time + self.ack_delay,
                                    phase,
                                    pmos,
                                    value,
                                ));
                            }
                        }
                        continue;
                    }
                }
                break;
            }
        }

        fn sensor(&mut self, t: Time, kind: SensorKind, v: bool) {
            self.drain(t);
            self.ctrl.on_sensor(t, kind, v);
            for cmd in self.ctrl.take_commands() {
                self.log.push(cmd);
                if let Command::Gate { phase, pmos, value } = cmd.command {
                    self.acks.push((cmd.time + self.ack_delay, phase, pmos, value));
                }
            }
        }

        fn gates(&self) -> Vec<(f64, usize, bool, bool)> {
            self.log
                .iter()
                .filter_map(|c| match c.command {
                    Command::Gate { phase, pmos, value } => {
                        Some((c.time.as_ns(), phase, pmos, value))
                    }
                    _ => None,
                })
                .collect()
        }
    }

    #[test]
    fn uv_starts_pmos_within_nanoseconds() {
        let mut h = Harness::new(4);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.drain(ns(20.0));
        let gates = h.gates();
        assert!(!gates.is_empty(), "no gate commands");
        let (t, phase, pmos, value) = gates[0];
        assert_eq!((phase, pmos, value), (0, true, true), "{gates:?}");
        let latency = t - 10.0;
        assert!(
            (latency - 1.02).abs() < 0.01,
            "UV reaction should be ~1.02ns, got {latency}"
        );
    }

    #[test]
    fn oc_turns_pmos_off_after_pmin() {
        let mut h = Harness::new(1);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.drain(ns(20.0));
        // PMOS acked at ~13.5ns; min-until = ack + pmin + pext (first
        // cycle) = 13.5 + 20 + 40 = ~73.5ns.
        h.sensor(ns(30.0), SensorKind::Oc(0), true);
        h.drain(ns(300.0));
        let gates = h.gates();
        let off = gates
            .iter()
            .find(|(_, _, pmos, value)| *pmos && !*value)
            .expect("gp- emitted");
        assert!(
            off.0 > 70.0,
            "PEXT+PMIN must hold the PMOS on: {gates:?}"
        );
        // And NMOS follows after break-before-make.
        let gn_on = gates
            .iter()
            .find(|(_, _, pmos, value)| !*pmos && *value)
            .expect("gn+ emitted");
        assert!(gn_on.0 > off.0);
    }

    #[test]
    fn oc_reaction_fast_on_second_cycle() {
        let mut h = Harness::new(1);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.drain(ns(400.0));
        h.sensor(ns(400.0), SensorKind::Oc(0), true);
        h.drain(ns(600.0));
        // Complete the first cycle: ZC ends the NMOS phase.
        h.sensor(ns(600.0), SensorKind::Oc(0), false);
        h.sensor(ns(650.0), SensorKind::Zc(0), true);
        h.drain(ns(800.0));
        // Second cycle (uv still high, re-arm via token wrap is complex;
        // just verify ZC produced gn-).
        let gates = h.gates();
        assert!(
            gates.iter().any(|(_, _, pmos, value)| !*pmos && !*value),
            "gn- after ZC: {gates:?}"
        );
    }

    #[test]
    fn zc_reaction_is_031ns() {
        let mut h = Harness::new(1);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.drain(ns(40.0));
        // UV clears while charging so the NMOS phase is not taken over
        // by a recharge; OC at 200 (past the PEXT window, ~73.5).
        h.sensor(ns(150.0), SensorKind::Uv, false);
        h.sensor(ns(200.0), SensorKind::Oc(0), true);
        h.drain(ns(300.0));
        h.sensor(ns(300.0), SensorKind::Oc(0), false);
        // NMOS is on by ~208; nmin until ~228.
        let zc_t = ns(400.0);
        h.sensor(zc_t, SensorKind::Zc(0), true);
        h.drain(ns(500.0));
        let gates = h.gates();
        let gn_off = gates
            .iter()
            .find(|(t, _, pmos, value)| !*pmos && !*value && *t >= 400.0)
            .expect("gn- after ZC");
        let latency = gn_off.0 - 400.0;
        assert!(
            (latency - 0.31).abs() < 0.01,
            "ZC reaction should be ~0.31ns, got {latency}: {gates:?}"
        );
    }

    #[test]
    fn hl_arms_all_phases() {
        let mut h = Harness::new(4);
        h.drain(ns(1.0));
        // HL and UV assert together (HL implies UV).
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.drain(ns(11.0));
        h.sensor(ns(10.5), SensorKind::Hl, true);
        h.drain(ns(40.0));
        let gates = h.gates();
        let on_phases: std::collections::HashSet<usize> = gates
            .iter()
            .filter(|(_, _, pmos, value)| *pmos && *value)
            .map(|(_, phase, _, _)| *phase)
            .collect();
        assert_eq!(on_phases.len(), 4, "all phases drafted: {gates:?}");
    }

    #[test]
    fn token_moves_after_dwell() {
        let mut h = Harness::new(4);
        h.drain(ns(1.0));
        assert_eq!(h.ctrl.token_holder(), 0);
        h.sensor(ns(10.0), SensorKind::Uv, true);
        // Token must not move before the 250 ns dwell.
        h.drain(ns(200.0));
        assert_eq!(h.ctrl.token_holder(), 0);
        h.drain(ns(300.0));
        assert_eq!(h.ctrl.token_holder(), 1, "token moved after dwell");
        // UV persists: phase 1 charges too.
        h.drain(ns(320.0));
        let gates = h.gates();
        assert!(
            gates
                .iter()
                .any(|(_, phase, pmos, value)| *phase == 1 && *pmos && *value),
            "{gates:?}"
        );
    }

    #[test]
    fn ov_switches_references_and_sinks() {
        let mut h = Harness::new(2);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Ov, true);
        h.drain(ns(30.0));
        let ov_cmd = h
            .log
            .iter()
            .find(|c| c.command == Command::OvMode(true))
            .expect("OV mode command");
        let latency = ov_cmd.time.as_ns() - 10.0;
        assert!(latency < 1.0, "reference switch is fast: {latency}ns");
        // NMOS sinks.
        let gates = h.gates();
        assert!(
            gates
                .iter()
                .any(|(_, phase, pmos, value)| *phase == 0 && !*pmos && *value),
            "{gates:?}"
        );
        // OV clears: references restored.
        h.sensor(ns(100.0), SensorKind::Ov, false);
        h.drain(ns(120.0));
        assert!(h
            .log
            .iter()
            .any(|c| c.command == Command::OvMode(false)));
    }

    #[test]
    fn no_short_circuit_command_sequences() {
        // Sweep a busy scenario and check gp/gn are never both on
        // (after accounting for command ordering per phase).
        let mut h = Harness::new(2);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.sensor(ns(10.2), SensorKind::Hl, true);
        h.drain(ns(200.0));
        h.sensor(ns(200.0), SensorKind::Oc(0), true);
        h.sensor(ns(210.0), SensorKind::Oc(1), true);
        h.drain(ns(400.0));
        h.sensor(ns(400.0), SensorKind::Zc(0), true);
        h.drain(ns(600.0));
        let mut gp = [false; 2];
        let mut gn = [false; 2];
        for (t, phase, pmos, value) in h.gates() {
            if pmos {
                gp[phase] = value;
            } else {
                gn[phase] = value;
            }
            assert!(
                !(gp[phase] && gn[phase]),
                "short circuit on phase {phase} at {t}ns"
            );
        }
    }
}
