use a4a_sim::Time;

/// Control-policy timing shared by both controller styles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyTiming {
    /// Minimum PMOS on-time (`PMIN`, §II).
    pub pmin: Time,
    /// Minimum NMOS on-time (`NMIN`).
    pub nmin: Time,
    /// Extra PMOS on-time on the first charging cycle after UV (`PEXT`).
    pub pext: Time,
    /// Phase rotation period: the token-delay of the asynchronous ring,
    /// equal to the period of the synchronous design's `phase_clk`.
    pub activation_period: Time,
}

impl Default for PolicyTiming {
    fn default() -> Self {
        PolicyTiming {
            pmin: Time::from_ns(20.0),
            nmin: Time::from_ns(20.0),
            pext: Time::from_ns(40.0),
            activation_period: Time::from_ns(250.0),
        }
    }
}

/// Gate-driver characteristics (shared: the power stage is identical).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateTiming {
    /// Command-to-switch propagation of the gate driver.
    pub driver_delay: Time,
    /// Switch-to-acknowledge delay (threshold crossing detection,
    /// `V_pmos`/`V_nmos` of Figure 2a).
    pub ack_delay: Time,
}

impl Default for GateTiming {
    fn default() -> Self {
        GateTiming {
            driver_delay: Time::from_ns(1.0),
            ack_delay: Time::from_ns(1.5),
        }
    }
}

/// Parameters of the synchronous controller.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncParams {
    /// `fsm_clk` frequency in Hz (the paper sweeps 100 MHz–1 GHz).
    pub fsm_clk_hz: f64,
    /// Synchroniser depth (2 flops in the paper).
    pub sync_stages: u32,
    /// Metastability model for the first synchroniser flop: a marginal
    /// capture resolves to the old value with the model's probability,
    /// costing one extra clock period (the paper's "latency may increase
    /// by another clock period").
    pub meta: a4a_a2a::MetaParams,
    /// Policy timers.
    pub policy: PolicyTiming,
}

impl SyncParams {
    /// A controller clocked at `mhz` MHz with 2-flop synchronisers.
    ///
    /// # Panics
    ///
    /// Panics when `mhz` is NaN, infinite, or non-positive; see
    /// [`SyncParams::try_at_mhz`] for the fallible variant.
    pub fn at_mhz(mhz: f64) -> SyncParams {
        match Self::try_at_mhz(mhz) {
            Ok(p) => p,
            Err(e) => panic!("{e} (clock frequency must be positive)"),
        }
    }

    /// Fallible [`SyncParams::at_mhz`]: a NaN, infinite, or non-positive
    /// frequency is reported as
    /// [`SimError::InvalidParameter`](a4a_sim::SimError::InvalidParameter).
    pub fn try_at_mhz(mhz: f64) -> Result<SyncParams, a4a_sim::SimError> {
        if !(mhz.is_finite() && mhz > 0.0) {
            return Err(a4a_sim::SimError::InvalidParameter {
                what: "fsm_clk (MHz)",
                value: mhz,
            });
        }
        Ok(SyncParams {
            fsm_clk_hz: mhz * 1e6,
            sync_stages: 2,
            meta: a4a_a2a::MetaParams::disabled(),
            policy: PolicyTiming::default(),
        })
    }

    /// Enables the synchroniser metastability model.
    pub fn with_meta(mut self, meta: a4a_a2a::MetaParams) -> SyncParams {
        self.meta = meta;
        self
    }

    /// The clock period.
    pub fn period(&self) -> Time {
        Time::from_secs(1.0 / self.fsm_clk_hz)
    }

    /// The paper's nominal reaction latency: 2 periods of
    /// synchronisation plus half a period of FSM operation.
    pub fn nominal_latency(&self) -> Time {
        self.period() * u64::from(2 * self.sync_stages + 1) / 2
    }
}

impl Default for SyncParams {
    fn default() -> Self {
        SyncParams::at_mhz(333.0)
    }
}

/// Module decision delays of the asynchronous phase controller.
///
/// Defaults are calibrated to the input→gate-drive path delays measured
/// on the synthesised controller modules with the 90 nm-class library of
/// `a4a-netlist` — landing on the paper's Table I figures (HL 1.87 ns,
/// UV 1.02 ns, OV 1.18 ns, OC 0.75 ns, ZC 0.31 ns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncTiming {
    /// WAIT / WAIT2 / RWAIT latch decision.
    pub d_wait: Time,
    /// WAITX2 arbitration decision.
    pub d_waitx: Time,
    /// Opportunistic MERGE element.
    pub d_merge: Time,
    /// TOKEN_CTRL decision.
    pub d_token: Time,
    /// MODE_CTRL decision.
    pub d_mode: Time,
    /// CHARGE_CTRL step.
    pub d_charge: Time,
    /// PMOS/NMOS_DELAY_CTRL pass-through (after the timer expired).
    pub d_delay_ctrl: Time,
    /// Extra MODE_CTRL step when switching the sensor references for the
    /// OV mode.
    pub d_mode_switch: Time,
    /// Policy timers.
    pub policy: PolicyTiming,
}

impl Default for AsyncTiming {
    fn default() -> Self {
        AsyncTiming {
            d_wait: Time::from_ps(310.0),
            d_waitx: Time::from_ps(360.0),
            d_merge: Time::from_ps(270.0),
            d_token: Time::from_ps(270.0),
            d_mode: Time::from_ps(330.0),
            d_charge: Time::from_ps(330.0),
            d_delay_ctrl: Time::from_ps(220.0),
            d_mode_switch: Time::from_ps(160.0),
            policy: PolicyTiming::default(),
        }
    }
}

impl AsyncTiming {
    /// The nominal UV→`gp` reaction path (WAITX2 → MODE_CTRL →
    /// CHARGE_CTRL), Table I's UV column.
    pub fn uv_path(&self) -> Time {
        self.d_waitx + self.d_mode + self.d_charge
    }

    /// The nominal OV reaction path (UV path plus the reference switch).
    pub fn ov_path(&self) -> Time {
        self.uv_path() + self.d_mode_switch
    }

    /// The nominal OC→`gp-` path (WAIT2 → PMOS_DELAY_CTRL →
    /// CHARGE_CTRL).
    pub fn oc_path(&self) -> Time {
        self.d_wait + self.d_delay_ctrl * 2
    }

    /// The nominal ZC→`gn-` path (RWAIT pass-through).
    pub fn zc_path(&self) -> Time {
        self.d_wait
    }

    /// The nominal HL→`gp` path: WAIT → MERGE → TOKEN_CTRL activation,
    /// then the regular UV demand path (WAITX2 → MODE_CTRL →
    /// CHARGE_CTRL).
    pub fn hl_path(&self) -> Time {
        self.d_wait + self.d_merge + self.d_token + self.uv_path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_latency_is_two_and_a_half_periods() {
        let p = SyncParams::at_mhz(333.0);
        let t = p.nominal_latency();
        assert!((t.as_ns() - 7.5).abs() < 0.02, "{t}");
        let p = SyncParams::at_mhz(100.0);
        assert!((p.nominal_latency().as_ns() - 25.0).abs() < 0.01);
        let p = SyncParams::at_mhz(1000.0);
        assert!((p.nominal_latency().as_ns() - 2.5).abs() < 0.01);
    }

    #[test]
    fn async_paths_match_table1() {
        let t = AsyncTiming::default();
        assert!((t.uv_path().as_ns() - 1.02).abs() < 0.01, "{}", t.uv_path());
        assert!((t.ov_path().as_ns() - 1.18).abs() < 0.01);
        assert!((t.oc_path().as_ns() - 0.75).abs() < 0.01);
        assert!((t.zc_path().as_ns() - 0.31).abs() < 0.01);
        assert!((t.hl_path().as_ns() - 1.87).abs() < 0.01);
    }

    #[test]
    fn policy_defaults_sane() {
        let p = PolicyTiming::default();
        assert!(p.pext > p.pmin);
        assert!(p.activation_period > p.pext);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_rejected() {
        let _ = SyncParams::at_mhz(0.0);
    }

    #[test]
    fn try_at_mhz_rejects_nan_and_non_positive() {
        use a4a_sim::SimError;
        for bad in [f64::NAN, 0.0, -100.0, f64::INFINITY] {
            assert!(
                matches!(
                    SyncParams::try_at_mhz(bad),
                    Err(SimError::InvalidParameter {
                        what: "fsm_clk (MHz)",
                        ..
                    })
                ),
                "{bad} accepted"
            );
        }
        let p = SyncParams::try_at_mhz(333.0).unwrap();
        assert_eq!(p, SyncParams::at_mhz(333.0));
    }
}
