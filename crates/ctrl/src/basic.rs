//! The basic (single-phase) buck controller of Figure 2b.

use a4a_analog::SensorKind;
use a4a_sim::Time;

use crate::{AsyncTiming, BuckController, TimedCommand};

/// The basic buck controller: one phase, driven by UV/OC/ZC exactly as
/// the informal specification of Figure 2b describes —
///
/// * **no ZC**: UV → NMOS off, PMOS on; OC → PMOS off, NMOS on;
/// * **late ZC**: a ZC after the next UV changes nothing;
/// * **early ZC**: a ZC before the next UV turns the NMOS off and both
///   transistors stay off until UV.
///
/// Implemented as a one-stage instance of the asynchronous ring (a token
/// ring of length one degenerates into the basic controller; the HL/OV
/// machinery simply never triggers without those sensors).
///
/// # Examples
///
/// ```
/// use a4a_ctrl::{BasicBuckController, BuckController};
/// use a4a_analog::SensorKind;
/// use a4a_sim::Time;
///
/// let mut ctrl = BasicBuckController::new();
/// ctrl.on_wakeup(Time::from_ns(1.0));
/// ctrl.on_sensor(Time::from_ns(10.0), SensorKind::Uv, true);
/// ctrl.on_wakeup(Time::from_ns(20.0));
/// let cmds = ctrl.take_commands();
/// assert!(!cmds.is_empty(), "UV initiates the charging cycle");
/// ```
#[derive(Debug)]
pub struct BasicBuckController {
    inner: crate::AsyncController,
}

impl BasicBuckController {
    /// Creates the controller with default timing.
    pub fn new() -> Self {
        Self::with_timing(AsyncTiming::default())
    }

    /// Creates the controller with explicit timing.
    pub fn with_timing(timing: AsyncTiming) -> Self {
        BasicBuckController {
            inner: crate::AsyncController::new(1, timing),
        }
    }
}

impl Default for BasicBuckController {
    fn default() -> Self {
        Self::new()
    }
}

impl BuckController for BasicBuckController {
    fn phases(&self) -> usize {
        1
    }

    fn on_sensor(&mut self, t: Time, kind: SensorKind, value: bool) {
        self.inner.on_sensor(t, kind, value);
    }

    fn on_gate_ack(&mut self, t: Time, phase: usize, pmos: bool, value: bool) {
        self.inner.on_gate_ack(t, phase, pmos, value);
    }

    fn next_wakeup(&self) -> Option<Time> {
        self.inner.next_wakeup()
    }

    fn on_wakeup(&mut self, t: Time) {
        self.inner.on_wakeup(t);
    }

    fn take_commands(&mut self) -> Vec<TimedCommand> {
        self.inner.take_commands()
    }

    fn take_commands_into(&mut self, out: &mut Vec<TimedCommand>) {
        self.inner.take_commands_into(out);
    }

    // `debug_tracks_into` deliberately keeps the empty default: the
    // single-phase wrapper exposes no internal tracks (same behaviour
    // as the String-era `debug_tracks`).
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Command;

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    fn run_scenario(events: &[(f64, SensorKind, bool)]) -> Vec<(f64, bool, bool)> {
        let mut ctrl = BasicBuckController::new();
        let mut log: Vec<(f64, bool, bool)> = Vec::new();
        let mut acks: Vec<(Time, bool, bool)> = Vec::new();
        let ack_delay = Time::from_ns(2.0);
        let drive = |ctrl: &mut BasicBuckController,
                         log: &mut Vec<(f64, bool, bool)>,
                         acks: &mut Vec<(Time, bool, bool)>,
                         now: Time| {
            loop {
                acks.sort_by_key(|a| a.0);
                if let Some(&(t, pmos, v)) = acks.first() {
                    if t <= now {
                        acks.remove(0);
                        ctrl.on_gate_ack(t, 0, pmos, v);
                        continue;
                    }
                }
                match ctrl.next_wakeup() {
                    Some(w) if w <= now => {
                        ctrl.on_wakeup(w);
                        for cmd in ctrl.take_commands() {
                            if let Command::Gate { pmos, value, .. } = cmd.command {
                                log.push((cmd.time.as_ns(), pmos, value));
                                acks.push((cmd.time + ack_delay, pmos, value));
                            }
                        }
                    }
                    _ => break,
                }
            }
        };
        for &(t, kind, v) in events {
            drive(&mut ctrl, &mut log, &mut acks, ns(t));
            ctrl.on_sensor(ns(t), kind, v);
            for cmd in ctrl.take_commands() {
                if let Command::Gate { pmos, value, .. } = cmd.command {
                    log.push((cmd.time.as_ns(), pmos, value));
                    acks.push((cmd.time + ack_delay, pmos, value));
                }
            }
        }
        let last = events.last().map(|e| e.0).unwrap_or(0.0) + 500.0;
        drive(&mut ctrl, &mut log, &mut acks, ns(last));
        log.sort_by(|a, b| a.0.total_cmp(&b.0));
        log
    }

    #[test]
    fn no_zc_scenario() {
        // UV → PMOS on; OC → PMOS off, NMOS on; next UV → NMOS off,
        // PMOS on.
        let log = run_scenario(&[
            (10.0, SensorKind::Uv, true),
            (200.0, SensorKind::Uv, false),
            (300.0, SensorKind::Oc(0), true),
            (400.0, SensorKind::Oc(0), false),
            (600.0, SensorKind::Uv, true),
        ]);
        let gp_on: Vec<f64> = log
            .iter()
            .filter(|(_, pmos, v)| *pmos && *v)
            .map(|(t, _, _)| *t)
            .collect();
        assert_eq!(gp_on.len(), 2, "two charging cycles: {log:?}");
        let gn_on = log.iter().filter(|(_, pmos, v)| !*pmos && *v).count();
        assert_eq!(gn_on, 1, "NMOS on after the first OC: {log:?}");
    }

    #[test]
    fn early_zc_scenario() {
        // ZC before the next UV: both off until UV.
        let log = run_scenario(&[
            (10.0, SensorKind::Uv, true),
            (200.0, SensorKind::Uv, false),
            (300.0, SensorKind::Oc(0), true),
            (400.0, SensorKind::Oc(0), false),
            (500.0, SensorKind::Zc(0), true),
            (520.0, SensorKind::Zc(0), false),
            (800.0, SensorKind::Uv, true),
        ]);
        // gn- (ZC) must precede the second gp+.
        let gn_off = log
            .iter()
            .find(|(_, pmos, v)| !*pmos && !*v)
            .expect("gn- on ZC");
        let second_gp_on = log
            .iter()
            .filter(|(_, pmos, v)| *pmos && *v)
            .nth(1)
            .expect("second cycle");
        assert!(gn_off.0 < second_gp_on.0, "{log:?}");
        assert!(second_gp_on.0 >= 800.0, "idle until the UV: {log:?}");
    }

    #[test]
    fn late_zc_changes_nothing() {
        // UV arrives while NMOS still on: recharge via break-before-make
        // without waiting for ZC.
        let log = run_scenario(&[
            (10.0, SensorKind::Uv, true),
            (250.0, SensorKind::Uv, false),
            (300.0, SensorKind::Oc(0), true),
            (340.0, SensorKind::Oc(0), false),
            (700.0, SensorKind::Uv, true),
        ]);
        let gp_on: Vec<f64> = log
            .iter()
            .filter(|(_, pmos, v)| *pmos && *v)
            .map(|(t, _, _)| *t)
            .collect();
        assert_eq!(gp_on.len(), 2, "{log:?}");
        assert!(gp_on[1] >= 700.0, "{log:?}");
        // Order per phase is alternating and safe.
        let mut gp = false;
        let mut gn = false;
        for &(t, pmos, v) in &log {
            if pmos {
                gp = v;
            } else {
                gn = v;
            }
            assert!(!(gp && gn), "short at {t}");
        }
    }
}
