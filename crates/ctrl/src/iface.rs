use a4a_analog::{SensorKind, TrackId};
use a4a_sim::Time;

/// An action requested by a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Drive a power transistor of one phase (`pmos == true` selects the
    /// PMOS rail; `value` is the *on* state, so `gp`/`gn` in the paper's
    /// active-high convention).
    Gate {
        /// Target phase.
        phase: usize,
        /// `true` = PMOS (`gp`), `false` = NMOS (`gn`).
        pmos: bool,
        /// New on/off state.
        value: bool,
    },
    /// Switch the sensor bank's current references between normal and OV
    /// mode (§II: `I_max`/`I_0` vs `I_0`/`I_neg`).
    OvMode(bool),
}

/// A time-stamped [`Command`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedCommand {
    /// When the command leaves the controller (gate-driver delay not yet
    /// included).
    pub time: Time,
    /// The action.
    pub command: Command,
}

/// A digital buck controller as seen by the mixed-signal testbench.
///
/// The testbench delivers sensor events ([`BuckController::on_sensor`])
/// and gate acknowledgements ([`BuckController::on_gate_ack`]), advances
/// the controller's internal timers/clock ([`BuckController::on_wakeup`]
/// at [`BuckController::next_wakeup`] deadlines), and drains the
/// produced [`TimedCommand`]s after every interaction.
pub trait BuckController {
    /// Number of buck phases driven.
    fn phases(&self) -> usize;

    /// Delivers a sensor output change at its (sub-step interpolated)
    /// event time.
    fn on_sensor(&mut self, t: Time, kind: SensorKind, value: bool);

    /// Delivers a gate acknowledgement: the power transistor of `phase`
    /// crossed its threshold and is now on (`value == true`) or off.
    fn on_gate_ack(&mut self, t: Time, phase: usize, pmos: bool, value: bool);

    /// The controller's next internal deadline (clock edge or timer),
    /// if any.
    fn next_wakeup(&self) -> Option<Time>;

    /// Advances internal time to `t`, processing due clock edges and
    /// timers.
    fn on_wakeup(&mut self, t: Time);

    /// Drains the commands produced since the last call, in time order.
    fn take_commands(&mut self) -> Vec<TimedCommand>;

    /// Allocation-free [`BuckController::take_commands`]: appends the
    /// drained commands to `out` (in time order) so the co-simulation
    /// loop can reuse one buffer across windows. The default forwards
    /// to `take_commands`; controllers on the hot path should override
    /// it to drain their internal queue without an intermediate Vec.
    fn take_commands_into(&mut self, out: &mut Vec<TimedCommand>) {
        out.extend(self.take_commands());
    }

    /// Appends the controller's internal debug tracks for waveform
    /// recording (e.g. `act`, `get & !pass`) as interned-id/value
    /// pairs. Track names must be interned once at construction
    /// ([`TrackId::intern`]) so this per-window call never allocates.
    /// Default: none.
    fn debug_tracks_into(&self, _out: &mut Vec<(TrackId, bool)>) {}
}

impl<T: BuckController + ?Sized> BuckController for Box<T> {
    fn phases(&self) -> usize {
        (**self).phases()
    }

    fn on_sensor(&mut self, t: Time, kind: SensorKind, value: bool) {
        (**self).on_sensor(t, kind, value);
    }

    fn on_gate_ack(&mut self, t: Time, phase: usize, pmos: bool, value: bool) {
        (**self).on_gate_ack(t, phase, pmos, value);
    }

    fn next_wakeup(&self) -> Option<Time> {
        (**self).next_wakeup()
    }

    fn on_wakeup(&mut self, t: Time) {
        (**self).on_wakeup(t);
    }

    fn take_commands(&mut self) -> Vec<TimedCommand> {
        (**self).take_commands()
    }

    fn take_commands_into(&mut self, out: &mut Vec<TimedCommand>) {
        (**self).take_commands_into(out);
    }

    fn debug_tracks_into(&self, out: &mut Vec<(TrackId, bool)>) {
        (**self).debug_tracks_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_equality() {
        let a = Command::Gate {
            phase: 1,
            pmos: true,
            value: true,
        };
        assert_eq!(
            a,
            Command::Gate {
                phase: 1,
                pmos: true,
                value: true
            }
        );
        assert_ne!(a, Command::OvMode(true));
    }

    #[test]
    fn timed_command_carries_time() {
        let tc = TimedCommand {
            time: Time::from_ns(3.0),
            command: Command::OvMode(false),
        };
        assert_eq!(tc.time, Time::from_ns(3.0));
    }
}
