//! The conventional synchronous controller (Figure 5a).
//!
//! Every asynchronous input — the five sensor conditions and the gate
//! acknowledges — passes through a 2-flop synchroniser clocked by the
//! fast `fsm_clk`; the per-phase FSMs are clocked by the same clock and
//! register their outputs on the opposite edge (+½ period). A slow
//! `phase_clk` (one pulse per [`crate::PolicyTiming::activation_period`])
//! rotates the round-robin phase activator. The control policy is
//! identical to the asynchronous ring — only the *when* differs: every
//! decision pays the sample-and-synchronise latency of ~2.5–3.5 clock
//! periods, and an unserved activation pulse is simply lost when the
//! activator moves on.

use a4a_analog::{SensorKind, TrackId};
use a4a_sim::Time;

use crate::{BuckController, Command, SyncParams, TimedCommand};

/// Internal alias module so the synchroniser signature stays short.
mod a4a_a2a_meta {
    pub use a4a_a2a::MetaState;
}

/// Charging state of one phase FSM (mirrors the asynchronous states).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PState {
    Idle,
    TurnPmosOn,
    PmosOn,
    TurnPmosOff,
    TurnNmosOn,
    NmosOn,
    TurnNmosOff { recharge: bool },
}

/// A 2-flop synchroniser pipeline for one asynchronous input bit.
#[derive(Debug, Clone)]
struct Synchroniser {
    raw: bool,
    /// The raw value at the previous clock edge; a difference marks a
    /// marginal (metastability-prone) capture window.
    prev_raw: bool,
    stages: Vec<bool>,
}

impl Synchroniser {
    fn new(depth: u32) -> Synchroniser {
        Synchroniser {
            raw: false,
            prev_raw: false,
            stages: vec![false; depth as usize],
        }
    }

    /// Samples the raw input on a clock edge, shifting the pipeline.
    /// A marginal capture (the raw value changed since the last edge)
    /// may go metastable and resolve to the *old* value, costing one
    /// extra period — the paper's footnote 1.
    fn clock(&mut self, meta: &mut Option<a4a_a2a_meta::MetaState>) {
        for i in (1..self.stages.len()).rev() {
            self.stages[i] = self.stages[i - 1];
        }
        let marginal = self.raw != self.prev_raw;
        self.prev_raw = self.raw;
        if let Some(first) = self.stages.first_mut() {
            let mut captured = self.raw;
            if marginal && captured != *first {
                if let Some(state) = meta {
                    if state.resolution_delay() > a4a_sim::Time::ZERO {
                        captured = *first; // resolved the wrong way
                    }
                }
            }
            *first = captured;
        }
    }

    /// The synchronised value visible to the FSM.
    fn out(&self) -> bool {
        *self.stages.last().unwrap_or(&self.raw)
    }
}

#[derive(Debug, Clone)]
struct Phase {
    state: PState,
    armed: bool,
    recharge_queued: bool,
    gp: bool,
    gn: bool,
    pmos_min_until: Time,
    nmos_min_until: Time,
    first_cycle: bool,
    gp_ack: Synchroniser,
    gn_ack: Synchroniser,
    oc: Synchroniser,
    zc: Synchroniser,
}

impl Phase {
    fn new(depth: u32) -> Phase {
        Phase {
            state: PState::Idle,
            armed: false,
            recharge_queued: false,
            gp: false,
            gn: false,
            pmos_min_until: Time::ZERO,
            nmos_min_until: Time::ZERO,
            first_cycle: true,
            gp_ack: Synchroniser::new(depth),
            gn_ack: Synchroniser::new(depth),
            oc: Synchroniser::new(depth),
            zc: Synchroniser::new(depth),
        }
    }
}

/// The synchronous round-robin multiphase buck controller.
///
/// # Examples
///
/// ```
/// use a4a_ctrl::{BuckController, SyncController, SyncParams};
/// use a4a_sim::Time;
///
/// let mut ctrl = SyncController::new(4, SyncParams::at_mhz(333.0));
/// // The controller only acts on clock edges.
/// let first_edge = ctrl.next_wakeup().expect("clocked");
/// assert_eq!(first_edge, ctrl.params().period());
/// ctrl.on_wakeup(first_edge);
/// assert!(ctrl.take_commands().is_empty(), "nothing to do yet");
/// ```
#[derive(Debug)]
pub struct SyncController {
    params: SyncParams,
    phases: Vec<Phase>,
    hl: Synchroniser,
    uv: Synchroniser,
    ov: Synchroniser,
    /// Rising edge of the synchronised HL (to draft all phases once).
    hl_prev: bool,
    uv_prev: bool,
    next_edge: Time,
    /// Clock edges until the next phase-activator pulse.
    act_divider: u64,
    act_reload: u64,
    act_pointer: usize,
    ov_mode: bool,
    meta: Option<a4a_a2a_meta::MetaState>,
    out: Vec<TimedCommand>,
    /// Interned name of the `act` debug track.
    track_act: TrackId,
}

impl SyncController {
    /// Creates the controller for `phases` buck phases.
    ///
    /// # Panics
    ///
    /// Panics when `phases` is zero.
    pub fn new(phases: usize, params: SyncParams) -> Self {
        assert!(phases > 0, "at least one phase required");
        let period = params.period();
        let reload = (params.policy.activation_period.as_fs() + period.as_fs() - 1)
            / period.as_fs().max(1);
        let mut phase_vec: Vec<Phase> =
            (0..phases).map(|_| Phase::new(params.sync_stages)).collect();
        // Phase 0 starts active (mirrors the token starting at stage 0).
        phase_vec[0].armed = true;
        SyncController {
            phases: phase_vec,
            hl: Synchroniser::new(params.sync_stages),
            uv: Synchroniser::new(params.sync_stages),
            ov: Synchroniser::new(params.sync_stages),
            hl_prev: false,
            uv_prev: false,
            next_edge: period,
            act_divider: reload.max(1),
            act_reload: reload.max(1),
            act_pointer: 0,
            ov_mode: false,
            meta: if params.meta.probability > 0.0 {
                Some(params.meta.clone().into_state())
            } else {
                None
            },
            out: Vec::new(),
            track_act: TrackId::intern("act"),
            params,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &SyncParams {
        &self.params
    }

    /// The phase currently selected by the round-robin activator.
    pub fn active_phase(&self) -> usize {
        self.act_pointer
    }

    /// Emits a command at the output-register instant (edge + ½ period).
    fn emit(&mut self, edge: Time, command: Command) {
        self.out.push(TimedCommand {
            time: edge + self.params.period() / 2,
            command,
        });
    }

    fn clock_edge(&mut self, t: Time) {
        // 1. Synchronisers sample.
        self.hl.clock(&mut self.meta);
        self.uv.clock(&mut self.meta);
        self.ov.clock(&mut self.meta);
        for p in &mut self.phases {
            p.gp_ack.clock(&mut self.meta);
            p.gn_ack.clock(&mut self.meta);
            p.oc.clock(&mut self.meta);
            p.zc.clock(&mut self.meta);
        }
        let hl = self.hl.out();
        let uv = self.uv.out();
        let ov = self.ov.out();

        // 2. Phase activator (divided clock).
        self.act_divider -= 1;
        if self.act_divider == 0 {
            self.act_divider = self.act_reload;
            // The pulse moves on: an unconsumed arming is lost.
            self.phases[self.act_pointer].armed = false;
            self.act_pointer = (self.act_pointer + 1) % self.phases.len();
            self.phases[self.act_pointer].armed = true;
        }
        // HL drafts every phase.
        if hl && !self.hl_prev {
            for p in &mut self.phases {
                p.armed = true;
            }
        }
        self.hl_prev = hl;
        if uv && !self.uv_prev {
            for p in &mut self.phases {
                p.first_cycle = true;
            }
        }
        self.uv_prev = uv;

        // 3. OV mode register.
        if ov && !self.ov_mode {
            self.ov_mode = true;
            self.emit(t, Command::OvMode(true));
        } else if !ov && self.ov_mode {
            self.ov_mode = false;
            self.emit(t, Command::OvMode(false));
        }

        // 4. Per-phase FSMs.
        for k in 0..self.phases.len() {
            self.step_phase(t, k, uv, ov);
        }
    }

    fn step_phase(&mut self, t: Time, k: usize, uv: bool, ov: bool) {
        let (state, armed) = (self.phases[k].state, self.phases[k].armed);
        match state {
            PState::Idle => {
                if armed && ov {
                    // OV sinking: NMOS on until the (re-referenced) ZC.
                    self.phases[k].armed = false;
                    self.phases[k].state = PState::TurnNmosOn;
                    self.phases[k].gn = true;
                    self.emit(
                        t,
                        Command::Gate {
                            phase: k,
                            pmos: false,
                            value: true,
                        },
                    );
                } else if armed && uv {
                    self.phases[k].armed = false;
                    self.phases[k].state = PState::TurnPmosOn;
                    self.phases[k].gp = true;
                    self.emit(
                        t,
                        Command::Gate {
                            phase: k,
                            pmos: true,
                            value: true,
                        },
                    );
                }
            }
            PState::TurnPmosOn => {
                if self.phases[k].gp_ack.out() {
                    let ext = if self.phases[k].first_cycle {
                        self.phases[k].first_cycle = false;
                        self.params.policy.pext
                    } else {
                        Time::ZERO
                    };
                    self.phases[k].state = PState::PmosOn;
                    self.phases[k].pmos_min_until = t + self.params.policy.pmin + ext;
                }
            }
            PState::PmosOn => {
                if self.phases[k].oc.out() && t >= self.phases[k].pmos_min_until {
                    self.phases[k].state = PState::TurnPmosOff;
                    self.phases[k].gp = false;
                    self.emit(
                        t,
                        Command::Gate {
                            phase: k,
                            pmos: true,
                            value: false,
                        },
                    );
                }
            }
            PState::TurnPmosOff => {
                if !self.phases[k].gp_ack.out() {
                    self.phases[k].state = PState::TurnNmosOn;
                    self.phases[k].gn = true;
                    self.emit(
                        t,
                        Command::Gate {
                            phase: k,
                            pmos: false,
                            value: true,
                        },
                    );
                }
            }
            PState::TurnNmosOn => {
                if self.phases[k].gn_ack.out() {
                    self.phases[k].state = PState::NmosOn;
                    self.phases[k].nmos_min_until = t + self.params.policy.nmin;
                }
            }
            PState::NmosOn => {
                // Late/no-ZC scenario of Figure 2b: while (synchronised)
                // UV is asserted, charging chains without a new arming —
                // but only once the OC condition has released (the WAIT2
                // discipline), which bounds the peak current.
                if uv && !self.phases[k].oc.out() && t >= self.phases[k].nmos_min_until {
                    self.phases[k].state = PState::TurnNmosOff { recharge: true };
                    self.phases[k].gn = false;
                    self.emit(
                        t,
                        Command::Gate {
                            phase: k,
                            pmos: false,
                            value: false,
                        },
                    );
                } else if self.phases[k].zc.out() && t >= self.phases[k].nmos_min_until {
                    self.phases[k].state = PState::TurnNmosOff { recharge: false };
                    self.phases[k].gn = false;
                    self.emit(
                        t,
                        Command::Gate {
                            phase: k,
                            pmos: false,
                            value: false,
                        },
                    );
                }
            }
            PState::TurnNmosOff { recharge } => {
                if !self.phases[k].gn_ack.out() {
                    let recharge = recharge || self.phases[k].recharge_queued;
                    self.phases[k].recharge_queued = false;
                    if recharge {
                        self.phases[k].state = PState::TurnPmosOn;
                        self.phases[k].gp = true;
                        self.emit(
                            t,
                            Command::Gate {
                                phase: k,
                                pmos: true,
                                value: true,
                            },
                        );
                    } else {
                        self.phases[k].state = PState::Idle;
                    }
                }
            }
        }
    }
}

impl BuckController for SyncController {
    fn phases(&self) -> usize {
        self.phases.len()
    }

    fn on_sensor(&mut self, _t: Time, kind: SensorKind, value: bool) {
        match kind {
            SensorKind::Hl => self.hl.raw = value,
            SensorKind::Uv => self.uv.raw = value,
            SensorKind::Ov => self.ov.raw = value,
            SensorKind::Oc(k) => {
                if k < self.phases.len() {
                    self.phases[k].oc.raw = value;
                }
            }
            SensorKind::Zc(k) => {
                if k < self.phases.len() {
                    self.phases[k].zc.raw = value;
                }
            }
        }
    }

    fn on_gate_ack(&mut self, _t: Time, phase: usize, pmos: bool, value: bool) {
        if pmos {
            self.phases[phase].gp_ack.raw = value;
        } else {
            self.phases[phase].gn_ack.raw = value;
        }
    }

    fn next_wakeup(&self) -> Option<Time> {
        Some(self.next_edge)
    }

    fn on_wakeup(&mut self, t: Time) {
        while self.next_edge <= t {
            let edge = self.next_edge;
            self.next_edge += self.params.period();
            self.clock_edge(edge);
        }
    }

    fn take_commands(&mut self) -> Vec<TimedCommand> {
        let mut cmds = std::mem::take(&mut self.out);
        cmds.sort_by_key(|c| c.time);
        cmds
    }

    fn take_commands_into(&mut self, out: &mut Vec<TimedCommand>) {
        let start = out.len();
        out.append(&mut self.out);
        out[start..].sort_by_key(|c| c.time);
    }

    fn debug_tracks_into(&self, out: &mut Vec<(TrackId, bool)>) {
        out.push((self.track_act, self.phases[self.act_pointer].armed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    struct Harness {
        ctrl: SyncController,
        acks: Vec<(Time, usize, bool, bool)>,
        log: Vec<TimedCommand>,
        ack_delay: Time,
    }

    impl Harness {
        fn new(phases: usize, mhz: f64) -> Harness {
            Harness {
                ctrl: SyncController::new(phases, SyncParams::at_mhz(mhz)),
                acks: Vec::new(),
                log: Vec::new(),
                ack_delay: Time::from_ns(2.5),
            }
        }

        fn drain(&mut self, now: Time) {
            loop {
                self.acks.sort_by_key(|a| a.0);
                let next_ack = self.acks.first().map(|a| a.0);
                let next_edge = self.ctrl.next_wakeup();
                match (next_ack, next_edge) {
                    (Some(ta), _) if ta <= now && next_edge.map(|te| ta <= te).unwrap_or(true) => {
                        let (t, phase, pmos, value) = self.acks.remove(0);
                        self.ctrl.on_gate_ack(t, phase, pmos, value);
                    }
                    (_, Some(te)) if te <= now => {
                        self.ctrl.on_wakeup(te);
                        for cmd in self.ctrl.take_commands() {
                            self.log.push(cmd);
                            if let Command::Gate { phase, pmos, value } = cmd.command {
                                self.acks.push((cmd.time + self.ack_delay, phase, pmos, value));
                            }
                        }
                    }
                    _ => break,
                }
            }
        }

        fn sensor(&mut self, t: Time, kind: SensorKind, v: bool) {
            self.drain(t);
            self.ctrl.on_sensor(t, kind, v);
        }

        fn gates(&self) -> Vec<(f64, usize, bool, bool)> {
            self.log
                .iter()
                .filter_map(|c| match c.command {
                    Command::Gate { phase, pmos, value } => {
                        Some((c.time.as_ns(), phase, pmos, value))
                    }
                    _ => None,
                })
                .collect()
        }
    }

    #[test]
    fn uv_reaction_is_sampled_and_synchronised() {
        // 100 MHz: period 10 ns. The phase must be armed by the
        // activator first (first pulse after 25 edges = 250 ns).
        let mut h = Harness::new(2, 100.0);
        h.drain(ns(260.0));
        h.sensor(ns(262.0), SensorKind::Uv, true);
        h.drain(ns(400.0));
        let gates = h.gates();
        let first = gates.iter().find(|(_, _, pmos, v)| *pmos && *v).unwrap();
        let latency = first.0 - 262.0;
        assert!(
            (23.0..=43.0).contains(&latency),
            "expected ~2.5-3.5 periods + sampling, got {latency}ns ({gates:?})"
        );
    }

    #[test]
    fn faster_clock_reacts_faster() {
        let measure = |mhz: f64| -> f64 {
            let mut h = Harness::new(2, mhz);
            h.drain(ns(260.0));
            h.sensor(ns(262.0), SensorKind::Uv, true);
            h.drain(ns(500.0));
            let gates = h.gates();
            gates
                .iter()
                .find(|(_, _, pmos, v)| *pmos && *v)
                .map(|g| g.0 - 262.0)
                .unwrap_or(f64::INFINITY)
        };
        let slow = measure(100.0);
        let fast = measure(1000.0);
        assert!(slow > fast, "{slow} vs {fast}");
        assert!(fast < 5.0, "1 GHz reacts within a few ns: {fast}");
        assert!(slow > 20.0, "100 MHz pays tens of ns: {slow}");
    }

    #[test]
    fn activation_pulse_rotates_and_expires() {
        let mut h = Harness::new(4, 100.0);
        h.drain(ns(240.0));
        assert_eq!(h.ctrl.active_phase(), 0);
        h.drain(ns(260.0));
        assert_eq!(h.ctrl.active_phase(), 1, "pointer rotates");
        h.drain(ns(510.0));
        assert_eq!(h.ctrl.active_phase(), 2);
        // No UV happened: no commands.
        assert!(h.gates().is_empty());
    }

    #[test]
    fn hl_drafts_all_phases() {
        let mut h = Harness::new(4, 333.0);
        h.drain(ns(10.0));
        h.sensor(ns(20.0), SensorKind::Uv, true);
        h.sensor(ns(20.1), SensorKind::Hl, true);
        h.drain(ns(100.0));
        let phases: std::collections::HashSet<usize> = h
            .gates()
            .iter()
            .filter(|(_, _, pmos, v)| *pmos && *v)
            .map(|(_, k, _, _)| *k)
            .collect();
        assert_eq!(phases.len(), 4, "{:?}", h.gates());
    }

    #[test]
    fn full_cycle_with_oc_and_zc() {
        let mut h = Harness::new(1, 333.0);
        h.drain(ns(10.0));
        h.sensor(ns(20.0), SensorKind::Hl, true);
        h.sensor(ns(20.0), SensorKind::Uv, true);
        h.drain(ns(60.0));
        // PMOS on; wait past PEXT, then OC. UV clears so the NMOS
        // phase is not taken over by a recharge.
        h.sensor(ns(400.0), SensorKind::Oc(0), true);
        h.sensor(ns(430.0), SensorKind::Uv, false);
        h.drain(ns(500.0));
        let gates = h.gates();
        assert!(
            gates.iter().any(|(_, _, pmos, v)| *pmos && !*v),
            "gp- after OC: {gates:?}"
        );
        assert!(
            gates.iter().any(|(_, _, pmos, v)| !*pmos && *v),
            "gn+ after gp-: {gates:?}"
        );
        h.sensor(ns(500.0), SensorKind::Oc(0), false);
        h.sensor(ns(600.0), SensorKind::Zc(0), true);
        h.drain(ns(700.0));
        let gates = h.gates();
        assert!(
            gates.iter().any(|(t, _, pmos, v)| !*pmos && !*v && *t > 600.0),
            "gn- after ZC: {gates:?}"
        );
    }

    #[test]
    fn break_before_make_respects_acks() {
        let mut h = Harness::new(1, 333.0);
        h.drain(ns(10.0));
        h.sensor(ns(20.0), SensorKind::Hl, true);
        h.sensor(ns(20.0), SensorKind::Uv, true);
        h.drain(ns(1000.0));
        h.sensor(ns(1000.0), SensorKind::Oc(0), true);
        h.drain(ns(1200.0));
        let gates = h.gates();
        let gp_off = gates
            .iter()
            .find(|(_, _, pmos, v)| *pmos && !*v)
            .expect("gp-");
        let gn_on = gates
            .iter()
            .find(|(_, _, pmos, v)| !*pmos && *v)
            .expect("gn+");
        // gn+ must come after gp- plus the ack round trip (2.5 ns) plus
        // synchronisation of the ack.
        assert!(gn_on.0 > gp_off.0 + 2.5, "{gates:?}");
    }

    #[test]
    fn ov_mode_commands_emitted() {
        let mut h = Harness::new(2, 333.0);
        h.drain(ns(300.0));
        h.sensor(ns(300.0), SensorKind::Ov, true);
        h.drain(ns(400.0));
        assert!(h.log.iter().any(|c| c.command == Command::OvMode(true)));
        h.sensor(ns(500.0), SensorKind::Ov, false);
        h.drain(ns(600.0));
        assert!(h.log.iter().any(|c| c.command == Command::OvMode(false)));
    }

    #[test]
    fn metastability_adds_cycles() {
        // With p=1 every marginal capture resolves the wrong way first,
        // costing exactly one extra period per synchroniser stage entry.
        let measure = |meta: a4a_a2a::MetaParams| -> f64 {
            let params = SyncParams::at_mhz(100.0).with_meta(meta);
            let mut h = Harness {
                ctrl: SyncController::new(2, params),
                acks: Vec::new(),
                log: Vec::new(),
                ack_delay: Time::from_ns(2.5),
            };
            h.drain(ns(260.0));
            h.sensor(ns(262.0), SensorKind::Uv, true);
            h.drain(ns(500.0));
            h.gates()
                .iter()
                .find(|(_, _, pmos, v)| *pmos && *v)
                .map(|g| g.0 - 262.0)
                .unwrap_or(f64::NAN)
        };
        let clean = measure(a4a_a2a::MetaParams::disabled());
        let meta = measure(a4a_a2a::MetaParams::with_seed(
            1.0,
            Time::from_ns(1.0),
            3,
        ));
        assert!(
            meta >= clean + 9.0,
            "metastable capture must cost at least a period: {clean} vs {meta}"
        );
    }

    #[test]
    fn no_short_circuit_in_sync_commands() {
        let mut h = Harness::new(2, 666.0);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.sensor(ns(10.2), SensorKind::Hl, true);
        h.drain(ns(300.0));
        h.sensor(ns(300.0), SensorKind::Oc(0), true);
        h.drain(ns(400.0));
        h.sensor(ns(400.0), SensorKind::Zc(0), true);
        h.drain(ns(800.0));
        let mut gp = [false; 2];
        let mut gn = [false; 2];
        for (t, phase, pmos, value) in h.gates() {
            if pmos {
                gp[phase] = value;
            } else {
                gn[phase] = value;
            }
            assert!(!(gp[phase] && gn[phase]), "short at {t}ns phase {phase}");
        }
    }
}
