//! The multiphase buck controllers of the paper (§IV).
//!
//! Two functionally equivalent controllers drive the same control policy
//! (charge the active phase on UV, sink energy on OV, draft every phase
//! on HL, respect PMIN/NMIN/PEXT minimum on-times, and never short the
//! half-bridge):
//!
//! * [`SyncController`] — the conventional design: a fast `fsm_clk`
//!   samples every sensor through 2-flop synchronisers and clocks the
//!   per-phase FSMs; a slow `phase_clk` rotates the round-robin phase
//!   activator (Figure 5a). Every control decision pays the sampling +
//!   synchronisation latency of ~2.5–3.5 clock periods.
//! * [`AsyncController`] — the A4A design: a token ring of identical
//!   phase controllers (Figure 5b/5c) whose sensor front-ends are the
//!   A2A elements of [`a4a_a2a`] (WAIT for HL, WAITX2 for UV/OV, WAIT2
//!   for OC, RWAIT for ZC, WAIT01 for the first-cycle PEXT extension).
//!   Reactions are path-dependent and take nanoseconds.
//! * [`BasicBuckController`] — the single-phase controller of Figure 2b,
//!   used by the quickstart example.
//!
//! The module-level STG specifications (DECOUPLER, MERGE, TOKEN_CTRL,
//! MODE_CTRL, CHARGE_CTRL, the delay controllers) live in [`stgs`] and
//! are synthesised and verified by the workspace integration tests.
//!
//! Controllers implement [`BuckController`], the interface consumed by
//! the mixed-signal testbench in the `a4a` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod basic;
mod iface;
mod params;
mod ring;
pub mod stgs;
mod sync;

pub use basic::BasicBuckController;
pub use iface::{BuckController, Command, TimedCommand};
pub use params::{AsyncTiming, GateTiming, PolicyTiming, SyncParams};
pub use ring::AsyncController;
pub use sync::SyncController;
