//! STG specifications of the controller modules (§IV, Figure 5c).
//!
//! These are the formal models that the A4A flow synthesises and
//! verifies; the behavioural controllers in this crate implement the
//! same protocols with calibrated module delays. Handshake naming
//! follows the paper: requests start with `r`, acknowledgements with
//! `a`; the second letter refines the role (`i`/`o` input/output
//! channels, `d` timer interfaces, `p`/`n` the PMOS/NMOS transistors).
//!
//! Every specification here is consistent, deadlock-free and
//! output-persistent; all are synthesisable (exercised in the workspace
//! integration tests), and the basic buck controller STG additionally
//! satisfies the PMOS/NMOS mutual-exclusion property.

use a4a_stg::{Stg, StgBuilder};

/// The basic buck controller STG (Figure 2b), covering the *no ZC*,
/// *late ZC* and *early ZC* scenarios as a free input choice after the
/// NMOS phase begins.
///
/// Signals: `uv`, `oc`, `zc`, `gp_ack`, `gn_ack` are inputs; `gp`, `gn`
/// outputs. The initial state is "UV just detected, both transistors
/// off".
pub fn basic_buck_stg() -> Stg {
    let mut b = StgBuilder::new("basic_buck");
    let uv = b.input("uv", true);
    let oc = b.input("oc", false);
    let zc = b.input("zc", false);
    let gpa = b.input("gp_ack", false);
    let gna = b.input("gn_ack", false);
    let gp = b.output("gp", false);
    let gn = b.output("gn", false);

    let gpp = b.rise(gp);
    let gpap = b.rise(gpa);
    let uvm = b.fall(uv);
    let ocp = b.rise(oc);
    let gpm = b.fall(gp);
    let gpam = b.fall(gpa);
    let gnp = b.rise(gn);
    let gnap = b.rise(gna);
    let ocm = b.fall(oc);
    // Early-ZC path.
    let zcp = b.rise(zc);
    let gnm = b.fall(gn);
    let gnam = b.fall(gna);
    let zcm = b.fall(zc);
    let uvp = b.rise(uv);
    // Late/no-ZC path.
    let uvp2 = b.rise(uv);
    let gnm2 = b.fall(gn);
    let gnam2 = b.fall(gna);

    // Charging: PMOS on until OC, voltage recovers (uv-) meanwhile.
    b.connect(gpp, gpap);
    b.connect(gpap, uvm);
    b.connect(gpap, ocp);
    b.connect(ocp, gpm);
    b.connect(gpm, gpam);
    // Break before make: NMOS waits for the PMOS ack and the UV release.
    b.connect(gpam, gnp);
    b.connect(uvm, gnp);
    b.connect(gnp, gnap);
    // The current falls below I_max only once the NMOS conducts.
    b.connect(gnap, ocm);
    // Choice: early ZC or the next UV.
    let choice = b.place("choice");
    b.arc_tp(ocm, choice);
    b.arc_pt(choice, zcp);
    b.arc_pt(choice, uvp2);
    // Early ZC: both off, wait for UV.
    b.connect(zcp, gnm);
    b.connect(gnm, gnam);
    b.connect(gnam, zcm);
    b.connect(zcm, uvp);
    // Late/no ZC: UV takes over, NMOS hands off to PMOS.
    b.connect(uvp2, gnm2);
    b.connect(gnm2, gnam2);
    // uv- enables exactly one next uv+ occurrence.
    let uv_free = b.place("uv_free");
    b.arc_tp(uvm, uv_free);
    b.arc_pt(uv_free, uvp);
    b.arc_pt(uv_free, uvp2);
    // Merge: either completion re-starts the charging cycle.
    let merge = b.place_with_tokens("merge", 1);
    b.arc_tp(uvp, merge);
    b.arc_tp(gnam2, merge);
    b.arc_pt(merge, gpp);
    b.build()
}

/// DECOUPLER: a token-pipeline stage between `get` (from the previous
/// stage) and `pass` (to the next stage).
pub fn decoupler_stg() -> Stg {
    decoupler_named("get", "get_ack", "pass", "pass_ack", false)
}

/// A DECOUPLER stage with custom channel names, for assembling token
/// rings by parallel composition. When `holding` the stage starts *with*
/// the token (its internal latch set, about to issue `pass`); otherwise
/// it starts waiting for `get`.
pub fn decoupler_named(
    get: &str,
    get_ack: &str,
    pass: &str,
    pass_ack: &str,
    holding: bool,
) -> Stg {
    let mut b = StgBuilder::new(format!("decoupler_{get}_{pass}"));
    let g = b.input(get, false);
    let pa = b.input(pass_ack, false);
    let ga = b.output(get_ack, false);
    let p = b.output(pass, false);
    let tok = b.internal(format!("tok_{pass}"), holding);

    let gp = b.rise(g);
    let gap = b.rise(ga);
    let tokp = b.rise(tok);
    let gm = b.fall(g);
    let gam = b.fall(ga);
    let pp = b.rise(p);
    let pap = b.rise(pa);
    let tokm = b.fall(tok);
    let pm = b.fall(p);
    let pam = b.fall(pa);

    if holding {
        b.connect(pam, gp);
    } else {
        b.connect_marked(pam, gp);
    }
    b.connect(gp, gap);
    b.connect(gap, tokp);
    b.connect(tokp, gm);
    b.connect(gm, gam);
    if holding {
        b.connect_marked(gam, pp);
    } else {
        b.connect(gam, pp);
    }
    b.connect(pp, pap);
    b.connect(pap, tokm);
    b.connect(tokm, pm);
    b.connect(pm, pam);
    b.build()
}

/// A closed token ring of two DECOUPLER stages (the circulation skeleton
/// of Figure 5b): stage 0 starts holding the token. The composition
/// closes every channel, so all signals become internal and exactly one
/// token circulates forever.
///
/// # Panics
///
/// Panics if the composition fails (the channel kinds are complementary
/// by construction).
pub fn token_ring_stg() -> Stg {
    let stage0 = decoupler_named("c10", "a10", "c01", "a01", true);
    let stage1 = decoupler_named("c01", "a01", "c10", "a10", false);
    let mut ring = stage0
        .compose(&stage1)
        .expect("complementary ring channels");
    for name in ["c01", "a01", "c10", "a10"] {
        let id = ring.signal_by_name(name).expect(name);
        ring = ring.hide(id);
    }
    ring
}

/// MERGE: the opportunistic-merge element joining the token path and the
/// HL path into one activation channel (inputs `r1`, `r2`, downstream
/// acknowledge `ai`; outputs per-requester acknowledges `a1`, `a2` and
/// the merged request `ro`).
pub fn merge_stg() -> Stg {
    let mut b = StgBuilder::new("merge");
    let r1 = b.input("r1", false);
    let r2 = b.input("r2", false);
    let ai = b.input("ai", false);
    let a1 = b.output("a1", false);
    let a2 = b.output("a2", false);
    let ro = b.output("ro", false);

    let r1p = b.rise(r1);
    let rop1 = b.rise(ro);
    let aip1 = b.rise(ai);
    let a1p = b.rise(a1);
    let r1m = b.fall(r1);
    let rom1 = b.fall(ro);
    let aim1 = b.fall(ai);
    let a1m = b.fall(a1);

    let r2p = b.rise(r2);
    let rop2 = b.rise(ro);
    let aip2 = b.rise(ai);
    let a2p = b.rise(a2);
    let r2m = b.fall(r2);
    let rom2 = b.fall(ro);
    let aim2 = b.fall(ai);
    let a2m = b.fall(a2);

    let choice = b.place_with_tokens("choice", 1);
    b.arc_pt(choice, r1p);
    b.arc_pt(choice, r2p);
    // Channel 1 cycle.
    b.connect(r1p, rop1);
    b.connect(rop1, aip1);
    b.connect(aip1, a1p);
    b.connect(a1p, r1m);
    b.connect(r1m, rom1);
    b.connect(rom1, aim1);
    b.connect(aim1, a1m);
    b.arc_tp(a1m, choice);
    // Channel 2 cycle.
    b.connect(r2p, rop2);
    b.connect(rop2, aip2);
    b.connect(aip2, a2p);
    b.connect(a2p, r2m);
    b.connect(r2m, rom2);
    b.connect(rom2, aim2);
    b.connect(aim2, a2m);
    b.arc_tp(a2m, choice);
    b.build()
}

/// TOKEN_CTRL: on activation (`ri`), starts the TOKEN_TIMER (`rd`/`ad`)
/// and MODE_CTRL (`rm`/`am`) concurrently; acknowledges (`ao`, i.e.
/// passes the token on) once both complete.
pub fn token_ctrl_stg() -> Stg {
    let mut b = StgBuilder::new("token_ctrl");
    let ri = b.input("ri", false);
    let ad = b.input("ad", false);
    let am = b.input("am", false);
    let rd = b.output("rd", false);
    let rm = b.output("rm", false);
    let ao = b.output("ao", false);

    let rip = b.rise(ri);
    let rdp = b.rise(rd);
    let rmp = b.rise(rm);
    let adp = b.rise(ad);
    let amp = b.rise(am);
    let aop = b.rise(ao);
    let rim = b.fall(ri);
    let rdm = b.fall(rd);
    let rmm = b.fall(rm);
    let adm = b.fall(ad);
    let amm = b.fall(am);
    let aom = b.fall(ao);

    b.connect_marked(aom, rip);
    b.connect(rip, rdp);
    b.connect(rip, rmp);
    b.connect(rdp, adp);
    b.connect(rmp, amp);
    b.connect(adp, aop);
    b.connect(amp, aop);
    b.connect(aop, rim);
    b.connect(rim, rdm);
    b.connect(rim, rmm);
    b.connect(rdm, adm);
    b.connect(rmm, amm);
    b.connect(adm, aom);
    b.connect(amm, aom);
    b.build()
}

/// MODE_CTRL: armed by TOKEN_CTRL (`rm`), waits on the WAITX2 grant
/// rails (`uv_g` / `ov_g`), gives the early acknowledge `am`
/// immediately, and runs the charge request `rc`/`ac` to completion.
pub fn mode_ctrl_stg() -> Stg {
    let mut b = StgBuilder::new("mode_ctrl");
    let rm = b.input("rm", false);
    let uv_g = b.input("uv_g", false);
    let ov_g = b.input("ov_g", false);
    let ac = b.input("ac", false);
    let am = b.output("am", false);
    let rc = b.output("rc", false);
    // Internal state: "a demand is being served" — inserted to satisfy
    // complete state coding (the Petrify-style CSC resolution signal).
    let csc0 = b.internal("csc0", false);

    let rmp = b.rise(rm);
    // UV branch: early acknowledge completes before the charge cycle,
    // which is what lets TOKEN_CTRL move the token while charging runs.
    let uvgp = b.rise(uv_g);
    let cscp1 = b.rise(csc0);
    let amp1 = b.rise(am);
    let rmm1 = b.fall(rm);
    let amm1 = b.fall(am);
    let rcp1 = b.rise(rc);
    let acp1 = b.rise(ac);
    let rcm1 = b.fall(rc);
    let uvgm = b.fall(uv_g);
    let acm1 = b.fall(ac);
    let cscm1 = b.fall(csc0);
    // OV branch.
    let ovgp = b.rise(ov_g);
    let cscp2 = b.rise(csc0);
    let amp2 = b.rise(am);
    let rmm2 = b.fall(rm);
    let amm2 = b.fall(am);
    let rcp2 = b.rise(rc);
    let acp2 = b.rise(ac);
    let rcm2 = b.fall(rc);
    let ovgm = b.fall(ov_g);
    let acm2 = b.fall(ac);
    let cscm2 = b.fall(csc0);

    let entry = b.place_with_tokens("entry", 1);
    b.arc_pt(entry, rmp);
    let choice = b.place("choice");
    b.arc_tp(rmp, choice);
    b.arc_pt(choice, uvgp);
    b.arc_pt(choice, ovgp);
    // UV branch.
    b.connect(uvgp, cscp1);
    b.connect(cscp1, amp1);
    b.connect(amp1, rmm1);
    b.connect(rmm1, amm1);
    b.connect(amm1, rcp1);
    b.connect(rcp1, acp1);
    b.connect(acp1, rcm1);
    b.connect(rcm1, uvgm);
    b.connect(uvgm, acm1);
    b.connect(acm1, cscm1);
    b.arc_tp(cscm1, entry);
    // OV branch.
    b.connect(ovgp, cscp2);
    b.connect(cscp2, amp2);
    b.connect(amp2, rmm2);
    b.connect(rmm2, amm2);
    b.connect(amm2, rcp2);
    b.connect(rcp2, acp2);
    b.connect(acp2, rcm2);
    b.connect(rcm2, ovgm);
    b.connect(ovgm, acm2);
    b.connect(acm2, cscm2);
    b.arc_tp(cscm2, entry);
    b.build()
}

/// PMOS_DELAY_CTRL / NMOS_DELAY_CTRL: delays an acknowledgement through
/// a timer handshake (`rd`/`ad` to PMIN_TIMER or NMIN_TIMER) so the
/// transistor honours its minimum on-time.
pub fn delay_ctrl_stg(name: &str) -> Stg {
    let mut b = StgBuilder::new(name);
    let ri = b.input("ri", false);
    let ad = b.input("ad", false);
    let rd = b.output("rd", false);
    let ao = b.output("ao", false);

    let rip = b.rise(ri);
    let rdp = b.rise(rd);
    let adp = b.rise(ad);
    let aop = b.rise(ao);
    let rim = b.fall(ri);
    let rdm = b.fall(rd);
    let adm = b.fall(ad);
    let aom = b.fall(ao);

    b.connect_marked(aom, rip);
    b.connect(rip, rdp);
    b.connect(rdp, adp);
    b.connect(adp, aop);
    b.connect(aop, rim);
    b.connect(rim, rdm);
    b.connect(rdm, adm);
    b.connect(adm, aom);
    b.build()
}

/// EXT_DELAY_CTRL: the same timer-gated shape as
/// [`delay_ctrl_stg`], driving PEXT_TIMER for the first-cycle PMOS
/// extension (the WAIT01 that detects "first cycle after UV" sits in
/// front of `ri`).
pub fn ext_delay_ctrl_stg() -> Stg {
    delay_ctrl_stg("ext_delay_ctrl")
}

/// HL_CTRL: wraps the HL WAIT element into an activation request toward
/// the MERGE (`ro`/`ai` channel).
pub fn hl_ctrl_stg() -> Stg {
    let mut b = StgBuilder::new("hl_ctrl");
    let hl = b.input("hl", false);
    let ai = b.input("ai", false);
    let ro = b.output("ro", false);

    let hlp = b.rise(hl);
    let rop = b.rise(ro);
    let aip = b.rise(ai);
    let rom = b.fall(ro);
    let aim = b.fall(ai);
    let hlm = b.fall(hl);

    b.connect_marked(aim, hlp);
    b.connect(hlp, rop);
    b.connect(rop, aip);
    // The latched condition clears before the handshake closes.
    b.connect(rop, hlm);
    b.connect(aip, rom);
    b.connect(hlm, rom);
    b.connect_marked(hlm, hlp);
    b.connect(rom, aim);
    b.build()
}

/// CHARGE_CTRL: the charging cycle behind a request/acknowledge channel
/// (`rc`/`ac` from MODE_CTRL). One request drives one full PMOS/NMOS
/// cycle: `rc+ → gp+ → gp_ack+ → oc+ → gp- → gp_ack- → gn+ → gn_ack+ →
/// ac+`, released through `rc- → oc- → zc+ → gn- → gn_ack- → zc- → ac-`
/// (the early-ZC completion; the no-ZC takeover is arbitrated upstream).
pub fn charge_ctrl_stg() -> Stg {
    let mut b = StgBuilder::new("charge_ctrl");
    let rc = b.input("rc", false);
    let oc = b.input("oc", false);
    let zc = b.input("zc", false);
    let gpa = b.input("gp_ack", false);
    let gna = b.input("gn_ack", false);
    let gp = b.output("gp", false);
    let gn = b.output("gn", false);
    let ac = b.output("ac", false);

    let rcp = b.rise(rc);
    let gpp = b.rise(gp);
    let gpap = b.rise(gpa);
    let ocp = b.rise(oc);
    let gpm = b.fall(gp);
    let gpam = b.fall(gpa);
    let gnp = b.rise(gn);
    let gnap = b.rise(gna);
    let acp = b.rise(ac);
    let rcm = b.fall(rc);
    let ocm = b.fall(oc);
    let zcp = b.rise(zc);
    let gnm = b.fall(gn);
    let gnam = b.fall(gna);
    let zcm = b.fall(zc);
    let acm = b.fall(ac);

    b.connect_marked(acm, rcp);
    b.connect(rcp, gpp);
    b.connect(gpp, gpap);
    b.connect(gpap, ocp);
    b.connect(ocp, gpm);
    b.connect(gpm, gpam);
    b.connect(gpam, gnp);
    b.connect(gnp, gnap);
    b.connect(gnap, acp);
    b.connect(acp, rcm);
    b.connect(rcm, ocm);
    b.connect(ocm, zcp);
    b.connect(zcp, gnm);
    b.connect(gnm, gnam);
    b.connect(gnam, zcm);
    b.connect(zcm, acm);
    b.build()
}

/// A timer environment for a `rd`/`ad` interface: acknowledges the
/// request after its (abstract) delay. Structurally this is the mirror
/// of [`delay_ctrl_stg`]'s timer port.
pub fn timer_stg(req: &str, ack: &str) -> Stg {
    let mut b = StgBuilder::new(format!("timer_{req}_{ack}"));
    let r = b.input(req, false);
    let a = b.output(ack, false);
    let rp = b.rise(r);
    let ap = b.rise(a);
    let rm = b.fall(r);
    let am = b.fall(a);
    b.connect_marked(am, rp);
    b.connect(rp, ap);
    b.connect(ap, rm);
    b.connect(rm, am);
    b.build()
}

/// The integrated phase-controller core: TOKEN_CTRL composed with
/// MODE_CTRL and the TOKEN_TIMER (Figure 5c's upper half), with the
/// module handshakes (`rm`/`am`, `rd`/`ad`) closed by the composition —
/// the A4A flow's *system integration* step.
///
/// The remaining open signals are the stage's external interface: the
/// activation channel `ri`/`ao`, the WAITX2 grant rails `uv_g`/`ov_g`,
/// and the charge channel `rc`/`ac`.
///
/// # Panics
///
/// Panics if the composition fails (it cannot: the interfaces are
/// complementary by construction).
pub fn phase_core_stg() -> Stg {
    let token = token_ctrl_stg();
    let mode = mode_ctrl_stg();
    let timer = timer_stg("rd", "ad");
    let composed = token
        .compose(&mode)
        .expect("token_ctrl || mode_ctrl interfaces are complementary")
        .compose(&timer)
        .expect("timer interface is complementary");
    // The closed module handshakes become internal signals.
    let mut result = composed;
    for name in ["rm", "am", "rd", "ad"] {
        if let Some(id) = result.signal_by_name(name) {
            if result.signal(id).kind == a4a_stg::SignalKind::Output {
                result = result.hide(id);
            }
        }
    }
    result
}

/// All module specifications with their names (the per-experiment index
/// of DESIGN.md references these).
pub fn all_module_stgs() -> Vec<(&'static str, Stg)> {
    vec![
        ("basic_buck", basic_buck_stg()),
        ("decoupler", decoupler_stg()),
        ("merge", merge_stg()),
        ("token_ctrl", token_ctrl_stg()),
        ("mode_ctrl", mode_ctrl_stg()),
        ("pmos_delay_ctrl", delay_ctrl_stg("pmos_delay_ctrl")),
        ("nmos_delay_ctrl", delay_ctrl_stg("nmos_delay_ctrl")),
        ("ext_delay_ctrl", ext_delay_ctrl_stg()),
        ("hl_ctrl", hl_ctrl_stg()),
        ("charge_ctrl", charge_ctrl_stg()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_module_stgs_are_clean() {
        for (name, stg) in all_module_stgs() {
            let sg = stg
                .state_graph(500_000)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let report = stg.verify(&sg);
            assert!(
                report.is_clean(),
                "{name} not clean ({} states):\n{}\nfirst persistence: {:?}\nfirst csc: {:?}",
                sg.state_count(),
                report.summary(),
                report.persistence.first(),
                report.csc_conflicts().first(),
            );
        }
    }

    #[test]
    fn basic_buck_never_shorts_the_bridge() {
        let stg = basic_buck_stg();
        let sg = stg.state_graph(500_000).unwrap();
        let gp = stg.signal_by_name("gp").unwrap();
        let gn = stg.signal_by_name("gn").unwrap();
        assert!(
            stg.check_mutual_exclusion(&sg, gp, gn).is_empty(),
            "PMOS and NMOS must never be on together"
        );
    }

    #[test]
    fn basic_buck_covers_three_scenarios() {
        let stg = basic_buck_stg();
        let sg = stg.state_graph(500_000).unwrap();
        // Both completion paths reachable: a state where zc is high
        // (early ZC) and a state where gn falls with uv high (late ZC).
        let zc = stg.signal_by_name("zc").unwrap();
        let uv = stg.signal_by_name("uv").unwrap();
        let gn = stg.signal_by_name("gn").unwrap();
        let mut saw_early = false;
        let mut saw_late = false;
        for s in sg.state_ids() {
            let code = sg.code(s);
            if code & zc.mask() != 0 {
                saw_early = true;
            }
            if code & uv.mask() != 0 && code & gn.mask() != 0 {
                saw_late = true;
            }
        }
        assert!(saw_early && saw_late);
    }

    #[test]
    fn decoupler_pipelines_the_token() {
        let stg = decoupler_stg();
        let sg = stg.state_graph(10_000).unwrap();
        assert!(sg.state_count() >= 8, "pipelined handshakes: {}", sg.state_count());
    }

    #[test]
    fn merge_serves_both_requesters() {
        let stg = merge_stg();
        let sg = stg.state_graph(100_000).unwrap();
        let a1 = stg.signal_by_name("a1").unwrap();
        let a2 = stg.signal_by_name("a2").unwrap();
        let mut saw1 = false;
        let mut saw2 = false;
        for s in sg.state_ids() {
            saw1 |= sg.code(s) & a1.mask() != 0;
            saw2 |= sg.code(s) & a2.mask() != 0;
        }
        assert!(saw1 && saw2);
    }

    #[test]
    fn token_ctrl_joins_timer_and_mode() {
        let stg = token_ctrl_stg();
        let sg = stg.state_graph(100_000).unwrap();
        let ao = stg.signal_by_name("ao").unwrap();
        let ad = stg.signal_by_name("ad").unwrap();
        let am = stg.signal_by_name("am").unwrap();
        // ao never rises while either branch is incomplete.
        for s in sg.state_ids() {
            let code = sg.code(s);
            if sg.is_excited(&stg, s, ao) && code & ao.mask() == 0 {
                assert!(
                    code & ad.mask() != 0 && code & am.mask() != 0,
                    "ao+ excited before both acks"
                );
            }
        }
    }

    #[test]
    fn token_ring_circulates_one_token_forever() {
        let ring = token_ring_stg();
        let sg = ring.state_graph(100_000).expect("consistent");
        let report = ring.verify(&sg);
        assert!(report.deadlocks.is_empty(), "ring deadlocked");
        assert!(report.persistence.is_empty());
        // Every channel is internal after closing the ring.
        for s in ring.signal_ids() {
            assert_eq!(
                ring.signal(s).kind,
                a4a_stg::SignalKind::Internal,
                "{} should be internal",
                ring.signal(s).name
            );
        }
        // The token is never lost: in every reachable state it sits in a
        // stage latch or travels on a channel. (The latches overlap
        // briefly during hand-off — make-before-break — so exclusivity
        // is deliberately NOT required.)
        let t0 = ring.signal_by_name("tok_c01").expect("stage0 latch");
        let t1 = ring.signal_by_name("tok_c10").expect("stage1 latch");
        let c01 = ring.signal_by_name("c01").expect("channel");
        let c10 = ring.signal_by_name("c10").expect("channel");
        let lost = ring.check_invariant(&sg, |code| {
            code & (t0.mask() | t1.mask() | c01.mask() | c10.mask()) != 0
        });
        assert!(lost.is_empty(), "the token vanished in {} states", lost.len());
        // And the token visits both stages.
        let mut saw0 = false;
        let mut saw1 = false;
        for s in sg.state_ids() {
            saw0 |= sg.code(s) & t0.mask() != 0;
            saw1 |= sg.code(s) & t1.mask() != 0;
        }
        assert!(saw0 && saw1, "token must circulate");
        // Structural conservation: every computed place invariant keeps
        // its weighted token sum constant along the whole state space
        // (the Gaussian basis need not be semi-positive, so the stronger
        // coverage certificate is not asserted here).
        let invariants = ring.net().place_invariants();
        assert!(!invariants.is_empty());
        let m0 = ring.net().initial_marking();
        for inv in &invariants {
            let s0 = inv.sum(&m0);
            for st in sg.state_ids() {
                assert_eq!(inv.sum(sg.marking(st)), s0, "invariant broke");
            }
        }
        // And the ring is 1-bounded: a single token.
        for st in sg.state_ids() {
            assert!(sg.marking(st).is_safe(), "ring must stay safe");
        }
    }

    #[test]
    fn charge_ctrl_never_shorts() {
        let stg = charge_ctrl_stg();
        let sg = stg.state_graph(100_000).unwrap();
        let gp = stg.signal_by_name("gp").unwrap();
        let gn = stg.signal_by_name("gn").unwrap();
        assert!(stg.check_mutual_exclusion(&sg, gp, gn).is_empty());
    }

    #[test]
    fn phase_core_composition_is_live() {
        let stg = phase_core_stg();
        let sg = stg
            .state_graph(1_000_000)
            .expect("composed system is consistent");
        // Every closed-handshake signal became internal.
        for name in ["rm", "am", "rd", "ad"] {
            let id = stg.signal_by_name(name).expect(name);
            assert_eq!(
                stg.signal(id).kind,
                a4a_stg::SignalKind::Internal,
                "{name} should be hidden after integration"
            );
        }
        // The integrated system is deadlock-free and output-persistent.
        let report = stg.verify(&sg);
        assert!(report.deadlocks.is_empty(), "deadlock in composition");
        assert!(
            report.persistence.is_empty(),
            "persistence violated: {:?}",
            report.persistence.first()
        );
        // The external interface stayed open.
        for name in ["ri", "ao", "uv_g", "ov_g", "rc", "ac"] {
            assert!(stg.signal_by_name(name).is_some(), "missing {name}");
        }
        assert!(sg.state_count() > 20, "non-trivial product");
    }

    #[test]
    fn timer_env_is_clean() {
        let stg = timer_stg("rd", "ad");
        let sg = stg.state_graph(100).unwrap();
        assert!(stg.verify(&sg).is_clean());
    }

    #[test]
    fn stgs_round_trip_through_g_format() {
        for (name, stg) in all_module_stgs() {
            let text = stg.to_g();
            let back = a4a_stg::Stg::parse_g(&text)
                .unwrap_or_else(|e| panic!("{name} reparse: {e}\n{text}"));
            let sg1 = stg.state_graph(500_000).unwrap();
            let sg2 = back
                .state_graph(500_000)
                .unwrap_or_else(|e| panic!("{name} rebuild: {e}"));
            assert_eq!(
                sg1.state_count(),
                sg2.state_count(),
                "{name} state count changed through .g round trip"
            );
        }
    }
}
