use std::fmt;

use crate::Marking;

/// Index of a place within its [`PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub(crate) u32);

/// Index of a transition within its [`PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub(crate) u32);

impl PlaceId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TransitionId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A place of a Petri net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Place {
    /// Human-readable name (unique within the net by construction).
    pub name: String,
    /// Tokens in the initial marking.
    pub initial_tokens: u32,
}

/// A transition of a Petri net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Human-readable name (unique within the net by construction).
    pub name: String,
    pub(crate) consume: Vec<(PlaceId, u32)>,
    pub(crate) produce: Vec<(PlaceId, u32)>,
    pub(crate) read: Vec<(PlaceId, u32)>,
}

impl Transition {
    /// Places (with weights) this transition consumes tokens from.
    pub fn consumed(&self) -> &[(PlaceId, u32)] {
        &self.consume
    }

    /// Places (with weights) this transition produces tokens into.
    pub fn produced(&self) -> &[(PlaceId, u32)] {
        &self.produce
    }

    /// Places (with weights) this transition tests without consuming.
    pub fn read(&self) -> &[(PlaceId, u32)] {
        &self.read
    }
}

/// Kind of arc between a place and a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArcKind {
    /// Place-to-transition arc: tokens are consumed when firing.
    Consume,
    /// Transition-to-place arc: tokens are produced when firing.
    Produce,
    /// Read (test) arc: tokens must be present but are not consumed.
    Read,
}

/// An immutable place/transition net with weighted arcs and read arcs.
///
/// Construct with [`NetBuilder`]. The net owns the *structure*; token state
/// lives in [`Marking`] values so many markings can be explored without
/// cloning the net.
#[derive(Debug, Clone)]
pub struct PetriNet {
    pub(crate) places: Vec<Place>,
    pub(crate) transitions: Vec<Transition>,
}

impl PetriNet {
    /// Returns a builder for incremental construction.
    pub fn builder() -> NetBuilder {
        NetBuilder::new()
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// All places in id order.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// All transitions in id order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Looks a place up by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this net.
    pub fn place(&self, id: PlaceId) -> &Place {
        &self.places[id.index()]
    }

    /// Looks a transition up by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this net.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.index()]
    }

    /// Finds a place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.places
            .iter()
            .position(|p| p.name == name)
            .map(|i| PlaceId(i as u32))
    }

    /// Finds a transition by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(|i| TransitionId(i as u32))
    }

    /// Iterates over all transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.transitions.len() as u32).map(TransitionId)
    }

    /// Iterates over all place ids.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.places.len() as u32).map(PlaceId)
    }

    /// The initial marking declared at construction time.
    pub fn initial_marking(&self) -> Marking {
        Marking::new(self.places.iter().map(|p| p.initial_tokens).collect())
    }

    /// Returns `true` if `t` is enabled in `marking`.
    ///
    /// A transition is enabled when every consumed place holds at least the
    /// arc weight and every read place holds at least the read weight.
    pub fn is_enabled(&self, t: TransitionId, marking: &Marking) -> bool {
        let tr = self.transition(t);
        tr.consume.iter().all(|&(p, w)| marking.tokens(p) >= w)
            && tr.read.iter().all(|&(p, w)| marking.tokens(p) >= w)
    }

    /// All transitions enabled in `marking`, in id order.
    pub fn enabled(&self, marking: &Marking) -> Vec<TransitionId> {
        self.transition_ids()
            .filter(|&t| self.is_enabled(t, marking))
            .collect()
    }

    /// Fires `t` in `marking`, returning the successor marking.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not enabled — callers must check with
    /// [`PetriNet::is_enabled`] first — or on token overflow (a place
    /// pushed past `u32::MAX` tokens; use [`PetriNet::try_fire`] to get
    /// a typed error instead).
    pub fn fire(&self, t: TransitionId, marking: &Marking) -> Marking {
        self.try_fire(t, marking)
            .unwrap_or_else(|e| panic!("token overflow: {e}"))
    }

    /// Fires `t` in `marking`, returning the successor marking, or a
    /// typed [`TokenOverflow`] when a produced place would exceed
    /// `u32::MAX` tokens — the fallible form the state-space explorers
    /// use so an absurdly unbounded net fails cleanly mid-BFS.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not enabled — callers must check with
    /// [`PetriNet::is_enabled`] first.
    pub fn try_fire(&self, t: TransitionId, marking: &Marking) -> Result<Marking, TokenOverflow> {
        assert!(
            self.is_enabled(t, marking),
            "transition {} is not enabled",
            self.transition(t).name
        );
        let tr = self.transition(t);
        let mut next = marking.clone();
        for &(p, w) in &tr.consume {
            next.remove(p, w);
        }
        for &(p, w) in &tr.produce {
            next.checked_add(p, w).map_err(|()| TokenOverflow {
                place: p,
                transition: t,
            })?;
        }
        Ok(next)
    }
}

/// Firing pushed a place's token counter past `u32::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenOverflow {
    /// The place whose counter overflowed.
    pub place: PlaceId,
    /// The transition whose firing overflowed it.
    pub transition: TransitionId,
}

impl fmt::Display for TokenOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "firing {} overflows the token counter of {}",
            self.transition, self.place
        )
    }
}

impl std::error::Error for TokenOverflow {}

/// Incremental builder for [`PetriNet`].
///
/// Names are deduplicated: adding a place or transition with an existing
/// name panics, because silent merging would corrupt STG semantics.
#[derive(Debug, Clone, Default)]
pub struct NetBuilder {
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl NetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a place with zero initial tokens.
    ///
    /// # Panics
    ///
    /// Panics if a place with the same name already exists.
    pub fn place(&mut self, name: impl Into<String>) -> PlaceId {
        self.place_with_tokens(name, 0)
    }

    /// Adds a place holding `tokens` in the initial marking.
    ///
    /// # Panics
    ///
    /// Panics if a place with the same name already exists.
    pub fn place_with_tokens(&mut self, name: impl Into<String>, tokens: u32) -> PlaceId {
        let name = name.into();
        assert!(
            !self.places.iter().any(|p| p.name == name),
            "duplicate place name {name:?}"
        );
        let id = PlaceId(self.places.len() as u32);
        self.places.push(Place {
            name,
            initial_tokens: tokens,
        });
        id
    }

    /// Adds a transition.
    ///
    /// # Panics
    ///
    /// Panics if a transition with the same name already exists.
    pub fn transition(&mut self, name: impl Into<String>) -> TransitionId {
        let name = name.into();
        assert!(
            !self.transitions.iter().any(|t| t.name == name),
            "duplicate transition name {name:?}"
        );
        let id = TransitionId(self.transitions.len() as u32);
        self.transitions.push(Transition {
            name,
            consume: Vec::new(),
            produce: Vec::new(),
            read: Vec::new(),
        });
        id
    }

    /// Adds a place→transition (consuming) arc with weight 1.
    pub fn arc_pt(&mut self, p: PlaceId, t: TransitionId) {
        self.arc_pt_weighted(p, t, 1);
    }

    /// Adds a weighted place→transition (consuming) arc.
    ///
    /// # Panics
    ///
    /// Panics on zero weight or duplicate arc.
    pub fn arc_pt_weighted(&mut self, p: PlaceId, t: TransitionId, weight: u32) {
        assert!(weight > 0, "arc weight must be positive");
        let tr = &mut self.transitions[t.index()];
        assert!(
            !tr.consume.iter().any(|&(q, _)| q == p),
            "duplicate consume arc {}->{}",
            p,
            t
        );
        tr.consume.push((p, weight));
    }

    /// Adds a transition→place (producing) arc with weight 1.
    pub fn arc_tp(&mut self, t: TransitionId, p: PlaceId) {
        self.arc_tp_weighted(t, p, 1);
    }

    /// Adds a weighted transition→place (producing) arc.
    ///
    /// # Panics
    ///
    /// Panics on zero weight or duplicate arc.
    pub fn arc_tp_weighted(&mut self, t: TransitionId, p: PlaceId, weight: u32) {
        assert!(weight > 0, "arc weight must be positive");
        let tr = &mut self.transitions[t.index()];
        assert!(
            !tr.produce.iter().any(|&(q, _)| q == p),
            "duplicate produce arc {}->{}",
            t,
            p
        );
        tr.produce.push((p, weight));
    }

    /// Adds a read (test) arc with weight 1: `t` requires a token in `p`
    /// but does not consume it.
    pub fn arc_read(&mut self, p: PlaceId, t: TransitionId) {
        self.arc_read_weighted(p, t, 1);
    }

    /// Adds a weighted read arc.
    ///
    /// # Panics
    ///
    /// Panics on zero weight or duplicate arc.
    pub fn arc_read_weighted(&mut self, p: PlaceId, t: TransitionId, weight: u32) {
        assert!(weight > 0, "arc weight must be positive");
        let tr = &mut self.transitions[t.index()];
        assert!(
            !tr.read.iter().any(|&(q, _)| q == p),
            "duplicate read arc {}->{}",
            p,
            t
        );
        tr.read.push((p, weight));
    }

    /// Finalises the builder into an immutable net.
    pub fn build(self) -> PetriNet {
        PetriNet {
            places: self.places,
            transitions: self.transitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle() -> (PetriNet, TransitionId, TransitionId) {
        let mut b = NetBuilder::new();
        let p0 = b.place_with_tokens("p0", 1);
        let p1 = b.place("p1");
        let t0 = b.transition("t0");
        let t1 = b.transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p0);
        (b.build(), t0, t1)
    }

    #[test]
    fn initial_marking_reflects_tokens() {
        let (net, _, _) = cycle();
        let m = net.initial_marking();
        assert_eq!(m.tokens(PlaceId(0)), 1);
        assert_eq!(m.tokens(PlaceId(1)), 0);
    }

    #[test]
    fn enabledness_and_firing() {
        let (net, t0, t1) = cycle();
        let m0 = net.initial_marking();
        assert!(net.is_enabled(t0, &m0));
        assert!(!net.is_enabled(t1, &m0));
        let m1 = net.fire(t0, &m0);
        assert!(!net.is_enabled(t0, &m1));
        assert!(net.is_enabled(t1, &m1));
        let m2 = net.fire(t1, &m1);
        assert_eq!(m2, m0);
    }

    #[test]
    #[should_panic(expected = "not enabled")]
    fn firing_disabled_transition_panics() {
        let (net, _, t1) = cycle();
        let m0 = net.initial_marking();
        let _ = net.fire(t1, &m0);
    }

    #[test]
    fn read_arc_does_not_consume() {
        let mut b = NetBuilder::new();
        let ctx = b.place_with_tokens("ctx", 1);
        let src = b.place_with_tokens("src", 1);
        let dst = b.place("dst");
        let t = b.transition("t");
        b.arc_read(ctx, t);
        b.arc_pt(src, t);
        b.arc_tp(t, dst);
        let net = b.build();
        let m0 = net.initial_marking();
        assert!(net.is_enabled(TransitionId(0), &m0));
        let m1 = net.fire(TransitionId(0), &m0);
        assert_eq!(m1.tokens(ctx), 1, "read arc preserved the token");
        assert_eq!(m1.tokens(src), 0);
        assert_eq!(m1.tokens(dst), 1);
    }

    #[test]
    fn read_arc_requires_token() {
        let mut b = NetBuilder::new();
        let ctx = b.place("ctx");
        let src = b.place_with_tokens("src", 1);
        let t = b.transition("t");
        b.arc_read(ctx, t);
        b.arc_pt(src, t);
        let net = b.build();
        assert!(!net.is_enabled(TransitionId(0), &net.initial_marking()));
    }

    #[test]
    fn weighted_arcs() {
        let mut b = NetBuilder::new();
        let p = b.place_with_tokens("p", 3);
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_pt_weighted(p, t, 2);
        b.arc_tp_weighted(t, q, 5);
        let net = b.build();
        let m1 = net.fire(TransitionId(0), &net.initial_marking());
        assert_eq!(m1.tokens(p), 1);
        assert_eq!(m1.tokens(q), 5);
        assert!(!net.is_enabled(TransitionId(0), &m1), "only 1 token left");
    }

    #[test]
    fn lookup_by_name() {
        let (net, t0, _) = cycle();
        assert_eq!(net.place_by_name("p1"), Some(PlaceId(1)));
        assert_eq!(net.transition_by_name("t0"), Some(t0));
        assert_eq!(net.place_by_name("zz"), None);
        assert_eq!(net.transition_by_name("zz"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate place name")]
    fn duplicate_place_panics() {
        let mut b = NetBuilder::new();
        b.place("p");
        b.place("p");
    }

    #[test]
    #[should_panic(expected = "duplicate transition name")]
    fn duplicate_transition_panics() {
        let mut b = NetBuilder::new();
        b.transition("t");
        b.transition("t");
    }

    #[test]
    fn enabled_lists_in_id_order() {
        let mut b = NetBuilder::new();
        let p = b.place_with_tokens("p", 1);
        let t0 = b.transition("a");
        let t1 = b.transition("b");
        b.arc_read(p, t0);
        b.arc_read(p, t1);
        let net = b.build();
        assert_eq!(net.enabled(&net.initial_marking()), vec![t0, t1]);
    }
}
