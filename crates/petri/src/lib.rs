//! Petri-net substrate for the A4A buck reproduction.
//!
//! Signal Transition Graphs — the formal specification language of the A4A
//! flow — are labelled Petri nets. This crate provides the unlabelled
//! machinery they stand on:
//!
//! * [`PetriNet`] and [`NetBuilder`] — places, transitions, weighted
//!   consuming/producing arcs and non-consuming *read arcs*;
//! * [`Marking`] — token vectors with the standard enabledness and firing
//!   rule;
//! * [`ReachabilityGraph`] — explicit (bounded) state-space exploration,
//!   deadlock detection and boundedness checks.
//!
//! # Examples
//!
//! Build a two-place cycle and explore it:
//!
//! ```
//! use a4a_petri::NetBuilder;
//!
//! let mut b = NetBuilder::new();
//! let p0 = b.place_with_tokens("p0", 1);
//! let p1 = b.place("p1");
//! let t0 = b.transition("t0");
//! let t1 = b.transition("t1");
//! b.arc_pt(p0, t0);
//! b.arc_tp(t0, p1);
//! b.arc_pt(p1, t1);
//! b.arc_tp(t1, p0);
//! let net = b.build();
//!
//! let reach = net.explore(10_000)?;
//! assert_eq!(reach.state_count(), 2);
//! assert!(reach.deadlocks().is_empty());
//! # Ok::<(), a4a_petri::ExploreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod invariant;
mod marking;
mod net;
mod reach;

pub use invariant::PlaceInvariant;
pub use marking::Marking;
pub use net::{
    ArcKind, NetBuilder, PetriNet, Place, PlaceId, TokenOverflow, Transition, TransitionId,
};
pub use reach::{ExploreError, ReachabilityGraph, StateId};
