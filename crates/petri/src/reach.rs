use std::error::Error;
use std::fmt;

use a4a_rt::IdTable;

use crate::{Marking, PetriNet, TransitionId};

/// Index of a state (marking) within a [`ReachabilityGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) u32);

impl StateId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The initial state of every reachability graph.
    pub const INITIAL: StateId = StateId(0);
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Error raised when state-space exploration exceeds its budget or the
/// net defeats the token model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The number of distinct reachable markings exceeded the caller's
    /// limit; the net may be unbounded or simply too large.
    StateLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The caller asked for more states than the 32-bit [`StateId`]
    /// space can number; ids would silently wrap past 2^32.
    LimitOverflow {
        /// The requested limit.
        limit: usize,
    },
    /// A firing pushed a place's token counter past `u32::MAX` — the
    /// net is unbounded in the most literal way.
    TokenOverflow {
        /// Name of the place whose counter overflowed.
        place: String,
        /// Name of the transition whose firing overflowed it.
        transition: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::StateLimit { limit } => {
                write!(f, "state space exceeds limit of {limit} markings")
            }
            ExploreError::LimitOverflow { limit } => write!(
                f,
                "state limit {limit} exceeds the 2^32-1 ids a StateId can number"
            ),
            ExploreError::TokenOverflow { place, transition } => write!(
                f,
                "firing {transition} overflows the token counter of place {place}"
            ),
        }
    }
}

impl Error for ExploreError {}

/// The explicit reachability graph of a [`PetriNet`].
///
/// States are markings, numbered in breadth-first discovery order starting
/// from the initial marking ([`StateId::INITIAL`]). Edges are transition
/// firings.
///
/// # Examples
///
/// ```
/// use a4a_petri::NetBuilder;
///
/// let mut b = NetBuilder::new();
/// let p = b.place_with_tokens("p", 1);
/// let q = b.place("q");
/// let t = b.transition("t");
/// b.arc_pt(p, t);
/// b.arc_tp(t, q);
/// let net = b.build();
/// let reach = net.explore(100)?;
/// assert_eq!(reach.state_count(), 2);
/// assert_eq!(reach.deadlocks().len(), 1);
/// # Ok::<(), a4a_petri::ExploreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    states: Vec<Marking>,
    /// Outgoing edges per state: (fired transition, successor).
    successors: Vec<Vec<(TransitionId, StateId)>>,
}

impl ReachabilityGraph {
    /// Number of distinct reachable markings.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of edges (firings) in the graph.
    pub fn edge_count(&self) -> usize {
        self.successors.iter().map(Vec::len).sum()
    }

    /// The marking of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this graph.
    pub fn marking(&self, state: StateId) -> &Marking {
        &self.states[state.index()]
    }

    /// Outgoing edges of `state` as (transition, successor) pairs.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this graph.
    pub fn successors(&self, state: StateId) -> &[(TransitionId, StateId)] {
        &self.successors[state.index()]
    }

    /// Iterates over all state ids in discovery order.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }

    /// States with no enabled transitions.
    pub fn deadlocks(&self) -> Vec<StateId> {
        self.state_ids()
            .filter(|s| self.successors[s.index()].is_empty())
            .collect()
    }

    /// Returns `true` when every reachable marking is 1-bounded.
    pub fn is_safe(&self) -> bool {
        self.states.iter().all(Marking::is_safe)
    }

    /// The maximum token count observed in any place over all reachable
    /// markings (the net's bound).
    pub fn bound(&self) -> u32 {
        self.states
            .iter()
            .flat_map(Marking::iter)
            .max()
            .unwrap_or(0)
    }

    /// Finds a shortest firing sequence from the initial state to `target`.
    ///
    /// Returns the transitions fired along the way; empty for the initial
    /// state itself. Useful for producing violation traces.
    ///
    /// # Panics
    ///
    /// Panics if `target` does not belong to this graph.
    pub fn trace_to(&self, target: StateId) -> Vec<TransitionId> {
        assert!(target.index() < self.states.len(), "unknown state {target}");
        // BFS from the initial state recording parents.
        let mut parent: Vec<Option<(StateId, TransitionId)>> = vec![None; self.states.len()];
        let mut visited = vec![false; self.states.len()];
        let mut queue = std::collections::VecDeque::new();
        visited[StateId::INITIAL.index()] = true;
        queue.push_back(StateId::INITIAL);
        while let Some(s) = queue.pop_front() {
            if s == target {
                break;
            }
            for &(t, succ) in &self.successors[s.index()] {
                if !visited[succ.index()] {
                    visited[succ.index()] = true;
                    parent[succ.index()] = Some((s, t));
                    queue.push_back(succ);
                }
            }
        }
        let mut trace = Vec::new();
        let mut cur = target;
        while let Some((prev, t)) = parent[cur.index()] {
            trace.push(t);
            cur = prev;
        }
        trace.reverse();
        trace
    }
}

/// Frontiers narrower than this are expanded inline: the per-state work
/// is a handful of vector ops, so shipping one or two states to the
/// pool costs more than it saves.
const PAR_FRONTIER_MIN: usize = 8;

impl PetriNet {
    /// Explores the state space breadth-first from the initial marking,
    /// on the global thread pool ([`a4a_rt::Pool::global`]).
    ///
    /// State numbering is breadth-first discovery order and is
    /// *identical for every thread count*: each BFS level occupies a
    /// contiguous id range, levels are expanded in parallel but merged
    /// sequentially in (parent id, transition id) order — exactly the
    /// order the sequential loop discovers successors in.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::StateLimit`] if more than `max_states`
    /// distinct markings are discovered, which indicates an unbounded net
    /// or one too large for explicit exploration;
    /// [`ExploreError::LimitOverflow`] if `max_states` itself exceeds
    /// the 32-bit id space; [`ExploreError::TokenOverflow`] if a place's
    /// token counter overflows.
    pub fn explore(&self, max_states: usize) -> Result<ReachabilityGraph, ExploreError> {
        self.explore_from(self.initial_marking(), max_states)
    }

    /// Explores the state space breadth-first from an arbitrary marking.
    ///
    /// The marking is packed to the bit-per-place representation when
    /// safe ([`Marking::pack_if_safe`]), so every interned state costs a
    /// few words instead of a `Vec<u32>`.
    ///
    /// # Errors
    ///
    /// As for [`PetriNet::explore`].
    pub fn explore_from(
        &self,
        initial: Marking,
        max_states: usize,
    ) -> Result<ReachabilityGraph, ExploreError> {
        self.explore_with(a4a_rt::Pool::global(), initial.pack_if_safe(), max_states)
    }

    /// [`PetriNet::explore_from`] on an explicit pool — the entry point
    /// the differential tests use to compare thread counts in-process.
    ///
    /// Exploration keeps whatever representation `initial` has: pass a
    /// packed marking (via [`Marking::pack_if_safe`]) for the fast path,
    /// or a dense one for the reference engine the packed-vs-reference
    /// differential suite compares against. Either way every observable
    /// — state numbering, edge order, error trip points — is
    /// bit-identical.
    ///
    /// # Errors
    ///
    /// As for [`PetriNet::explore`].
    pub fn explore_with(
        &self,
        pool: &a4a_rt::Pool,
        initial: Marking,
        max_states: usize,
    ) -> Result<ReachabilityGraph, ExploreError> {
        if max_states > u32::MAX as usize {
            return Err(ExploreError::LimitOverflow { limit: max_states });
        }
        // Interner: markings live once, in `states`; the table maps
        // fx-hash → StateId and equality checks go through the arena.
        let mut table = IdTable::new();
        let mut states: Vec<Marking> = Vec::new();
        let mut successors: Vec<Vec<(TransitionId, StateId)>> = Vec::new();

        table.insert(initial.fx_hash(), 0);
        states.push(initial);
        successors.push(Vec::new());

        // Level-synchronised BFS: states[level_start..level_end] is one
        // completed level; expand it (in parallel when wide enough),
        // then merge the per-state successor lists in id order. The
        // merge — and therefore numbering, edge order, and the point at
        // which the state limit or a token overflow trips — replays the
        // sequential loop exactly.
        let mut level_start = 0usize;
        // Sequential expansion reuses one successor scratch buffer for
        // the whole run; the parallel path necessarily materialises one
        // list per state to ship results between threads.
        let mut scratch: Vec<Firing> = Vec::new();
        while level_start < states.len() {
            let level_end = states.len();
            let expand = |marking: &Marking, out: &mut Vec<Firing>| {
                for t in self.transition_ids() {
                    if self.is_enabled(t, marking) {
                        out.push((t, self.try_fire(t, marking)));
                    }
                }
            };
            if pool.threads() <= 1 || level_end - level_start < PAR_FRONTIER_MIN {
                for i in level_start..level_end {
                    scratch.clear();
                    expand(&states[i], &mut scratch);
                    let firings = std::mem::take(&mut scratch);
                    self.merge_firings(
                        StateId(i as u32),
                        firings.iter().cloned(),
                        max_states,
                        &mut table,
                        &mut states,
                        &mut successors,
                    )?;
                    scratch = firings;
                }
            } else {
                let expanded: Vec<Vec<Firing>> =
                    pool.par_map_range(level_start..level_end, |i| {
                        let mut out = Vec::new();
                        expand(&states[i], &mut out);
                        out
                    });
                for (offset, firings) in expanded.into_iter().enumerate() {
                    self.merge_firings(
                        StateId((level_start + offset) as u32),
                        firings.into_iter(),
                        max_states,
                        &mut table,
                        &mut states,
                        &mut successors,
                    )?;
                }
            }
            level_start = level_end;
        }
        Ok(ReachabilityGraph { states, successors })
    }

    /// Merges one state's firing outcomes into the graph in transition
    /// order — the single code path both the sequential and parallel
    /// engines fund their determinism contract with.
    fn merge_firings(
        &self,
        current: StateId,
        firings: impl Iterator<Item = Firing>,
        max_states: usize,
        table: &mut IdTable,
        states: &mut Vec<Marking>,
        successors: &mut Vec<Vec<(TransitionId, StateId)>>,
    ) -> Result<(), ExploreError> {
        for (t, outcome) in firings {
            let next = outcome.map_err(|e| ExploreError::TokenOverflow {
                place: self.place(e.place).name.clone(),
                transition: self.transition(e.transition).name.clone(),
            })?;
            let hash = next.fx_hash();
            let next_id = match table.get(hash, |id| states[id as usize] == next) {
                Some(id) => StateId(id),
                None => {
                    if states.len() >= max_states {
                        return Err(ExploreError::StateLimit { limit: max_states });
                    }
                    let id = StateId(states.len() as u32);
                    table.insert(hash, id.0);
                    states.push(next);
                    successors.push(Vec::new());
                    id
                }
            };
            successors[current.index()].push((t, next_id));
        }
        Ok(())
    }
}

/// One enabled firing out of a frontier state: the transition plus the
/// successor marking or the token overflow it commits.
type Firing = (TransitionId, Result<Marking, crate::TokenOverflow>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    /// Two independent loops: state space is the product (4 states).
    fn two_loops() -> PetriNet {
        let mut b = NetBuilder::new();
        let a0 = b.place_with_tokens("a0", 1);
        let a1 = b.place("a1");
        let b0 = b.place_with_tokens("b0", 1);
        let b1 = b.place("b1");
        for (name, src, dst) in [
            ("ta0", a0, a1),
            ("ta1", a1, a0),
            ("tb0", b0, b1),
            ("tb1", b1, b0),
        ] {
            let t = b.transition(name);
            b.arc_pt(src, t);
            b.arc_tp(t, dst);
        }
        b.build()
    }

    #[test]
    fn product_state_space() {
        let net = two_loops();
        let g = net.explore(100).unwrap();
        assert_eq!(g.state_count(), 4);
        assert_eq!(g.edge_count(), 8);
        assert!(g.deadlocks().is_empty());
        assert!(g.is_safe());
        assert_eq!(g.bound(), 1);
    }

    #[test]
    fn deadlock_detected() {
        let mut b = NetBuilder::new();
        let p = b.place_with_tokens("p", 1);
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_pt(p, t);
        b.arc_tp(t, q);
        let net = b.build();
        let g = net.explore(10).unwrap();
        assert_eq!(g.deadlocks(), vec![StateId(1)]);
    }

    #[test]
    fn unbounded_net_hits_limit() {
        let mut b = NetBuilder::new();
        let p = b.place_with_tokens("p", 1);
        let t = b.transition("t");
        b.arc_read(p, t);
        b.arc_tp(t, p); // produces without consuming: unbounded
        let net = b.build();
        let err = net.explore(16).unwrap_err();
        assert_eq!(err, ExploreError::StateLimit { limit: 16 });
    }

    #[test]
    fn bound_reports_max_tokens() {
        let mut b = NetBuilder::new();
        let p = b.place_with_tokens("p", 2);
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_pt(p, t);
        b.arc_tp_weighted(t, q, 3);
        let net = b.build();
        let g = net.explore(100).unwrap();
        assert_eq!(g.bound(), 6, "two firings of weight-3 production");
        assert!(!g.is_safe());
    }

    #[test]
    fn trace_to_finds_shortest_path() {
        let mut b = NetBuilder::new();
        let p0 = b.place_with_tokens("p0", 1);
        let p1 = b.place("p1");
        let p2 = b.place("p2");
        let t0 = b.transition("t0");
        let t1 = b.transition("t1");
        b.arc_pt(p0, t0);
        b.arc_tp(t0, p1);
        b.arc_pt(p1, t1);
        b.arc_tp(t1, p2);
        let net = b.build();
        let g = net.explore(10).unwrap();
        let dead = g.deadlocks()[0];
        assert_eq!(g.trace_to(dead), vec![t0, t1]);
        assert_eq!(g.trace_to(StateId::INITIAL), vec![]);
    }

    #[test]
    fn explore_from_alternative_marking() {
        let net = two_loops();
        let m = Marking::new(vec![0, 1, 0, 1]);
        let g = net.explore_from(m, 100).unwrap();
        assert_eq!(g.state_count(), 4);
    }

    #[test]
    fn exploration_is_deterministic() {
        let net = two_loops();
        let g1 = net.explore(100).unwrap();
        let g2 = net.explore(100).unwrap();
        for s in g1.state_ids() {
            assert_eq!(g1.marking(s), g2.marking(s));
            assert_eq!(g1.successors(s), g2.successors(s));
        }
    }
}
