use std::fmt;
use std::hash::{Hash, Hasher};

use crate::net::PlaceId;

/// A token assignment for every place of a [`crate::PetriNet`].
///
/// Markings are value types: firing a transition produces a fresh marking,
/// leaving the original untouched, so state-space exploration can keep
/// markings as hash-map keys.
///
/// # Representations
///
/// Internally a marking is either *dense* (`Vec<u32>`, one counter per
/// place — the general representation every net supports) or *packed*
/// (one bit per place in `u64` words — only markings of **safe** nets,
/// where no place holds more than one token). Packed markings are what
/// the state-space engines intern: an 8-byte word covers 64 places, so
/// cloning, comparing, and hashing a marking costs a couple of word ops
/// instead of a `Vec<u32>` walk. The representation is invisible to the
/// API: equality, hashing, display, and every accessor are defined on
/// the *token counts*, so a packed marking equals (and hashes like) its
/// dense twin. A packed marking that gains a second token on some place
/// (e.g. while exploring a non-safe net) transparently falls back to the
/// dense representation.
///
/// # Examples
///
/// ```
/// use a4a_petri::Marking;
///
/// let m = Marking::new(vec![1, 0, 2]);
/// assert_eq!(m.total_tokens(), 3);
///
/// let safe = Marking::new(vec![1, 0, 1]).pack_if_safe();
/// assert!(safe.is_packed());
/// assert_eq!(safe, Marking::new(vec![1, 0, 1]));
/// ```
#[derive(Debug, Clone)]
pub struct Marking {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// One `u32` token counter per place.
    Dense(Vec<u32>),
    /// One bit per place, little-endian within `u64` words; bits at and
    /// above `places` are always zero. Places 0..64 live in the inline
    /// `word0`, so nets of up to 64 places (every STG in this repo)
    /// clone without touching the heap; `rest` holds words 1.. and
    /// stays empty for them.
    Packed {
        word0: u64,
        rest: Vec<u64>,
        places: u32,
    },
}

/// Word `w` of a packed bit vector split into (word0, rest).
#[inline]
fn packed_word(word0: u64, rest: &[u64], w: usize) -> u64 {
    if w == 0 {
        word0
    } else {
        rest[w - 1]
    }
}

impl Default for Marking {
    fn default() -> Self {
        Marking {
            repr: Repr::Dense(Vec::new()),
        }
    }
}

impl Marking {
    /// Creates a (dense) marking from a per-place token vector.
    pub fn new(tokens: Vec<u32>) -> Self {
        Marking {
            repr: Repr::Dense(tokens),
        }
    }

    /// Tokens currently in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to the net this marking was built
    /// for.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        let i = place.index();
        match &self.repr {
            Repr::Dense(v) => v[i],
            Repr::Packed { word0, rest, places } => {
                assert!(i < *places as usize, "place {place} out of range");
                (packed_word(*word0, rest, i / 64) >> (i % 64)) as u32 & 1
            }
        }
    }

    /// Number of places covered by this marking.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Dense(v) => v.len(),
            Repr::Packed { places, .. } => *places as usize,
        }
    }

    /// Returns `true` for the empty (zero-place) marking.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of tokens over all places.
    pub fn total_tokens(&self) -> u64 {
        match &self.repr {
            Repr::Dense(v) => v.iter().map(|&t| u64::from(t)).sum(),
            Repr::Packed { word0, rest, .. } => {
                u64::from(word0.count_ones())
                    + rest.iter().map(|w| u64::from(w.count_ones())).sum::<u64>()
            }
        }
    }

    /// Returns `true` when no place holds more than one token.
    pub fn is_safe(&self) -> bool {
        match &self.repr {
            Repr::Dense(v) => v.iter().all(|&t| t <= 1),
            Repr::Packed { .. } => true,
        }
    }

    /// Returns `true` when this marking uses the packed (bit-per-place)
    /// representation.
    pub fn is_packed(&self) -> bool {
        matches!(self.repr, Repr::Packed { .. })
    }

    /// Per-place token counts, indexed by [`PlaceId::index`].
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len()).map(move |i| match &self.repr {
            Repr::Dense(v) => v[i],
            Repr::Packed { word0, rest, .. } => {
                (packed_word(*word0, rest, i / 64) >> (i % 64)) as u32 & 1
            }
        })
    }

    /// Converts to the packed representation when safe; returns `self`
    /// unchanged (still dense) when some place holds more than one
    /// token. The state-space engines call this on the initial marking
    /// so safe nets explore on word-sized keys.
    pub fn pack_if_safe(self) -> Marking {
        match &self.repr {
            Repr::Packed { .. } => self,
            Repr::Dense(v) => {
                if !v.iter().all(|&t| t <= 1) {
                    return self;
                }
                let places = v.len();
                let mut word0 = 0u64;
                let mut rest = vec![0u64; places.div_ceil(64).saturating_sub(1)];
                for (i, &t) in v.iter().enumerate() {
                    if i < 64 {
                        word0 |= u64::from(t) << i;
                    } else {
                        rest[i / 64 - 1] |= u64::from(t) << (i % 64);
                    }
                }
                Marking {
                    repr: Repr::Packed {
                        word0,
                        rest,
                        places: places as u32,
                    },
                }
            }
        }
    }

    /// Converts to the dense (`Vec<u32>`) representation — the reference
    /// path the packed-vs-reference differential suite explores with.
    pub fn to_dense(&self) -> Marking {
        Marking::new(self.iter().collect())
    }

    /// Hashes the marking with the process-stable
    /// [`a4a_rt::FxHasher`] — the key function of the exploration
    /// interner. Equal markings hash equally regardless of
    /// representation: safe markings hash their packed words (computed
    /// on the fly for dense ones), unsafe markings hash their counters.
    pub fn fx_hash(&self) -> u64 {
        let mut h = a4a_rt::FxHasher::default();
        self.hash_canonical(&mut h);
        h.finish()
    }

    /// The representation-independent hash stream backing both
    /// [`Marking::fx_hash`] and the `std` [`Hash`] impl.
    fn hash_canonical<H: Hasher>(&self, h: &mut H) {
        h.write_usize(self.len());
        match &self.repr {
            Repr::Packed { word0, rest, places } => {
                if *places > 0 {
                    h.write_u64(*word0);
                }
                for &w in rest {
                    h.write_u64(w);
                }
            }
            Repr::Dense(v) => {
                if v.iter().all(|&t| t <= 1) {
                    let mut word = 0u64;
                    for (i, &t) in v.iter().enumerate() {
                        word |= u64::from(t) << (i % 64);
                        if i % 64 == 63 {
                            h.write_u64(word);
                            word = 0;
                        }
                    }
                    if !v.is_empty() && v.len() % 64 != 0 {
                        h.write_u64(word);
                    }
                } else {
                    for &t in v {
                        h.write_u32(t);
                    }
                }
            }
        }
    }

    /// Rewrites `self` into the dense representation in place.
    fn make_dense(&mut self) {
        if let Repr::Packed { .. } = self.repr {
            *self = self.to_dense();
        }
    }

    /// Adds `weight` tokens, falling back to the dense representation if
    /// a packed place would exceed one token. `Err(())` on counter
    /// overflow (the place already holds close to `u32::MAX` tokens).
    pub(crate) fn checked_add(&mut self, place: PlaceId, weight: u32) -> Result<(), ()> {
        let i = place.index();
        if let Repr::Packed { word0, rest, .. } = &mut self.repr {
            let slot = if i < 64 { word0 } else { &mut rest[i / 64 - 1] };
            let cur = (*slot >> (i % 64)) & 1;
            if cur as u32 + weight <= 1 {
                *slot |= u64::from(weight) << (i % 64);
                return Ok(());
            }
            // Second token on a packed place: this marking is no longer
            // safe, so it leaves the packed representation.
            self.make_dense();
        }
        match &mut self.repr {
            Repr::Dense(v) => {
                let slot = &mut v[i];
                *slot = slot.checked_add(weight).ok_or(())?;
                Ok(())
            }
            Repr::Packed { .. } => unreachable!("packed handled above"),
        }
    }

    pub(crate) fn remove(&mut self, place: PlaceId, weight: u32) {
        let i = place.index();
        match &mut self.repr {
            Repr::Dense(v) => {
                let slot = &mut v[i];
                *slot = slot.checked_sub(weight).expect("token underflow");
            }
            Repr::Packed { word0, rest, .. } => {
                let slot = if i < 64 { word0 } else { &mut rest[i / 64 - 1] };
                let cur = (*slot >> (i % 64)) as u32 & 1;
                assert!(weight <= cur, "token underflow");
                *slot &= !(u64::from(weight) << (i % 64));
            }
        }
    }
}

impl PartialEq for Marking {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a == b,
            (
                Repr::Packed {
                    word0: a0,
                    rest: ar,
                    places: pa,
                },
                Repr::Packed {
                    word0: b0,
                    rest: br,
                    places: pb,
                },
            ) => pa == pb && a0 == b0 && ar == br,
            // Mixed representations compare by token counts; only
            // possible when both are over the same places, and a packed
            // marking is always safe, so inequality is cheap to detect.
            _ => self.len() == other.len() && self.iter().eq(other.iter()),
        }
    }
}

impl Eq for Marking {}

impl Hash for Marking {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.hash_canonical(state);
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let m = Marking::new(vec![2, 0, 1]);
        assert_eq!(m.tokens(PlaceId(0)), 2);
        assert_eq!(m.tokens(PlaceId(2)), 1);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.total_tokens(), 3);
    }

    #[test]
    fn safety() {
        assert!(Marking::new(vec![1, 0, 1]).is_safe());
        assert!(!Marking::new(vec![2, 0]).is_safe());
    }

    #[test]
    fn mutation_checked() {
        let mut m = Marking::new(vec![1]);
        m.checked_add(PlaceId(0), 2).unwrap();
        assert_eq!(m.tokens(PlaceId(0)), 3);
        m.remove(PlaceId(0), 3);
        assert_eq!(m.tokens(PlaceId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "token underflow")]
    fn underflow_panics() {
        let mut m = Marking::new(vec![0]);
        m.remove(PlaceId(0), 1);
    }

    #[test]
    #[should_panic(expected = "token underflow")]
    fn packed_underflow_panics() {
        let mut m = Marking::new(vec![0]).pack_if_safe();
        m.remove(PlaceId(0), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Marking::new(vec![1, 0, 2]).to_string(), "[1 0 2]");
        let packed = Marking::new(vec![1, 0, 1]).pack_if_safe();
        assert_eq!(packed.to_string(), "[1 0 1]");
    }

    #[test]
    fn packing_round_trips() {
        let dense = Marking::new(vec![1, 0, 1, 1, 0]);
        let packed = dense.clone().pack_if_safe();
        assert!(packed.is_packed());
        assert!(!dense.is_packed());
        assert_eq!(packed, dense);
        assert_eq!(dense, packed);
        assert_eq!(packed.to_dense(), dense);
        assert_eq!(packed.total_tokens(), 3);
        for i in 0..5 {
            assert_eq!(packed.tokens(PlaceId(i)), dense.tokens(PlaceId(i)));
        }
    }

    #[test]
    fn unsafe_marking_stays_dense() {
        let m = Marking::new(vec![2, 0]).pack_if_safe();
        assert!(!m.is_packed());
    }

    #[test]
    fn packed_and_dense_hash_identically() {
        for tokens in [vec![], vec![1], vec![0, 1, 1], vec![1; 100]] {
            let dense = Marking::new(tokens);
            let packed = dense.clone().pack_if_safe();
            assert!(packed.is_packed());
            assert_eq!(dense.fx_hash(), packed.fx_hash());
            assert_eq!(
                a4a_rt::fx_hash_one(&dense),
                a4a_rt::fx_hash_one(&packed),
                "std Hash must agree across representations"
            );
        }
    }

    #[test]
    fn packed_add_overflow_falls_back_to_dense() {
        let mut m = Marking::new(vec![1, 0]).pack_if_safe();
        assert!(m.is_packed());
        m.checked_add(PlaceId(0), 1).unwrap();
        assert!(!m.is_packed(), "second token forces the dense fallback");
        assert_eq!(m.tokens(PlaceId(0)), 2);
        assert_eq!(m.tokens(PlaceId(1)), 0);
    }

    #[test]
    fn packed_spans_multiple_words() {
        let mut v = vec![0u32; 130];
        v[0] = 1;
        v[64] = 1;
        v[129] = 1;
        let packed = Marking::new(v.clone()).pack_if_safe();
        assert!(packed.is_packed());
        assert_eq!(packed, Marking::new(v));
        assert_eq!(packed.total_tokens(), 3);
        assert_eq!(packed.tokens(PlaceId(64)), 1);
        assert_eq!(packed.tokens(PlaceId(65)), 0);
    }
}
