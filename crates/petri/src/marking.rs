use std::fmt;

use crate::net::PlaceId;

/// A token assignment for every place of a [`crate::PetriNet`].
///
/// Markings are value types: firing a transition produces a fresh marking,
/// leaving the original untouched, so state-space exploration can keep
/// markings as hash-map keys.
///
/// # Examples
///
/// ```
/// use a4a_petri::Marking;
///
/// let m = Marking::new(vec![1, 0, 2]);
/// assert_eq!(m.total_tokens(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Marking {
    tokens: Vec<u32>,
}

impl Marking {
    /// Creates a marking from a per-place token vector.
    pub fn new(tokens: Vec<u32>) -> Self {
        Marking { tokens }
    }

    /// Tokens currently in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to the net this marking was built
    /// for.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.tokens[place.index()]
    }

    /// Number of places covered by this marking.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` for the empty (zero-place) marking.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Sum of tokens over all places.
    pub fn total_tokens(&self) -> u64 {
        self.tokens.iter().map(|&t| u64::from(t)).sum()
    }

    /// Returns `true` when no place holds more than one token.
    pub fn is_safe(&self) -> bool {
        self.tokens.iter().all(|&t| t <= 1)
    }

    /// Raw per-place slice, indexed by [`PlaceId::index`].
    pub fn as_slice(&self) -> &[u32] {
        &self.tokens
    }

    pub(crate) fn add(&mut self, place: PlaceId, weight: u32) {
        let slot = &mut self.tokens[place.index()];
        *slot = slot.checked_add(weight).expect("token overflow");
    }

    pub(crate) fn remove(&mut self, place: PlaceId, weight: u32) {
        let slot = &mut self.tokens[place.index()];
        *slot = slot.checked_sub(weight).expect("token underflow");
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.tokens.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let m = Marking::new(vec![2, 0, 1]);
        assert_eq!(m.tokens(PlaceId(0)), 2);
        assert_eq!(m.tokens(PlaceId(2)), 1);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.total_tokens(), 3);
    }

    #[test]
    fn safety() {
        assert!(Marking::new(vec![1, 0, 1]).is_safe());
        assert!(!Marking::new(vec![2, 0]).is_safe());
    }

    #[test]
    fn mutation_checked() {
        let mut m = Marking::new(vec![1]);
        m.add(PlaceId(0), 2);
        assert_eq!(m.tokens(PlaceId(0)), 3);
        m.remove(PlaceId(0), 3);
        assert_eq!(m.tokens(PlaceId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "token underflow")]
    fn underflow_panics() {
        let mut m = Marking::new(vec![0]);
        m.remove(PlaceId(0), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Marking::new(vec![1, 0, 2]).to_string(), "[1 0 2]");
    }
}
