//! Structural place-invariant analysis.
//!
//! A P-invariant (place invariant) is an integer weighting of places
//! whose weighted token sum is preserved by every transition firing.
//! Invariants certify boundedness structurally: if every place appears
//! in some non-negative invariant, the net is bounded regardless of the
//! state space — the check the A4A flow uses before committing to
//! explicit exploration, and the formal backbone of "the token is
//! conserved in the ring".

use crate::{Marking, PetriNet, PlaceId};

/// A place invariant: integer weights per place with
/// `weights · marking` constant over all reachable markings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceInvariant {
    /// One weight per place, indexed by [`PlaceId::index`].
    pub weights: Vec<i64>,
}

impl PlaceInvariant {
    /// The invariant's weighted token sum for a marking.
    pub fn sum(&self, marking: &Marking) -> i64 {
        self.weights
            .iter()
            .zip(marking.iter())
            .map(|(&w, t)| w * i64::from(t))
            .sum()
    }

    /// Returns `true` when every weight is non-negative (such invariants
    /// bound every place they cover).
    pub fn is_semi_positive(&self) -> bool {
        self.weights.iter().all(|&w| w >= 0)
    }

    /// Places with non-zero weight.
    pub fn support(&self) -> Vec<PlaceId> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .map(|(i, _)| PlaceId(i as u32))
            .collect()
    }
}

impl PetriNet {
    /// The incidence matrix entry for (place, transition):
    /// tokens produced minus tokens consumed when the transition fires
    /// (read arcs contribute nothing).
    pub fn incidence(&self, place: PlaceId, transition: crate::TransitionId) -> i64 {
        let tr = self.transition(transition);
        let produced: i64 = tr
            .produced()
            .iter()
            .filter(|&&(p, _)| p == place)
            .map(|&(_, w)| i64::from(w))
            .sum();
        let consumed: i64 = tr
            .consumed()
            .iter()
            .filter(|&&(p, _)| p == place)
            .map(|&(_, w)| i64::from(w))
            .sum();
        produced - consumed
    }

    /// Checks whether a weight vector is a P-invariant (annihilates the
    /// incidence matrix).
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not have one entry per place.
    pub fn is_place_invariant(&self, weights: &[i64]) -> bool {
        assert_eq!(weights.len(), self.place_count(), "one weight per place");
        self.transition_ids().all(|t| {
            self.place_ids()
                .map(|p| weights[p.index()] * self.incidence(p, t))
                .sum::<i64>()
                == 0
        })
    }

    /// Computes a basis of rational P-invariants (scaled to integers) by
    /// Gaussian elimination over the incidence matrix.
    ///
    /// The result spans the invariant space; individual basis vectors
    /// are not necessarily semi-positive.
    pub fn place_invariants(&self) -> Vec<PlaceInvariant> {
        let np = self.place_count();
        let nt = self.transition_count();
        // Solve xᵀ·C = 0, i.e. Cᵀ·x = 0 with C the |P|×|T| incidence
        // matrix. Build Cᵀ as an nt × np rational matrix (i128 fractions
        // via row scaling is enough: entries are small integers).
        let mut m: Vec<Vec<i128>> = (0..nt)
            .map(|t| {
                (0..np)
                    .map(|p| {
                        i128::from(self.incidence(
                            PlaceId(p as u32),
                            crate::TransitionId(t as u32),
                        ))
                    })
                    .collect()
            })
            .collect();

        // Fraction-free Gaussian elimination, tracking pivot columns.
        let mut pivot_cols = Vec::new();
        let mut rank = 0usize;
        for col in 0..np {
            let Some(pivot_row) = (rank..nt).find(|&r| m[r][col] != 0) else {
                continue;
            };
            m.swap(rank, pivot_row);
            let pivot = m[rank][col];
            for r in 0..nt {
                if r != rank && m[r][col] != 0 {
                    let factor = m[r][col];
                    let pivot_row_copy = m[rank].clone();
                    for (cell, &pv) in m[r].iter_mut().zip(&pivot_row_copy) {
                        *cell = *cell * pivot - pv * factor;
                    }
                    // Keep numbers small: divide the row by its gcd.
                    let g = m[r].iter().fold(0i128, |acc, &x| gcd(acc, x.abs()));
                    if g > 1 {
                        for cell in m[r].iter_mut() {
                            *cell /= g;
                        }
                    }
                }
            }
            pivot_cols.push(col);
            rank += 1;
            if rank == nt {
                break;
            }
        }

        // Free columns parameterise the null space.
        let mut invariants = Vec::new();
        for free in 0..np {
            if pivot_cols.contains(&free) {
                continue;
            }
            // x[free] = 1; back-substitute pivots. Work in rationals:
            // x[pivot_col] = -row[free] / row[pivot_col].
            let mut numer: Vec<i128> = vec![0; np];
            let mut denom: Vec<i128> = vec![1; np];
            numer[free] = 1;
            for (r, &pc) in pivot_cols.iter().enumerate() {
                let a = m[r][free];
                let b = m[r][pc];
                if b != 0 {
                    numer[pc] = -a;
                    denom[pc] = b;
                }
            }
            // Clear denominators.
            let lcm_all = denom.iter().fold(1i128, |acc, &d| lcm(acc, d.abs().max(1)));
            let mut weights: Vec<i64> = (0..np)
                .map(|i| (numer[i] * (lcm_all / denom[i])) as i64)
                .collect();
            // Normalise sign and gcd.
            let g = weights
                .iter()
                .fold(0i64, |acc, &x| gcd64(acc, x.abs()));
            if g > 1 {
                for w in &mut weights {
                    *w /= g;
                }
            }
            let negatives = weights.iter().filter(|&&w| w < 0).count();
            let positives = weights.iter().filter(|&&w| w > 0).count();
            if negatives > positives {
                for w in &mut weights {
                    *w = -*w;
                }
            }
            let inv = PlaceInvariant { weights };
            debug_assert!(self.is_place_invariant(&inv.weights));
            invariants.push(inv);
        }
        invariants
    }

    /// Returns `true` when every place is covered by a semi-positive
    /// invariant in the computed basis — a structural boundedness
    /// certificate (sufficient, not necessary).
    pub fn covered_by_invariants(&self) -> bool {
        let invariants = self.place_invariants();
        self.place_ids().all(|p| {
            invariants
                .iter()
                .any(|inv| inv.is_semi_positive() && inv.weights[p.index()] > 0)
        })
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn gcd64(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd64(b, a % b)
    }
}

fn lcm(a: i128, b: i128) -> i128 {
    a / gcd(a, b).max(1) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetBuilder;

    fn ring(n: usize) -> PetriNet {
        let mut b = NetBuilder::new();
        let places: Vec<_> = (0..n)
            .map(|i| b.place_with_tokens(format!("p{i}"), u32::from(i == 0)))
            .collect();
        for i in 0..n {
            let t = b.transition(format!("t{i}"));
            b.arc_pt(places[i], t);
            b.arc_tp(t, places[(i + 1) % n]);
        }
        b.build()
    }

    #[test]
    fn ring_token_is_conserved() {
        let net = ring(4);
        let invariants = net.place_invariants();
        assert!(!invariants.is_empty());
        // The all-ones vector is an invariant of a ring.
        assert!(net.is_place_invariant(&[1, 1, 1, 1]));
        // The computed basis certifies conservation of the initial sum.
        let m0 = net.initial_marking();
        for inv in &invariants {
            let s0 = inv.sum(&m0);
            let g = net.explore(100).unwrap();
            for s in g.state_ids() {
                assert_eq!(inv.sum(g.marking(s)), s0, "invariant violated");
            }
        }
        assert!(net.covered_by_invariants());
    }

    #[test]
    fn incidence_matrix_entries() {
        let mut b = NetBuilder::new();
        let p = b.place_with_tokens("p", 1);
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_pt(p, t);
        b.arc_tp_weighted(t, q, 3);
        let net = b.build();
        let t0 = crate::TransitionId(0);
        assert_eq!(net.incidence(p, t0), -1);
        assert_eq!(net.incidence(q, t0), 3);
    }

    #[test]
    fn read_arcs_do_not_affect_invariants() {
        let mut b = NetBuilder::new();
        let ctx = b.place_with_tokens("ctx", 1);
        let p = b.place_with_tokens("p", 1);
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_read(ctx, t);
        b.arc_pt(p, t);
        b.arc_tp(t, q);
        let net = b.build();
        assert_eq!(net.incidence(ctx, crate::TransitionId(0)), 0);
        assert!(net.is_place_invariant(&[1, 0, 0]), "ctx alone is invariant");
        assert!(net.is_place_invariant(&[0, 1, 1]), "p+q conserved");
    }

    #[test]
    fn unbounded_net_is_not_covered() {
        let mut b = NetBuilder::new();
        let p = b.place_with_tokens("p", 1);
        let q = b.place("q");
        let t = b.transition("t");
        b.arc_read(p, t);
        b.arc_tp(t, q); // q grows without bound
        let net = b.build();
        assert!(!net.covered_by_invariants());
    }

    #[test]
    fn handshake_has_two_independent_invariants() {
        // Two disjoint 2-rings: invariant space has dimension >= 2.
        let mut b = NetBuilder::new();
        for side in ["a", "b"] {
            let p0 = b.place_with_tokens(format!("{side}0"), 1);
            let p1 = b.place(format!("{side}1"));
            let t0 = b.transition(format!("{side}_t0"));
            let t1 = b.transition(format!("{side}_t1"));
            b.arc_pt(p0, t0);
            b.arc_tp(t0, p1);
            b.arc_pt(p1, t1);
            b.arc_tp(t1, p0);
        }
        let net = b.build();
        let invariants = net.place_invariants();
        assert!(invariants.len() >= 2, "got {}", invariants.len());
        assert!(net.covered_by_invariants());
    }

    #[test]
    fn support_and_semipositivity() {
        let inv = PlaceInvariant {
            weights: vec![1, 0, 2, 0],
        };
        assert!(inv.is_semi_positive());
        assert_eq!(
            inv.support(),
            vec![crate::PlaceId(0), crate::PlaceId(2)]
        );
        let neg = PlaceInvariant {
            weights: vec![1, -1],
        };
        assert!(!neg.is_semi_positive());
    }

    #[test]
    #[should_panic(expected = "one weight per place")]
    fn wrong_length_panics() {
        let net = ring(3);
        let _ = net.is_place_invariant(&[1, 1]);
    }
}
