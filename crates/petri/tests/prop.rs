//! Property-based tests for the Petri-net substrate: random token rings
//! and pipelines, checking conservation, determinism, and invariant
//! algebra.

use a4a_petri::{NetBuilder, PetriNet};
use a4a_rt::prop::{self, Gen, PropResult};
use a4a_rt::{prop_assert, prop_assert_eq};

/// A ring of `n` places with `tokens` initial tokens spread from place 0.
fn ring(n: usize, tokens: u32) -> PetriNet {
    let mut b = NetBuilder::new();
    let places: Vec<_> = (0..n)
        .map(|i| b.place_with_tokens(format!("p{i}"), if i == 0 { tokens } else { 0 }))
        .collect();
    for i in 0..n {
        let t = b.transition(format!("t{i}"));
        b.arc_pt(places[i], t);
        b.arc_tp(t, places[(i + 1) % n]);
    }
    b.build()
}

/// Rings conserve their token count in every reachable marking.
#[test]
fn ring_conserves_tokens() {
    prop::check("ring_conserves_tokens", |g: &mut Gen| -> PropResult {
        let n = g.usize(2..7);
        let tokens = g.u64(1..4) as u32;
        let net = ring(n, tokens);
        let gr = net.explore(200_000).unwrap();
        for s in gr.state_ids() {
            prop_assert_eq!(gr.marking(s).total_tokens(), u64::from(tokens));
        }
        // The all-ones weight vector is always an invariant of a ring.
        let ones = vec![1i64; n];
        prop_assert!(net.is_place_invariant(&ones));
        prop_assert!(net.covered_by_invariants());
        Ok(())
    });
}

/// Exploration is deterministic: two runs give identical graphs.
#[test]
fn exploration_deterministic() {
    prop::check("exploration_deterministic", |g: &mut Gen| -> PropResult {
        let n = g.usize(2..6);
        let tokens = g.u64(1..3) as u32;
        let net = ring(n, tokens);
        let g1 = net.explore(200_000).unwrap();
        let g2 = net.explore(200_000).unwrap();
        prop_assert_eq!(g1.state_count(), g2.state_count());
        for s in g1.state_ids() {
            prop_assert_eq!(g1.marking(s), g2.marking(s));
            prop_assert_eq!(g1.successors(s), g2.successors(s));
        }
        Ok(())
    });
}

/// Firing any enabled transition preserves every computed invariant.
#[test]
fn invariants_survive_any_firing() {
    prop::check("invariants_survive_any_firing", |g: &mut Gen| -> PropResult {
        let n = g.usize(2..6);
        let steps = g.vec(0..30, |g| g.usize(0..8));
        let net = ring(n, 2);
        let invariants = net.place_invariants();
        let mut marking = net.initial_marking();
        let sums: Vec<i64> = invariants.iter().map(|inv| inv.sum(&marking)).collect();
        for pick in steps {
            let enabled = net.enabled(&marking);
            if enabled.is_empty() {
                break;
            }
            let t = enabled[pick % enabled.len()];
            marking = net.fire(t, &marking);
            for (inv, &s0) in invariants.iter().zip(&sums) {
                prop_assert_eq!(inv.sum(&marking), s0);
            }
        }
        Ok(())
    });
}

/// A linear pipeline of length n has exactly n+1 reachable markings
/// (token positions) and one deadlock.
#[test]
fn pipeline_state_count() {
    prop::check("pipeline_state_count", |g: &mut Gen| -> PropResult {
        let n = g.usize(1..10);
        let mut b = NetBuilder::new();
        let places: Vec<_> = (0..=n)
            .map(|i| b.place_with_tokens(format!("p{i}"), u32::from(i == 0)))
            .collect();
        for i in 0..n {
            let t = b.transition(format!("t{i}"));
            b.arc_pt(places[i], t);
            b.arc_tp(t, places[i + 1]);
        }
        let net = b.build();
        let gr = net.explore(10_000).unwrap();
        prop_assert_eq!(gr.state_count(), n + 1);
        prop_assert_eq!(gr.deadlocks().len(), 1);
        // The trace to the deadlock has length n.
        let dead = gr.deadlocks()[0];
        prop_assert_eq!(gr.trace_to(dead).len(), n);
        Ok(())
    });
}

/// Product of k independent toggles has 2^k states.
#[test]
fn independent_components_multiply() {
    prop::check("independent_components_multiply", |g: &mut Gen| -> PropResult {
        let k = g.usize(1..5);
        let mut b = NetBuilder::new();
        for i in 0..k {
            let p0 = b.place_with_tokens(format!("a{i}"), 1);
            let p1 = b.place(format!("b{i}"));
            let t0 = b.transition(format!("t{i}_0"));
            let t1 = b.transition(format!("t{i}_1"));
            b.arc_pt(p0, t0);
            b.arc_tp(t0, p1);
            b.arc_pt(p1, t1);
            b.arc_tp(t1, p0);
        }
        let net = b.build();
        let gr = net.explore(100_000).unwrap();
        prop_assert_eq!(gr.state_count(), 1 << k);
        Ok(())
    });
}

/// Packed and dense representations of the same random safe marking
/// agree on every hash-lookup observable: equality, `fx_hash`, the
/// `std::hash::Hash` stream (via a hashed-set round trip), and the
/// per-place accessors.
#[test]
fn packed_and_dense_markings_agree() {
    use a4a_petri::Marking;
    prop::check("packed_and_dense_markings_agree", |g: &mut Gen| -> PropResult {
        let places = g.usize(0..200);
        let tokens: Vec<u32> = (0..places).map(|_| g.u64(0..2) as u32).collect();
        let dense = Marking::new(tokens.clone());
        let packed = dense.clone().pack_if_safe();
        prop_assert!(packed.is_packed() || places == 0 || !dense.is_safe());
        prop_assert_eq!(&dense, &packed);
        prop_assert_eq!(dense.fx_hash(), packed.fx_hash());
        prop_assert_eq!(dense.len(), packed.len());
        prop_assert_eq!(dense.total_tokens(), packed.total_tokens());
        prop_assert_eq!(
            dense.iter().collect::<Vec<_>>(),
            packed.iter().collect::<Vec<_>>()
        );
        // A set keyed on the std Hash stream must treat them as one key.
        let mut set: a4a_rt::FxHashSet<Marking> = a4a_rt::FxHashSet::default();
        set.insert(dense.clone());
        prop_assert!(set.contains(&packed));
        set.insert(packed.clone());
        prop_assert_eq!(set.len(), 1);
        // Round-tripping back to dense is lossless.
        prop_assert_eq!(packed.to_dense().iter().collect::<Vec<_>>(), tokens);
        Ok(())
    });
}

/// Distinct markings (safe or not) keep distinct interner semantics: an
/// unsafe marking never equals or fx-collides with its safe truncation.
#[test]
fn unsafe_and_safe_markings_stay_distinct() {
    use a4a_petri::Marking;
    prop::check("unsafe_and_safe_stay_distinct", |g: &mut Gen| -> PropResult {
        let places = g.usize(1..64);
        let hot = g.usize(0..places);
        let mut tokens: Vec<u32> = (0..places).map(|_| g.u64(0..2) as u32).collect();
        let safe = Marking::new(tokens.clone()).pack_if_safe();
        tokens[hot] += 2; // now unsafe at `hot`
        let unsafe_m = Marking::new(tokens).pack_if_safe();
        prop_assert!(!unsafe_m.is_packed());
        prop_assert!(safe != unsafe_m);
        prop_assert!(safe.fx_hash() != unsafe_m.fx_hash());
        Ok(())
    });
}
