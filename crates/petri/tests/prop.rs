//! Property-based tests for the Petri-net substrate: random token rings
//! and pipelines, checking conservation, determinism, and invariant
//! algebra.

use a4a_petri::{NetBuilder, PetriNet};
use proptest::prelude::*;

/// A ring of `n` places with `tokens` initial tokens spread from place 0.
fn ring(n: usize, tokens: u32) -> PetriNet {
    let mut b = NetBuilder::new();
    let places: Vec<_> = (0..n)
        .map(|i| b.place_with_tokens(format!("p{i}"), if i == 0 { tokens } else { 0 }))
        .collect();
    for i in 0..n {
        let t = b.transition(format!("t{i}"));
        b.arc_pt(places[i], t);
        b.arc_tp(t, places[(i + 1) % n]);
    }
    b.build()
}

proptest! {
    /// Rings conserve their token count in every reachable marking.
    #[test]
    fn ring_conserves_tokens(n in 2usize..7, tokens in 1u32..4) {
        let net = ring(n, tokens);
        let g = net.explore(200_000).unwrap();
        for s in g.state_ids() {
            prop_assert_eq!(g.marking(s).total_tokens(), u64::from(tokens));
        }
        // The all-ones weight vector is always an invariant of a ring.
        let ones = vec![1i64; n];
        prop_assert!(net.is_place_invariant(&ones));
        prop_assert!(net.covered_by_invariants());
    }

    /// Exploration is deterministic: two runs give identical graphs.
    #[test]
    fn exploration_deterministic(n in 2usize..6, tokens in 1u32..3) {
        let net = ring(n, tokens);
        let g1 = net.explore(200_000).unwrap();
        let g2 = net.explore(200_000).unwrap();
        prop_assert_eq!(g1.state_count(), g2.state_count());
        for s in g1.state_ids() {
            prop_assert_eq!(g1.marking(s), g2.marking(s));
            prop_assert_eq!(g1.successors(s), g2.successors(s));
        }
    }

    /// Firing any enabled transition preserves every computed invariant.
    #[test]
    fn invariants_survive_any_firing(
        n in 2usize..6,
        steps in proptest::collection::vec(0usize..8, 0..30),
    ) {
        let net = ring(n, 2);
        let invariants = net.place_invariants();
        let mut marking = net.initial_marking();
        let sums: Vec<i64> = invariants.iter().map(|inv| inv.sum(&marking)).collect();
        for pick in steps {
            let enabled = net.enabled(&marking);
            if enabled.is_empty() {
                break;
            }
            let t = enabled[pick % enabled.len()];
            marking = net.fire(t, &marking);
            for (inv, &s0) in invariants.iter().zip(&sums) {
                prop_assert_eq!(inv.sum(&marking), s0);
            }
        }
    }

    /// A linear pipeline of length n has exactly n+1 reachable markings
    /// (token positions) and one deadlock.
    #[test]
    fn pipeline_state_count(n in 1usize..10) {
        let mut b = NetBuilder::new();
        let places: Vec<_> = (0..=n)
            .map(|i| b.place_with_tokens(format!("p{i}"), u32::from(i == 0)))
            .collect();
        for i in 0..n {
            let t = b.transition(format!("t{i}"));
            b.arc_pt(places[i], t);
            b.arc_tp(t, places[i + 1]);
        }
        let net = b.build();
        let g = net.explore(10_000).unwrap();
        prop_assert_eq!(g.state_count(), n + 1);
        prop_assert_eq!(g.deadlocks().len(), 1);
        // The trace to the deadlock has length n.
        let dead = g.deadlocks()[0];
        prop_assert_eq!(g.trace_to(dead).len(), n);
    }

    /// Product of k independent toggles has 2^k states.
    #[test]
    fn independent_components_multiply(k in 1usize..5) {
        let mut b = NetBuilder::new();
        for i in 0..k {
            let p0 = b.place_with_tokens(format!("a{i}"), 1);
            let p1 = b.place(format!("b{i}"));
            let t0 = b.transition(format!("t{i}_0"));
            let t1 = b.transition(format!("t{i}_1"));
            b.arc_pt(p0, t0);
            b.arc_tp(t0, p1);
            b.arc_pt(p1, t1);
            b.arc_tp(t1, p0);
        }
        let net = b.build();
        let g = net.explore(100_000).unwrap();
        prop_assert_eq!(g.state_count(), 1 << k);
    }
}
