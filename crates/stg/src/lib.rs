//! Signal Transition Graphs (STGs) — the specification formalism of the
//! A4A flow.
//!
//! An STG is a Petri net whose transitions are labelled with rising (`s+`)
//! and falling (`s-`) edges of interface signals (or with `dummy` events).
//! This crate layers the STG interpretation on [`a4a_petri`]:
//!
//! * [`Stg`] / [`StgBuilder`] — construction, with signal declarations
//!   (input / output / internal) and initial values;
//! * the `.g` (astg) interchange format: [`Stg::parse_g`] /
//!   [`Stg::to_g`];
//! * [`StateGraph`] — the binary-encoded reachability graph, rejecting
//!   inconsistent specifications;
//! * [`verify`] — the sanity checks the paper runs on every module:
//!   consistency, deadlock-freeness, output persistence, USC/CSC, plus
//!   custom invariants (e.g. the PMOS/NMOS short-circuit check);
//! * [`Stg::compose`] — parallel composition synchronising on shared
//!   signals, used to assemble controllers from their modules.
//!
//! # Examples
//!
//! A minimal handshake (`req` in, `ack` out):
//!
//! ```
//! use a4a_stg::StgBuilder;
//!
//! let mut b = StgBuilder::new("handshake");
//! let req = b.input("req", false);
//! let ack = b.output("ack", false);
//! let rp = b.rise(req);
//! let ap = b.rise(ack);
//! let rm = b.fall(req);
//! let am = b.fall(ack);
//! b.connect_marked(am, rp); // token: waiting for req+
//! b.connect(rp, ap);
//! b.connect(ap, rm);
//! b.connect(rm, am);
//! let stg = b.build();
//!
//! let sg = stg.state_graph(1_000)?;
//! assert_eq!(sg.state_count(), 4);
//! let report = stg.verify(&sg);
//! assert!(report.is_clean());
//! # Ok::<(), a4a_stg::StgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compose;
mod dot;
mod error;
mod parser;
pub mod prop_support;
mod signal;
mod stategraph;
#[allow(clippy::module_inception)]
mod stg;
pub mod verify;

pub use error::StgError;
pub use signal::{Edge, Polarity, Signal, SignalId, SignalKind};
pub use stategraph::{SgStateId, StateGraph};
pub use stg::{Label, Stg, StgBuilder};
pub use verify::{CscConflict, PersistenceViolation, VerifyReport};

pub use a4a_petri::{Marking, PetriNet, PlaceId, TransitionId};
