//! Graphviz (DOT) export of STGs and their state graphs — the visual
//! artefacts Workcraft renders in its editor (Figure 4 of the paper).

use std::fmt::Write as _;

use crate::{Label, SgStateId, StateGraph, Stg};

impl Stg {
    /// Renders the STG as Graphviz DOT: transitions as boxes (inputs
    /// outlined, outputs filled, dummies as points), explicit places as
    /// circles, implicit places folded into direct edges.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(&self.name));
        let _ = writeln!(out, "  rankdir=TB; node [fontname=monospace];");
        // Transitions.
        for t in self.net.transition_ids() {
            let name = self.transition_name(t);
            match self.label(t) {
                Label::Dummy => {
                    let _ = writeln!(
                        out,
                        "  t{} [shape=point, xlabel=\"{}\"];",
                        t.index(),
                        escape(&name)
                    );
                }
                Label::Edge(e) => {
                    let sig = self.signal(e.signal);
                    let style = if sig.kind.is_implemented() {
                        "style=filled, fillcolor=lightblue"
                    } else {
                        "style=solid"
                    };
                    let _ = writeln!(
                        out,
                        "  t{} [shape=box, {} , label=\"{}\"];",
                        t.index(),
                        style,
                        escape(&name)
                    );
                }
            }
        }
        // Places: implicit (1 producer, 1 consumer, unweighted) become
        // direct edges.
        for p in self.net.place_ids() {
            let producers: Vec<_> = self
                .net
                .transition_ids()
                .filter(|&t| self.net.transition(t).produced().iter().any(|&(q, _)| q == p))
                .collect();
            let consumers: Vec<_> = self
                .net
                .transition_ids()
                .filter(|&t| self.net.transition(t).consumed().iter().any(|&(q, _)| q == p))
                .collect();
            let readers: Vec<_> = self
                .net
                .transition_ids()
                .filter(|&t| self.net.transition(t).read().iter().any(|&(q, _)| q == p))
                .collect();
            let tokens = self.net.place(p).initial_tokens;
            let implicit =
                producers.len() == 1 && consumers.len() == 1 && readers.is_empty() && tokens <= 1;
            if implicit {
                let style = if tokens == 1 {
                    " [label=\"●\"]"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "  t{} -> t{}{};",
                    producers[0].index(),
                    consumers[0].index(),
                    style
                );
            } else {
                let label = if tokens > 0 {
                    format!("{tokens}")
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "  p{} [shape=circle, label=\"{label}\"];",
                    p.index()
                );
                for t in &producers {
                    let _ = writeln!(out, "  t{} -> p{};", t.index(), p.index());
                }
                for t in &consumers {
                    let _ = writeln!(out, "  p{} -> t{};", p.index(), t.index());
                }
                for t in &readers {
                    let _ = writeln!(
                        out,
                        "  p{} -> t{} [dir=both, arrowtail=odot];",
                        p.index(),
                        t.index()
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

impl StateGraph {
    /// Renders the binary-encoded state graph as DOT, labelling states
    /// with their signal codes and edges with transition names.
    pub fn to_dot(&self, stg: &Stg) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}_sg\" {{", escape(stg.name()));
        let _ = writeln!(out, "  node [shape=ellipse, fontname=monospace];");
        for s in self.state_ids() {
            let code: String = (0..stg.signal_count())
                .rev()
                .map(|i| {
                    if self.code(s) & (1 << i) != 0 {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect();
            let style = if s == SgStateId::INITIAL {
                ", style=bold"
            } else {
                ""
            };
            let _ = writeln!(out, "  q{} [label=\"{}\"{}];", s.index(), code, style);
        }
        for s in self.state_ids() {
            for &(t, succ) in self.successors(s) {
                let _ = writeln!(
                    out,
                    "  q{} -> q{} [label=\"{}\"];",
                    s.index(),
                    succ.index(),
                    escape(&stg.transition_name(t))
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::Stg;

    const HANDSHAKE: &str = "\
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
";

    #[test]
    fn stg_dot_has_all_transitions() {
        let stg = Stg::parse_g(HANDSHAKE).unwrap();
        let dot = stg.to_dot();
        assert!(dot.starts_with("digraph"));
        for name in ["req+", "ack+", "req-", "ack-"] {
            assert!(dot.contains(name), "missing {name}\n{dot}");
        }
        // The marked implicit place renders as a token edge.
        assert!(dot.contains('●'));
        // Output transitions are filled, inputs are not.
        assert!(dot.contains("lightblue"));
    }

    #[test]
    fn state_graph_dot_marks_initial() {
        let stg = Stg::parse_g(HANDSHAKE).unwrap();
        let sg = stg.state_graph(100).unwrap();
        let dot = sg.to_dot(&stg);
        assert!(dot.contains("style=bold"));
        assert_eq!(dot.matches("->").count(), 4, "four firings");
        assert!(dot.contains("\"00\"") && dot.contains("\"11\""));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut b = crate::StgBuilder::new("we\"ird");
        let a = b.input("a", false);
        let up = b.rise(a);
        let down = b.fall(a);
        b.connect_marked(down, up);
        b.connect(up, down);
        let stg = b.build();
        let dot = stg.to_dot();
        assert!(dot.contains("we\\\"ird"));
    }
}
