//! The A4A sanity checks: deadlock-freeness, output persistence, unique
//! and complete state coding, and user-defined safety invariants.
//!
//! Consistency is checked implicitly by [`Stg::state_graph`] — a
//! [`StateGraph`] can only exist for a consistent STG.


use crate::{Edge, SgStateId, SignalId, SignalKind, StateGraph, Stg};

/// An output-persistence violation: an enabled output edge was disabled
/// by another transition firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceViolation {
    /// State in which the output edge was enabled.
    pub state: SgStateId,
    /// The output edge that got disabled.
    pub disabled: Edge,
    /// Name of the transition whose firing disabled it.
    pub by: String,
    /// Firing trace (transition names) from the initial state to `state`.
    pub trace: Vec<String>,
}

/// A state-coding conflict: two states share a binary code but disagree
/// on the excitation of a non-input signal (CSC), or merely on marking
/// (USC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscConflict {
    /// First state.
    pub first: SgStateId,
    /// Second state.
    pub second: SgStateId,
    /// The shared binary code.
    pub code: u64,
    /// Non-input signals whose excitation differs (empty for a pure USC
    /// conflict).
    pub signals: Vec<SignalId>,
}

impl CscConflict {
    /// Returns `true` when this is a complete-state-coding conflict (an
    /// excitation mismatch), not merely a unique-state-coding one.
    pub fn is_csc(&self) -> bool {
        !self.signals.is_empty()
    }
}

/// Result of running the standard checks over a state graph.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Deadlocked states (no enabled transitions).
    pub deadlocks: Vec<SgStateId>,
    /// Output-persistence violations.
    pub persistence: Vec<PersistenceViolation>,
    /// State-coding conflicts (USC and CSC).
    pub coding: Vec<CscConflict>,
}

impl VerifyReport {
    /// Returns `true` when the specification passed every check required
    /// for speed-independent implementation: deadlock-free,
    /// output-persistent, and free of CSC conflicts.
    ///
    /// Pure USC conflicts (same code, same behaviour) are benign for
    /// synthesis and do not fail this predicate.
    pub fn is_clean(&self) -> bool {
        self.deadlocks.is_empty()
            && self.persistence.is_empty()
            && !self.coding.iter().any(CscConflict::is_csc)
    }

    /// Only the CSC conflicts (the ones that block synthesis).
    pub fn csc_conflicts(&self) -> Vec<&CscConflict> {
        self.coding.iter().filter(|c| c.is_csc()).collect()
    }

    /// Renders a human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "deadlocks: {}\npersistence violations: {}\nUSC conflicts: {}\nCSC conflicts: {}\n",
            self.deadlocks.len(),
            self.persistence.len(),
            self.coding.iter().filter(|c| !c.is_csc()).count(),
            self.csc_conflicts().len(),
        ));
        out.push_str(if self.is_clean() {
            "verdict: clean\n"
        } else {
            "verdict: VIOLATIONS FOUND\n"
        });
        out
    }
}

impl Stg {
    /// Runs the standard A4A sanity checks over a previously built state
    /// graph.
    pub fn verify(&self, sg: &StateGraph) -> VerifyReport {
        VerifyReport {
            deadlocks: deadlocks(sg),
            persistence: output_persistence(self, sg),
            coding: coding_conflicts(self, sg),
        }
    }

    /// Checks a user-defined safety invariant over all reachable codes.
    ///
    /// Returns the states whose code violates `invariant` (i.e. where the
    /// predicate returns `false`), e.g. the PMOS/NMOS short-circuit check
    /// `!(gp && gn_as_active)`.
    pub fn check_invariant<F>(&self, sg: &StateGraph, invariant: F) -> Vec<SgStateId>
    where
        F: Fn(u64) -> bool,
    {
        sg.state_ids().filter(|&s| !invariant(sg.code(s))).collect()
    }

    /// Convenience form of [`Stg::check_invariant`]: verifies that two
    /// signals are never simultaneously high in any reachable state.
    ///
    /// This is the paper's "absence of a short circuit in PMOS/NMOS
    /// transistors" property (with the PMOS gate signal active-low in the
    /// real circuit, mutual exclusion of the *on* states is what matters).
    pub fn check_mutual_exclusion(
        &self,
        sg: &StateGraph,
        a: SignalId,
        b: SignalId,
    ) -> Vec<SgStateId> {
        self.check_invariant(sg, |code| {
            !(code & a.mask() != 0 && code & b.mask() != 0)
        })
    }
}

fn deadlocks(sg: &StateGraph) -> Vec<SgStateId> {
    sg.state_ids()
        .filter(|&s| sg.successors(s).is_empty())
        .collect()
}

fn output_persistence(stg: &Stg, sg: &StateGraph) -> Vec<PersistenceViolation> {
    let mut violations = Vec::new();
    for s in sg.state_ids() {
        let enabled = sg.enabled_edges(stg, s);
        let outputs: Vec<Edge> = enabled
            .into_iter()
            .filter(|e| stg.signal(e.signal).kind.is_implemented())
            .collect();
        if outputs.is_empty() {
            continue;
        }
        for &(t, succ) in sg.successors(s) {
            let fired = stg.label(t).edge();
            let after = sg.enabled_edges(stg, succ);
            for &out in &outputs {
                if fired == Some(out) {
                    continue; // the edge itself fired
                }
                // Firing an edge of the same signal counts as the signal
                // making progress (choice between multiple transitions of
                // one edge is not a persistence violation).
                if let Some(f) = fired {
                    if f.signal == out.signal {
                        continue;
                    }
                }
                if !after.contains(&out) {
                    violations.push(PersistenceViolation {
                        state: s,
                        disabled: out,
                        by: stg.transition_name(t),
                        trace: sg
                            .trace_to(s)
                            .into_iter()
                            .map(|t| stg.transition_name(t))
                            .collect(),
                    });
                }
            }
        }
    }
    violations
}

fn coding_conflicts(stg: &Stg, sg: &StateGraph) -> Vec<CscConflict> {
    let non_inputs: Vec<SignalId> = stg
        .signal_ids()
        .filter(|&s| stg.signal(s).kind != SignalKind::Input)
        .collect();
    let mut conflicts = Vec::new();
    let mut by_code: a4a_rt::FxHashMap<u64, Vec<SgStateId>> = sg.states_by_code();
    let mut codes: Vec<u64> = by_code.keys().copied().collect();
    codes.sort_unstable();
    for code in codes {
        let states = by_code.remove(&code).expect("key from map");
        if states.len() < 2 {
            continue;
        }
        for i in 0..states.len() {
            for j in (i + 1)..states.len() {
                let (x, y) = (states[i], states[j]);
                let signals: Vec<SignalId> = non_inputs
                    .iter()
                    .copied()
                    .filter(|&sig| sg.is_excited(stg, x, sig) != sg.is_excited(stg, y, sig))
                    .collect();
                conflicts.push(CscConflict {
                    first: x,
                    second: y,
                    code,
                    signals,
                });
            }
        }
    }
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StgBuilder;

    fn handshake() -> Stg {
        let mut b = StgBuilder::new("hs");
        let req = b.input("req", false);
        let ack = b.output("ack", false);
        let rp = b.rise(req);
        let ap = b.rise(ack);
        let rm = b.fall(req);
        let am = b.fall(ack);
        b.connect_marked(am, rp);
        b.connect(rp, ap);
        b.connect(ap, rm);
        b.connect(rm, am);
        b.build()
    }

    #[test]
    fn clean_handshake() {
        let stg = handshake();
        let sg = stg.state_graph(100).unwrap();
        let report = stg.verify(&sg);
        assert!(report.is_clean(), "{}", report.summary());
        assert!(report.summary().contains("clean"));
    }

    #[test]
    fn deadlock_reported() {
        let mut b = StgBuilder::new("dl");
        let a = b.input("a", false);
        let o = b.output("o", false);
        let ap = b.rise(a);
        let op = b.rise(o);
        let p = b.place_with_tokens("start", 1);
        b.arc_pt(p, ap);
        b.connect(ap, op);
        let stg = b.build();
        let sg = stg.state_graph(100).unwrap();
        let report = stg.verify(&sg);
        assert_eq!(report.deadlocks.len(), 1);
        assert!(!report.is_clean());
    }

    #[test]
    fn input_choice_is_not_a_violation() {
        // Free choice between two *input* edges: allowed.
        let mut b = StgBuilder::new("choice");
        let a = b.input("a", false);
        let c = b.input("c", false);
        let ap = b.rise(a);
        let cp = b.rise(c);
        let p = b.place_with_tokens("choice", 1);
        b.arc_pt(p, ap);
        b.arc_pt(p, cp);
        let stg = b.build();
        let sg = stg.state_graph(100).unwrap();
        let report = stg.verify(&sg);
        assert!(report.persistence.is_empty());
    }

    #[test]
    fn output_disabled_by_input_is_a_violation() {
        // Output o+ competes with input a+ for the same token: firing a+
        // disables o+ -> not output-persistent.
        let mut b = StgBuilder::new("viol");
        let a = b.input("a", false);
        let o = b.output("o", false);
        let ap = b.rise(a);
        let op = b.rise(o);
        let p = b.place_with_tokens("choice", 1);
        b.arc_pt(p, ap);
        b.arc_pt(p, op);
        let stg = b.build();
        let sg = stg.state_graph(100).unwrap();
        let report = stg.verify(&sg);
        assert_eq!(report.persistence.len(), 1);
        let v = &report.persistence[0];
        assert_eq!(v.by, "a+");
        assert_eq!(v.disabled.signal, o);
        assert!(!report.is_clean());
    }

    #[test]
    fn csc_conflict_detected() {
        // Classic CSC problem: a+ -> a- -> b+ -> b- with b output.
        // After a+/a- the code returns to 00 but b+ must now fire:
        // two states with code 00 and different excitation of b.
        let mut b = StgBuilder::new("csc");
        let a = b.input("a", false);
        let o = b.output("b", false);
        let ap = b.rise(a);
        let am = b.fall(a);
        let bp = b.rise(o);
        let bm = b.fall(o);
        b.connect_marked(bm, ap);
        b.connect(ap, am);
        b.connect(am, bp);
        b.connect(bp, bm);
        let stg = b.build();
        let sg = stg.state_graph(100).unwrap();
        let report = stg.verify(&sg);
        let csc = report.csc_conflicts();
        assert_eq!(csc.len(), 1);
        assert_eq!(csc[0].code, 0b00);
        assert_eq!(csc[0].signals, vec![o]);
        assert!(!report.is_clean());
    }

    #[test]
    fn usc_only_conflict_is_benign() {
        // Dummy in the middle duplicates a code without changing
        // excitation of any non-input signal: USC conflict only...
        // Here after o+ the dummy fires, then o- : state after o+ and
        // after dummy both have code 1 and both excite o- ... they have
        // the same excitation, so it's USC-only? Both states excite o
        // (falling) — wait, state after o+ enables dummy only. So the
        // excitation of o differs and it IS a CSC conflict. Build a case
        // where the dummy does not affect outputs: two inputs around it.
        let mut b = StgBuilder::new("usc");
        let a = b.input("a", false);
        let c = b.input("c", false);
        let ap = b.rise(a);
        let am = b.fall(a);
        let d = b.dummy();
        let cp = b.rise(c);
        let cm = b.fall(c);
        b.connect_marked(cm, ap);
        b.connect(ap, am);
        b.connect(am, d);
        b.connect(d, cp);
        b.connect(cp, cm);
        let stg = b.build();
        let sg = stg.state_graph(100).unwrap();
        let report = stg.verify(&sg);
        assert!(report.coding.iter().any(|x| !x.is_csc()));
        assert!(report.is_clean(), "no outputs -> nothing to synthesise");
    }

    #[test]
    fn mutual_exclusion_check() {
        let mut b = StgBuilder::new("mx");
        let gp = b.output("gp", false);
        let gn = b.output("gn", true);
        let gnm = b.fall(gn);
        let gpp = b.rise(gp);
        let gpm = b.fall(gp);
        let gnp = b.rise(gn);
        b.connect_marked(gnp, gnm);
        b.connect(gnm, gpp);
        b.connect(gpp, gpm);
        b.connect(gpm, gnp);
        let stg = b.build();
        let sg = stg.state_graph(100).unwrap();
        assert!(stg.check_mutual_exclusion(&sg, gp, gn).is_empty());
    }

    #[test]
    fn mutual_exclusion_violation_found() {
        let mut b = StgBuilder::new("mx_bad");
        let gp = b.output("gp", false);
        let gn = b.output("gn", true);
        // gp+ fires while gn is still high.
        let gpp = b.rise(gp);
        let gpm = b.fall(gp);
        b.connect_marked(gpm, gpp);
        b.connect(gpp, gpm);
        let stg = b.build();
        let sg = stg.state_graph(100).unwrap();
        let bad = stg.check_mutual_exclusion(&sg, gp, gn);
        assert_eq!(bad.len(), 1, "the state after gp+ has both high");
    }
}
