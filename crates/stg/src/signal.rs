use std::fmt;

/// Index of a signal within its [`crate::Stg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Returns the raw index (also the signal's bit position in state
    /// codes).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The bit mask of this signal within a binary state code.
    pub fn mask(self) -> u64 {
        1u64 << self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig{}", self.0)
    }
}

/// Interface role of a signal, following STG conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Driven by the environment; the controller must tolerate it.
    Input,
    /// Driven by the controller and observable at the interface.
    Output,
    /// Driven by the controller but hidden from the interface (used to
    /// resolve state-coding conflicts).
    Internal,
}

impl SignalKind {
    /// Returns `true` for signals the synthesised circuit must implement
    /// (outputs and internals).
    pub fn is_implemented(self) -> bool {
        !matches!(self, SignalKind::Input)
    }
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SignalKind::Input => "input",
            SignalKind::Output => "output",
            SignalKind::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// A declared interface signal of an STG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    /// Name (unique within the STG).
    pub name: String,
    /// Interface role.
    pub kind: SignalKind,
    /// Value in the initial state.
    pub initial: bool,
}

/// Direction of a signal transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// `s+`: the signal goes from 0 to 1.
    Rising,
    /// `s-`: the signal goes from 1 to 0.
    Falling,
}

impl Polarity {
    /// The value the signal has *after* an edge of this polarity.
    pub fn target_value(self) -> bool {
        matches!(self, Polarity::Rising)
    }

    /// The opposite polarity.
    pub fn opposite(self) -> Polarity {
        match self {
            Polarity::Rising => Polarity::Falling,
            Polarity::Falling => Polarity::Rising,
        }
    }

    /// The suffix used in transition names (`+` or `-`).
    pub fn suffix(self) -> char {
        match self {
            Polarity::Rising => '+',
            Polarity::Falling => '-',
        }
    }
}

impl fmt::Display for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.suffix())
    }
}

/// A signal edge: a (signal, polarity) pair.
///
/// # Examples
///
/// ```
/// use a4a_stg::{Edge, Polarity, SignalId};
///
/// let e = Edge::rising(SignalId::from_index(3));
/// assert_eq!(e.polarity, Polarity::Rising);
/// assert_eq!(e.opposite().polarity, Polarity::Falling);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// The signal that toggles.
    pub signal: SignalId,
    /// The direction of the toggle.
    pub polarity: Polarity,
}

impl Edge {
    /// A rising edge of `signal`.
    pub fn rising(signal: SignalId) -> Edge {
        Edge {
            signal,
            polarity: Polarity::Rising,
        }
    }

    /// A falling edge of `signal`.
    pub fn falling(signal: SignalId) -> Edge {
        Edge {
            signal,
            polarity: Polarity::Falling,
        }
    }

    /// The same signal's edge in the other direction.
    pub fn opposite(self) -> Edge {
        Edge {
            signal: self.signal,
            polarity: self.polarity.opposite(),
        }
    }
}

impl SignalId {
    /// Constructs a signal id from a raw index.
    ///
    /// Exposed for building [`Edge`] values in tests and downstream
    /// crates; ids are only meaningful relative to a specific [`crate::Stg`].
    pub fn from_index(index: usize) -> SignalId {
        SignalId(index as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_semantics() {
        assert!(Polarity::Rising.target_value());
        assert!(!Polarity::Falling.target_value());
        assert_eq!(Polarity::Rising.opposite(), Polarity::Falling);
        assert_eq!(Polarity::Rising.suffix(), '+');
        assert_eq!(Polarity::Falling.to_string(), "-");
    }

    #[test]
    fn signal_mask() {
        assert_eq!(SignalId(0).mask(), 1);
        assert_eq!(SignalId(5).mask(), 32);
    }

    #[test]
    fn kind_implemented() {
        assert!(!SignalKind::Input.is_implemented());
        assert!(SignalKind::Output.is_implemented());
        assert!(SignalKind::Internal.is_implemented());
    }

    #[test]
    fn edge_constructors() {
        let s = SignalId::from_index(2);
        assert_eq!(Edge::rising(s).opposite(), Edge::falling(s));
        assert_eq!(Edge::falling(s).signal.index(), 2);
    }

    #[test]
    fn kind_display() {
        assert_eq!(SignalKind::Input.to_string(), "input");
        assert_eq!(SignalKind::Output.to_string(), "output");
        assert_eq!(SignalKind::Internal.to_string(), "internal");
    }
}
