//! Parallel composition of STGs (the PComp step of the A4A flow).
//!
//! Two STGs are composed by synchronising on their shared signals: every
//! transition of a shared signal in one component fires together with a
//! matching-polarity transition of the same signal in the other. Shared
//! signals must be driven by at most one side (output/internal in one,
//! input in the other); the composed signal keeps the driving side's
//! kind.

use std::collections::HashMap;

use a4a_petri::{NetBuilder, PlaceId, TransitionId};

use crate::{Edge, Label, Polarity, Signal, SignalId, SignalKind, Stg, StgError};

impl Stg {
    /// Parallel composition `self || other`, synchronising on shared
    /// signal names.
    ///
    /// # Errors
    ///
    /// Returns [`StgError::Compose`] when a shared signal is driven by
    /// both components or their initial values disagree.
    ///
    /// # Examples
    ///
    /// Compose a controller with its environment mirror and check the
    /// closed system is deadlock-free:
    ///
    /// ```
    /// use a4a_stg::Stg;
    ///
    /// let ctrl = Stg::parse_g("\
    /// .model ctrl
    /// .inputs req
    /// .outputs ack
    /// .graph
    /// req+ ack+
    /// ack+ req-
    /// req- ack-
    /// ack- req+
    /// .marking { <ack-,req+> }
    /// .end
    /// ")?;
    /// let env = Stg::parse_g("\
    /// .model env
    /// .inputs ack
    /// .outputs req
    /// .graph
    /// req+ ack+
    /// ack+ req-
    /// req- ack-
    /// ack- req+
    /// .marking { <ack-,req+> }
    /// .end
    /// ")?;
    /// let closed = ctrl.compose(&env)?;
    /// let sg = closed.state_graph(1000)?;
    /// assert!(sg.state_ids().all(|s| !sg.successors(s).is_empty()));
    /// # Ok::<(), a4a_stg::StgError>(())
    /// ```
    pub fn compose(&self, other: &Stg) -> Result<Stg, StgError> {
        // 1. Merge signal declarations.
        let mut signals: Vec<Signal> = Vec::new();
        let mut map_a: Vec<SignalId> = Vec::new();
        let mut map_b: Vec<Option<SignalId>> = vec![None; other.signals.len()];
        for (ia, sa) in self.signals.iter().enumerate() {
            let merged = match other.signal_by_name(&sa.name) {
                Some(ib) => {
                    let sb = other.signal(ib);
                    if sb.initial != sa.initial {
                        return Err(StgError::Compose {
                            message: format!(
                                "initial value of shared signal {:?} disagrees ({} vs {})",
                                sa.name, sa.initial, sb.initial
                            ),
                        });
                    }
                    let kind = merge_kinds(&sa.name, sa.kind, sb.kind)?;
                    map_b[ib.index()] = Some(SignalId(signals.len() as u32));
                    Signal {
                        name: sa.name.clone(),
                        kind,
                        initial: sa.initial,
                    }
                }
                None => sa.clone(),
            };
            map_a.push(SignalId(signals.len() as u32));
            signals.push(merged);
            let _ = ia;
        }
        for (ib, sb) in other.signals.iter().enumerate() {
            if map_b[ib].is_none() {
                map_b[ib] = Some(SignalId(signals.len() as u32));
                signals.push(sb.clone());
            }
        }
        if signals.len() > 64 {
            return Err(StgError::Compose {
                message: format!("composition has {} signals; at most 64 supported", signals.len()),
            });
        }
        let shared: Vec<String> = self
            .signals
            .iter()
            .filter(|s| other.signal_by_name(&s.name).is_some())
            .map(|s| s.name.clone())
            .collect();

        // 2. Places: disjoint union with prefixed names.
        let mut net = NetBuilder::new();
        let mut places_a: Vec<PlaceId> = Vec::new();
        let mut places_b: Vec<PlaceId> = Vec::new();
        for p in self.net.place_ids() {
            let pl = self.net.place(p);
            places_a.push(net.place_with_tokens(format!("A.{}", pl.name), pl.initial_tokens));
        }
        for p in other.net.place_ids() {
            let pl = other.net.place(p);
            places_b.push(net.place_with_tokens(format!("B.{}", pl.name), pl.initial_tokens));
        }

        // 3. Transitions.
        let mut labels: Vec<Label> = Vec::new();
        let mut name_counts: HashMap<String, u32> = HashMap::new();
        let fresh_name = |base: String, counts: &mut HashMap<String, u32>| -> String {
            let n = counts.entry(base.clone()).or_insert(0);
            *n += 1;
            if *n == 1 {
                base
            } else {
                format!("{base}.{n}")
            }
        };
        let is_shared_a = |t: TransitionId| -> Option<(SignalId, Polarity)> {
            match self.label(t) {
                Label::Edge(e) if shared.contains(&self.signal(e.signal).name) => {
                    Some((e.signal, e.polarity))
                }
                _ => None,
            }
        };

        let add_arcs = |net: &mut NetBuilder,
                            nt: TransitionId,
                            src: &Stg,
                            t: TransitionId,
                            place_map: &[PlaceId]| {
            let tr = src.net.transition(t);
            for &(p, w) in tr.consumed() {
                net.arc_pt_weighted(place_map[p.index()], nt, w);
            }
            for &(p, w) in tr.produced() {
                net.arc_tp_weighted(nt, place_map[p.index()], w);
            }
            for &(p, w) in tr.read() {
                net.arc_read_weighted(place_map[p.index()], nt, w);
            }
        };

        // Local (non-shared) transitions of A.
        for t in self.net.transition_ids() {
            if is_shared_a(t).is_some() {
                continue;
            }
            let label = match self.label(t) {
                Label::Dummy => Label::Dummy,
                Label::Edge(e) => Label::Edge(Edge {
                    signal: map_a[e.signal.index()],
                    polarity: e.polarity,
                }),
            };
            let name = fresh_name(self.transition_name(t), &mut name_counts);
            let nt = net.transition(name);
            labels.push(label);
            add_arcs(&mut net, nt, self, t, &places_a);
        }
        // Local transitions of B.
        for t in other.net.transition_ids() {
            let local = !matches!(other.label(t),
                Label::Edge(e) if shared.contains(&other.signal(e.signal).name));
            if !local {
                continue;
            }
            let label = match other.label(t) {
                Label::Dummy => Label::Dummy,
                Label::Edge(e) => Label::Edge(Edge {
                    signal: map_b[e.signal.index()].expect("mapped"),
                    polarity: e.polarity,
                }),
            };
            let name = fresh_name(other.transition_name(t), &mut name_counts);
            let nt = net.transition(name);
            labels.push(label);
            add_arcs(&mut net, nt, other, t, &places_b);
        }
        // Synchronised products for shared signals.
        for ta in self.net.transition_ids() {
            let Some((sig_a, pol_a)) = is_shared_a(ta) else {
                continue;
            };
            let name_a = &self.signal(sig_a).name;
            let sig_b = other.signal_by_name(name_a).expect("shared");
            for tb in other.transitions_of(sig_b) {
                let Label::Edge(eb) = other.label(tb) else {
                    continue;
                };
                if eb.polarity != pol_a {
                    continue;
                }
                let label = Label::Edge(Edge {
                    signal: map_a[sig_a.index()],
                    polarity: pol_a,
                });
                let name = fresh_name(self.transition_name(ta), &mut name_counts);
                let nt = net.transition(name);
                labels.push(label);
                add_arcs(&mut net, nt, self, ta, &places_a);
                add_arcs(&mut net, nt, other, tb, &places_b);
            }
        }

        Ok(Stg {
            name: format!("{}||{}", self.name, other.name),
            net: net.build(),
            signals,
            labels,
        })
    }

    /// Hides a signal: turns it into an internal signal of the composed
    /// system (commonly applied to handshake wires after composition).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this STG or names an input
    /// signal (inputs cannot be hidden — nothing would drive them).
    pub fn hide(&self, id: SignalId) -> Stg {
        assert!(
            self.signal(id).kind != SignalKind::Input,
            "cannot hide input signal {}",
            self.signal(id).name
        );
        self.with_signal_kind(id, SignalKind::Internal)
    }
}

fn merge_kinds(name: &str, a: SignalKind, b: SignalKind) -> Result<SignalKind, StgError> {
    use SignalKind::*;
    match (a, b) {
        (Input, Input) => Ok(Input),
        (Input, k) | (k, Input) => Ok(k),
        _ => Err(StgError::Compose {
            message: format!("signal {name:?} is driven by both components"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake(name: &str, in_sig: &str, out_sig: &str, swap: bool) -> Stg {
        // A 4-phase handshake where `in_sig` leads if !swap.
        let mut b = crate::StgBuilder::new(name);
        let i = b.input(in_sig, false);
        let o = b.output(out_sig, false);
        let (lead, follow) = if swap { (o, i) } else { (i, o) };
        let lp = b.rise(lead);
        let fp = b.rise(follow);
        let lm = b.fall(lead);
        let fm = b.fall(follow);
        b.connect_marked(fm, lp);
        b.connect(lp, fp);
        b.connect(fp, lm);
        b.connect(lm, fm);
        b.build()
    }

    #[test]
    fn closed_composition_behaves_like_one_handshake() {
        let ctrl = handshake("ctrl", "req", "ack", false);
        let env = handshake("env", "ack", "req", true); // env drives req
        let closed = ctrl.compose(&env).unwrap();
        assert_eq!(closed.signal_count(), 2);
        let req = closed.signal_by_name("req").unwrap();
        let ack = closed.signal_by_name("ack").unwrap();
        assert_eq!(closed.signal(req).kind, SignalKind::Output, "env drives req");
        assert_eq!(closed.signal(ack).kind, SignalKind::Output);
        let sg = closed.state_graph(1000).unwrap();
        assert_eq!(sg.state_count(), 4);
        assert!(sg.state_ids().all(|s| !sg.successors(s).is_empty()));
    }

    #[test]
    fn disjoint_signals_interleave() {
        let a = handshake("a", "x", "y", false);
        let b = handshake("b", "u", "v", false);
        let c = a.compose(&b).unwrap();
        assert_eq!(c.signal_count(), 4);
        let sg = c.state_graph(1000).unwrap();
        assert_eq!(sg.state_count(), 16, "4 x 4 product");
    }

    #[test]
    fn shared_inputs_synchronise() {
        // Two observers of the same environment input `x`.
        let a = handshake("a", "x", "y", false);
        let mut bb = crate::StgBuilder::new("b");
        let x = bb.input("x", false);
        let z = bb.output("z", false);
        let xp = bb.rise(x);
        let zp = bb.rise(z);
        let xm = bb.fall(x);
        let zm = bb.fall(z);
        bb.connect_marked(zm, xp);
        bb.connect(xp, zp);
        bb.connect(zp, xm);
        bb.connect(xm, zm);
        let b = bb.build();
        let c = a.compose(&b).unwrap();
        let shared = c.signal_by_name("x").unwrap();
        assert_eq!(c.signal(shared).kind, SignalKind::Input, "still external");
        let sg = c.state_graph(10_000).unwrap();
        // Both outputs react to the same synchronised x.
        let y = c.signal_by_name("y").unwrap();
        let z = c.signal_by_name("z").unwrap();
        let mut saw_both = false;
        for s in sg.state_ids() {
            let code = sg.code(s);
            saw_both |= code & y.mask() != 0 && code & z.mask() != 0;
        }
        assert!(saw_both, "y and z both follow x");
    }

    #[test]
    fn output_clash_rejected() {
        let a = handshake("a", "x", "y", false);
        let b = handshake("b", "x", "y", false);
        let err = a.compose(&b).unwrap_err();
        assert!(matches!(err, StgError::Compose { .. }));
    }

    #[test]
    fn initial_value_mismatch_rejected() {
        let a = handshake("a", "x", "y", false);
        let mut bb = crate::StgBuilder::new("b");
        let y = bb.input("y", true); // disagrees with a's y=false
        let z = bb.output("z", false);
        let yp = bb.fall(y);
        let zp = bb.rise(z);
        bb.connect_marked(zp, yp);
        bb.connect(yp, zp);
        let b = bb.build();
        let err = a.compose(&b).unwrap_err();
        assert!(matches!(err, StgError::Compose { .. }));
    }

    #[test]
    fn hide_turns_output_internal() {
        let a = handshake("a", "x", "y", false);
        let y = a.signal_by_name("y").unwrap();
        let hidden = a.hide(y);
        assert_eq!(hidden.signal(y).kind, SignalKind::Internal);
    }

    #[test]
    #[should_panic(expected = "cannot hide input")]
    fn hide_input_panics() {
        let a = handshake("a", "x", "y", false);
        let x = a.signal_by_name("x").unwrap();
        let _ = a.hide(x);
    }

    #[test]
    fn composition_name() {
        let a = handshake("a", "x", "y", false);
        let b = handshake("b", "u", "v", false);
        assert_eq!(a.compose(&b).unwrap().name(), "a||b");
    }
}
