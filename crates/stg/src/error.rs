use std::error::Error;
use std::fmt;

/// Errors raised while building, parsing, or exploring an STG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StgError {
    /// The specification is inconsistent: an edge fires against the
    /// current value of its signal (e.g. `s+` while `s` is already 1).
    Inconsistent {
        /// The offending signal name.
        signal: String,
        /// The offending transition name.
        transition: String,
        /// A firing sequence (transition names) leading to the violation.
        trace: Vec<String>,
    },
    /// State-space exploration exceeded its budget.
    StateLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// The caller asked for more states than the 32-bit state id space
    /// can number; ids would silently wrap past 2^32.
    LimitOverflow {
        /// The limit that was requested.
        limit: usize,
    },
    /// A reachable firing overflowed a place's token counter.
    TokenOverflow {
        /// Name of the overflowing place.
        place: String,
        /// Name of the firing transition.
        transition: String,
    },
    /// A `.g` file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Two STGs could not be composed.
    Compose {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::Inconsistent {
                signal,
                transition,
                trace,
            } => write!(
                f,
                "inconsistent STG: {transition} fires while {signal} already holds its target value (trace: {})",
                trace.join(", ")
            ),
            StgError::StateLimit { limit } => {
                write!(f, "state graph exceeds limit of {limit} states")
            }
            StgError::LimitOverflow { limit } => write!(
                f,
                "state limit {limit} exceeds the 2^32-1 ids a state id can number"
            ),
            StgError::TokenOverflow { place, transition } => write!(
                f,
                "firing {transition} overflows the token counter of place {place}"
            ),
            StgError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            StgError::Compose { message } => write!(f, "composition error: {message}"),
        }
    }
}

impl Error for StgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StgError::Inconsistent {
            signal: "uv".into(),
            transition: "uv+".into(),
            trace: vec!["uv+".into(), "uv+".into()],
        };
        assert!(e.to_string().contains("inconsistent"));
        assert!(e.to_string().contains("uv+, uv+"));
        assert!(StgError::StateLimit { limit: 5 }.to_string().contains('5'));
        let p = StgError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 3"));
        let c = StgError::Compose {
            message: "clash".into(),
        };
        assert!(c.to_string().contains("clash"));
    }
}
