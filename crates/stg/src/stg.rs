use std::collections::HashMap;
use std::fmt;

use a4a_petri::{NetBuilder, PetriNet, PlaceId, TransitionId};

use crate::{Edge, Polarity, Signal, SignalId, SignalKind};

/// Label of an STG transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// A signal edge (`s+` / `s-`).
    Edge(Edge),
    /// A dummy (unobservable) event used for structuring.
    Dummy,
}

impl Label {
    /// The edge, if this label is one.
    pub fn edge(self) -> Option<Edge> {
        match self {
            Label::Edge(e) => Some(e),
            Label::Dummy => None,
        }
    }
}

/// A Signal Transition Graph: a Petri net with signal-edge labels.
///
/// Construct with [`StgBuilder`] or parse from the `.g` format with
/// [`Stg::parse_g`]. The underlying net is exposed read-only through
/// [`Stg::net`].
#[derive(Debug, Clone)]
pub struct Stg {
    pub(crate) name: String,
    pub(crate) net: PetriNet,
    pub(crate) signals: Vec<Signal>,
    /// One label per transition, indexed by [`TransitionId::index`].
    pub(crate) labels: Vec<Label>,
}

impl Stg {
    /// Returns a builder.
    pub fn builder(name: impl Into<String>) -> StgBuilder {
        StgBuilder::new(name)
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying Petri net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// All declared signals in id order.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Metadata of one signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this STG.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.index()]
    }

    /// Finds a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals
            .iter()
            .position(|s| s.name == name)
            .map(|i| SignalId(i as u32))
    }

    /// Iterates over all signal ids.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> {
        (0..self.signals.len() as u32).map(SignalId)
    }

    /// Signal ids of a given kind.
    pub fn signals_of_kind(&self, kind: SignalKind) -> Vec<SignalId> {
        self.signal_ids()
            .filter(|&s| self.signal(s).kind == kind)
            .collect()
    }

    /// The label of transition `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not belong to this STG.
    pub fn label(&self, t: TransitionId) -> Label {
        self.labels[t.index()]
    }

    /// All transitions labelled with an edge of `signal`.
    pub fn transitions_of(&self, signal: SignalId) -> Vec<TransitionId> {
        self.net
            .transition_ids()
            .filter(|&t| matches!(self.labels[t.index()], Label::Edge(e) if e.signal == signal))
            .collect()
    }

    /// The initial binary state code (bit `i` = initial value of signal
    /// `i`).
    pub fn initial_code(&self) -> u64 {
        let mut code = 0u64;
        for (i, s) in self.signals.iter().enumerate() {
            if s.initial {
                code |= 1u64 << i;
            }
        }
        code
    }

    /// Renders a transition name such as `uv+` or `dum7`.
    pub fn transition_name(&self, t: TransitionId) -> String {
        self.net.transition(t).name.clone()
    }

    /// Formats a state code as a string of `0`/`1` in signal order, e.g.
    /// `uv=1 gp=0`.
    pub fn format_code(&self, code: u64) -> String {
        self.signals
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}={}", s.name, (code >> i) & 1))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Returns a copy with a signal's kind changed (e.g. exposing an
    /// internal signal, or hiding an output when composing).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this STG.
    pub fn with_signal_kind(&self, id: SignalId, kind: SignalKind) -> Stg {
        let mut copy = self.clone();
        copy.signals[id.index()].kind = kind;
        copy
    }
}

impl fmt::Display for Stg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stg {} ({} signals, {} places, {} transitions)",
            self.name,
            self.signals.len(),
            self.net.place_count(),
            self.net.transition_count()
        )
    }
}

/// Incremental builder for [`Stg`].
///
/// The builder wraps a [`NetBuilder`] and adds signal bookkeeping plus the
/// conveniences used throughout the controller specifications:
///
/// * [`StgBuilder::rise`] / [`StgBuilder::fall`] create labelled
///   transitions with conventional names (`sig+`, `sig+/2`, ...);
/// * [`StgBuilder::connect`] inserts an implicit place between two
///   transitions; [`StgBuilder::connect_marked`] additionally puts the
///   initial token there.
#[derive(Debug, Default)]
pub struct StgBuilder {
    name: String,
    net: NetBuilder,
    signals: Vec<Signal>,
    labels: Vec<Label>,
    /// Per-(signal, polarity) occurrence counter for name generation.
    occurrences: HashMap<(SignalId, Polarity), u32>,
    dummy_count: u32,
    implicit_place_count: u32,
}

impl StgBuilder {
    /// Creates a builder for a model called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        StgBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    fn add_signal(&mut self, name: impl Into<String>, kind: SignalKind, initial: bool) -> SignalId {
        let name = name.into();
        assert!(
            !self.signals.iter().any(|s| s.name == name),
            "duplicate signal name {name:?}"
        );
        assert!(self.signals.len() < 64, "at most 64 signals are supported");
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Signal {
            name,
            kind,
            initial,
        });
        id
    }

    /// Declares an input signal with its initial value.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or more than 64 signals.
    pub fn input(&mut self, name: impl Into<String>, initial: bool) -> SignalId {
        self.add_signal(name, SignalKind::Input, initial)
    }

    /// Declares an output signal with its initial value.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or more than 64 signals.
    pub fn output(&mut self, name: impl Into<String>, initial: bool) -> SignalId {
        self.add_signal(name, SignalKind::Output, initial)
    }

    /// Declares an internal signal with its initial value.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or more than 64 signals.
    pub fn internal(&mut self, name: impl Into<String>, initial: bool) -> SignalId {
        self.add_signal(name, SignalKind::Internal, initial)
    }

    /// Adds a transition labelled with `edge`.
    ///
    /// Transition names follow the STG convention: the first occurrence of
    /// `sig+` is named `sig+`, later ones `sig+/2`, `sig+/3`, ...
    pub fn edge(&mut self, edge: Edge) -> TransitionId {
        assert!(
            edge.signal.index() < self.signals.len(),
            "unknown signal {}",
            edge.signal
        );
        let count = self
            .occurrences
            .entry((edge.signal, edge.polarity))
            .or_insert(0);
        *count += 1;
        let base = format!(
            "{}{}",
            self.signals[edge.signal.index()].name,
            edge.polarity.suffix()
        );
        let name = if *count == 1 {
            base
        } else {
            format!("{base}/{count}")
        };
        let t = self.net.transition(name);
        self.labels.push(Label::Edge(edge));
        t
    }

    /// Adds a rising-edge transition of `signal`.
    pub fn rise(&mut self, signal: SignalId) -> TransitionId {
        self.edge(Edge::rising(signal))
    }

    /// Adds a falling-edge transition of `signal`.
    pub fn fall(&mut self, signal: SignalId) -> TransitionId {
        self.edge(Edge::falling(signal))
    }

    /// Adds a dummy transition.
    pub fn dummy(&mut self) -> TransitionId {
        self.dummy_count += 1;
        let t = self.net.transition(format!("dum{}", self.dummy_count));
        self.labels.push(Label::Dummy);
        t
    }

    /// Adds an explicit place with zero initial tokens.
    pub fn place(&mut self, name: impl Into<String>) -> PlaceId {
        self.net.place(name)
    }

    /// Adds an explicit place holding `tokens` initially.
    pub fn place_with_tokens(&mut self, name: impl Into<String>, tokens: u32) -> PlaceId {
        self.net.place_with_tokens(name, tokens)
    }

    /// Adds a place→transition arc.
    pub fn arc_pt(&mut self, p: PlaceId, t: TransitionId) {
        self.net.arc_pt(p, t);
    }

    /// Adds a transition→place arc.
    pub fn arc_tp(&mut self, t: TransitionId, p: PlaceId) {
        self.net.arc_tp(t, p);
    }

    /// Adds a read (test) arc.
    pub fn arc_read(&mut self, p: PlaceId, t: TransitionId) {
        self.net.arc_read(p, t);
    }

    /// Inserts an implicit place between `from` and `to`, so `to` becomes
    /// causally dependent on `from`. Returns the place.
    pub fn connect(&mut self, from: TransitionId, to: TransitionId) -> PlaceId {
        self.connect_with_tokens(from, to, 0)
    }

    /// Like [`StgBuilder::connect`] but the place carries the initial
    /// token, i.e. `to` is initially enabled (once its other predecessor
    /// places are marked too).
    pub fn connect_marked(&mut self, from: TransitionId, to: TransitionId) -> PlaceId {
        self.connect_with_tokens(from, to, 1)
    }

    fn connect_with_tokens(&mut self, from: TransitionId, to: TransitionId, tokens: u32) -> PlaceId {
        self.implicit_place_count += 1;
        let name = format!("<{},{}>#{}", from.index(), to.index(), self.implicit_place_count);
        let p = self.net.place_with_tokens(name, tokens);
        self.net.arc_tp(from, p);
        self.net.arc_pt(p, to);
        p
    }

    /// Finalises the builder.
    pub fn build(self) -> Stg {
        Stg {
            name: self.name,
            net: self.net.build(),
            signals: self.signals,
            labels: self.labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_names_transitions_conventionally() {
        let mut b = StgBuilder::new("m");
        let a = b.input("a", false);
        let t1 = b.rise(a);
        let t2 = b.rise(a);
        let t3 = b.fall(a);
        let stg = b.build();
        assert_eq!(stg.transition_name(t1), "a+");
        assert_eq!(stg.transition_name(t2), "a+/2");
        assert_eq!(stg.transition_name(t3), "a-");
    }

    #[test]
    fn initial_code_packs_bits() {
        let mut b = StgBuilder::new("m");
        b.input("a", true);
        b.output("b", false);
        b.internal("c", true);
        let stg = b.build();
        assert_eq!(stg.initial_code(), 0b101);
        assert_eq!(stg.format_code(0b101), "a=1 b=0 c=1");
    }

    #[test]
    fn signals_of_kind() {
        let mut b = StgBuilder::new("m");
        let a = b.input("a", false);
        let o = b.output("o", false);
        let i = b.internal("i", false);
        let stg = b.build();
        assert_eq!(stg.signals_of_kind(SignalKind::Input), vec![a]);
        assert_eq!(stg.signals_of_kind(SignalKind::Output), vec![o]);
        assert_eq!(stg.signals_of_kind(SignalKind::Internal), vec![i]);
    }

    #[test]
    fn transitions_of_filters_by_signal() {
        let mut b = StgBuilder::new("m");
        let a = b.input("a", false);
        let o = b.output("o", false);
        let t1 = b.rise(a);
        let _t2 = b.rise(o);
        let t3 = b.fall(a);
        let stg = b.build();
        assert_eq!(stg.transitions_of(a), vec![t1, t3]);
    }

    #[test]
    fn connect_inserts_place() {
        let mut b = StgBuilder::new("m");
        let a = b.input("a", false);
        let t1 = b.rise(a);
        let t2 = b.fall(a);
        b.connect_marked(t2, t1);
        b.connect(t1, t2);
        let stg = b.build();
        assert_eq!(stg.net().place_count(), 2);
        let m0 = stg.net().initial_marking();
        assert!(stg.net().is_enabled(t1, &m0));
        assert!(!stg.net().is_enabled(t2, &m0));
    }

    #[test]
    fn dummy_labels() {
        let mut b = StgBuilder::new("m");
        let d = b.dummy();
        let stg = b.build();
        assert_eq!(stg.label(d), Label::Dummy);
        assert_eq!(stg.label(d).edge(), None);
    }

    #[test]
    #[should_panic(expected = "duplicate signal name")]
    fn duplicate_signal_panics() {
        let mut b = StgBuilder::new("m");
        b.input("a", false);
        b.output("a", false);
    }

    #[test]
    fn with_signal_kind_changes_role() {
        let mut b = StgBuilder::new("m");
        let i = b.internal("x", false);
        let stg = b.build();
        let exposed = stg.with_signal_kind(i, SignalKind::Output);
        assert_eq!(exposed.signal(i).kind, SignalKind::Output);
        assert_eq!(stg.signal(i).kind, SignalKind::Internal, "original untouched");
    }
}
