//! Generators of structurally-valid random STGs, shared by the
//! property-based tests of this crate and of `a4a-synth`.
//!
//! The generator produces *handshake pipelines*: a ring of alternating
//! input/output signals where each signal's rising and falling edges are
//! threaded in sequence. Such STGs are consistent, live, deadlock-free,
//! and output-persistent by construction, which makes them a useful
//! fuzzing corpus for the whole flow (anything the checker flags on them
//! is a checker bug; anything synthesis mangles is a synthesis bug).

use crate::{SignalKind, Stg, StgBuilder};

/// Builds a handshake-pipeline STG over `n` signals (n ≥ 1), where
/// signal `i` is an output iff bit `i` of `output_mask` is set (signal 0
/// is forced to input so an environment exists).
///
/// The event cycle is `s0+ s1+ … s(n-1)+ s0- s1- … s(n-1)-` with each
/// event enabling the next, closed into a ring.
pub fn pipeline_stg(n: usize, output_mask: u64) -> Stg {
    pipeline_stg_with_prefix(n, output_mask, "s")
}

/// [`pipeline_stg`] with a custom signal-name prefix, so two pipelines
/// can be composed without sharing signals.
pub fn pipeline_stg_with_prefix(n: usize, output_mask: u64, prefix: &str) -> Stg {
    assert!((1..=16).contains(&n), "1..=16 signals");
    let mut b = StgBuilder::new(format!("pipeline{n}"));
    let signals: Vec<_> = (0..n)
        .map(|i| {
            let name = format!("{prefix}{i}");
            if i > 0 && output_mask & (1 << i) != 0 {
                b.output(name, false)
            } else {
                b.input(name, false)
            }
        })
        .collect();
    let rises: Vec<_> = signals.iter().map(|&s| b.rise(s)).collect();
    let falls: Vec<_> = signals.iter().map(|&s| b.fall(s)).collect();
    // Thread: rises in order, then falls in order, ring-closed.
    let chain: Vec<_> = rises.iter().chain(falls.iter()).copied().collect();
    for w in chain.windows(2) {
        b.connect(w[0], w[1]);
    }
    b.connect_marked(chain[chain.len() - 1], chain[0]);
    b.build()
}

/// The number of non-input signals in a pipeline built with
/// [`pipeline_stg`] (handy for test assertions).
pub fn pipeline_output_count(stg: &Stg) -> usize {
    stg.signals()
        .iter()
        .filter(|s| s.kind != SignalKind::Input)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_is_clean_for_any_mask() {
        for n in 1..6 {
            for mask in 0..(1u64 << n) {
                let stg = pipeline_stg(n, mask);
                let sg = stg
                    .state_graph(100_000)
                    .unwrap_or_else(|e| panic!("n={n} mask={mask:#b}: {e}"));
                assert_eq!(sg.state_count(), 2 * n, "ring of 2n events");
                let report = stg.verify(&sg);
                assert!(
                    report.deadlocks.is_empty() && report.persistence.is_empty(),
                    "n={n} mask={mask:#b}: {}",
                    report.summary()
                );
            }
        }
    }

    #[test]
    fn output_count_matches_mask() {
        let stg = pipeline_stg(4, 0b1010);
        assert_eq!(pipeline_output_count(&stg), 2);
        let stg = pipeline_stg(3, 0b0001); // bit 0 forced input
        assert_eq!(pipeline_output_count(&stg), 0);
    }
}
