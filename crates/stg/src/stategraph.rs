use std::fmt;
use std::hash::{Hash, Hasher};

use a4a_petri::{Marking, TransitionId};
use a4a_rt::{FxHashMap, FxHasher, IdTable};

use crate::{Edge, Label, SignalId, Stg, StgError};

/// Index of a state within a [`StateGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SgStateId(pub(crate) u32);

impl SgStateId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The initial state of every state graph.
    pub const INITIAL: SgStateId = SgStateId(0);
}

impl fmt::Display for SgStateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The binary-encoded state graph of an STG.
///
/// Each state couples a Petri-net marking with the binary code of all
/// signals (bit `i` = value of signal `i`). Construction fails on the
/// first consistency violation, so holding a `StateGraph` is proof that
/// the STG is *consistent*.
///
/// # Examples
///
/// ```
/// use a4a_stg::StgBuilder;
///
/// let mut b = StgBuilder::new("toggle");
/// let a = b.output("a", false);
/// let up = b.rise(a);
/// let down = b.fall(a);
/// b.connect_marked(down, up);
/// b.connect(up, down);
/// let stg = b.build();
/// let sg = stg.state_graph(100)?;
/// assert_eq!(sg.state_count(), 2);
/// assert_eq!(sg.code(a4a_stg::SgStateId::INITIAL), 0);
/// # Ok::<(), a4a_stg::StgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StateGraph {
    markings: Vec<Marking>,
    codes: Vec<u64>,
    successors: Vec<Vec<(TransitionId, SgStateId)>>,
    /// For each state, a (transition, predecessor) pair on a shortest path
    /// from the initial state; `None` for the initial state.
    parents: Vec<Option<(TransitionId, SgStateId)>>,
}

impl StateGraph {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.markings.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.successors.iter().map(Vec::len).sum()
    }

    /// The marking of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this graph.
    pub fn marking(&self, state: SgStateId) -> &Marking {
        &self.markings[state.index()]
    }

    /// The binary signal code of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this graph.
    pub fn code(&self, state: SgStateId) -> u64 {
        self.codes[state.index()]
    }

    /// The value of `signal` in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this graph.
    pub fn value(&self, state: SgStateId, signal: SignalId) -> bool {
        self.code(state) & signal.mask() != 0
    }

    /// Outgoing edges of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this graph.
    pub fn successors(&self, state: SgStateId) -> &[(TransitionId, SgStateId)] {
        &self.successors[state.index()]
    }

    /// Iterates over all states in discovery order.
    pub fn state_ids(&self) -> impl Iterator<Item = SgStateId> {
        (0..self.markings.len() as u32).map(SgStateId)
    }

    /// A shortest firing trace (transition ids) from the initial state to
    /// `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not belong to this graph.
    pub fn trace_to(&self, state: SgStateId) -> Vec<TransitionId> {
        let mut trace = Vec::new();
        let mut cur = state;
        while let Some((t, prev)) = self.parents[cur.index()] {
            trace.push(t);
            cur = prev;
        }
        trace.reverse();
        trace
    }

    /// Signal edges enabled in `state` (via any enabled transition), with
    /// the transitions realising them collapsed away. Dummy transitions do
    /// not contribute.
    pub fn enabled_edges(&self, stg: &Stg, state: SgStateId) -> Vec<Edge> {
        let mut edges: Vec<Edge> = Vec::new();
        for &(t, _) in self.successors(state) {
            if let Label::Edge(e) = stg.label(t) {
                if !edges.contains(&e) {
                    edges.push(e);
                }
            }
        }
        edges
    }

    /// Returns `true` when `signal` is *excited* in `state`: an edge of
    /// the signal is enabled, so its next value differs from its current
    /// value.
    ///
    /// For states where a dummy transition is enabled this considers only
    /// directly enabled edges (the controller STGs in this repository keep
    /// dummies out of excitation regions).
    pub fn is_excited(&self, stg: &Stg, state: SgStateId, signal: SignalId) -> bool {
        self.enabled_edges(stg, state)
            .iter()
            .any(|e| e.signal == signal)
    }

    /// The "next value" of `signal` in `state`: its current value, flipped
    /// if the signal is excited.
    pub fn next_value(&self, stg: &Stg, state: SgStateId, signal: SignalId) -> bool {
        let cur = self.value(state, signal);
        if self.is_excited(stg, state, signal) {
            !cur
        } else {
            cur
        }
    }

    /// Replays a firing trace given as transition names (e.g. from a
    /// verification report) and returns the state reached — the
    /// Workcraft-style interactive trace debugger in API form.
    ///
    /// # Errors
    ///
    /// Returns the index of the first step that is not enabled (or names
    /// an unknown transition) together with a description.
    pub fn replay(&self, stg: &Stg, trace: &[&str]) -> Result<SgStateId, (usize, String)> {
        let mut state = SgStateId::INITIAL;
        for (i, name) in trace.iter().enumerate() {
            let t = stg
                .net()
                .transition_by_name(name)
                .ok_or_else(|| (i, format!("unknown transition {name:?}")))?;
            let next = self
                .successors(state)
                .iter()
                .find(|&&(tt, _)| tt == t)
                .map(|&(_, s)| s)
                .ok_or_else(|| {
                    (
                        i,
                        format!(
                            "{name} not enabled in {state} (enabled: {})",
                            self.successors(state)
                                .iter()
                                .map(|&(tt, _)| stg.transition_name(tt))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    )
                })?;
            state = next;
        }
        Ok(state)
    }

    /// Groups states by binary code; used by the USC/CSC checks and the
    /// synthesiser. Per-code state lists are in discovery order.
    pub fn states_by_code(&self) -> FxHashMap<u64, Vec<SgStateId>> {
        let mut map: FxHashMap<u64, Vec<SgStateId>> = FxHashMap::default();
        for s in self.state_ids() {
            map.entry(self.code(s)).or_default().push(s);
        }
        map
    }
}

/// Frontiers narrower than this are expanded inline (the pool's
/// bookkeeping would dominate the handful of vector ops per state).
const PAR_FRONTIER_MIN: usize = 8;

/// One enabled firing out of a frontier state: the transition plus
/// either the successor key or the fault it commits.
type Firing = (TransitionId, Result<(Marking, u64), FireFault>);

/// A fault committed by firing a transition, detected during expansion
/// and surfaced in merge order so all thread counts report the same one.
#[derive(Debug, Clone)]
enum FireFault {
    /// The edge toggles a signal that already holds its target value.
    Inconsistent,
    /// The firing overflowed a place's token counter.
    Overflow(a4a_petri::TokenOverflow),
}

/// The interner hash of a (marking, code) state: the marking's canonical
/// fx stream extended by the code word.
fn state_hash(marking: &Marking, code: u64) -> u64 {
    let mut h = FxHasher::default();
    marking.hash(&mut h);
    h.write_u64(code);
    h.finish()
}

impl Stg {
    /// Builds the binary-encoded state graph on the global thread pool
    /// ([`a4a_rt::Pool::global`]).
    ///
    /// State numbering is breadth-first discovery order and is
    /// *identical for every thread count*: each BFS level occupies a
    /// contiguous id range, levels are expanded in parallel but merged
    /// sequentially in (parent id, transition id) order — exactly the
    /// order the sequential loop discovers successors in. Consistency
    /// violations and the state limit also trip at the same firing, so
    /// errors (including their traces) are bit-identical too.
    ///
    /// # Errors
    ///
    /// * [`StgError::Inconsistent`] if any reachable firing toggles a
    ///   signal that already holds the edge's target value;
    /// * [`StgError::StateLimit`] if more than `max_states` states are
    ///   reachable.
    pub fn state_graph(&self, max_states: usize) -> Result<StateGraph, StgError> {
        self.state_graph_with(a4a_rt::Pool::global(), max_states)
    }

    /// [`Stg::state_graph`] on an explicit pool — the entry point the
    /// differential tests use to compare thread counts in-process.
    ///
    /// The initial marking is packed ([`Marking::pack_if_safe`]), so
    /// exploration of safe nets interns word-sized keys.
    ///
    /// # Errors
    ///
    /// As for [`Stg::state_graph`].
    pub fn state_graph_with(
        &self,
        pool: &a4a_rt::Pool,
        max_states: usize,
    ) -> Result<StateGraph, StgError> {
        self.state_graph_from(pool, self.net.initial_marking().pack_if_safe(), max_states)
    }

    /// [`Stg::state_graph_with`] on the dense (`Vec<u32>`) marking
    /// representation — the reference engine the packed-vs-reference
    /// differential suite compares against. Every observable (state
    /// numbering, edge order, error trip points) is bit-identical to the
    /// packed fast path.
    ///
    /// # Errors
    ///
    /// As for [`Stg::state_graph`].
    pub fn state_graph_ref_with(
        &self,
        pool: &a4a_rt::Pool,
        max_states: usize,
    ) -> Result<StateGraph, StgError> {
        self.state_graph_from(pool, self.net.initial_marking(), max_states)
    }

    /// The engine behind both entry points: exploration keeps whatever
    /// representation `initial` has.
    fn state_graph_from(
        &self,
        pool: &a4a_rt::Pool,
        initial: Marking,
        max_states: usize,
    ) -> Result<StateGraph, StgError> {
        if max_states > u32::MAX as usize {
            return Err(StgError::LimitOverflow { limit: max_states });
        }
        // Interner: (marking, code) states live once, in the parallel
        // arenas below; the table maps fx-hash → id and equality checks
        // go through the arenas.
        let mut table = IdTable::new();
        let mut markings: Vec<Marking> = Vec::new();
        let mut codes: Vec<u64> = Vec::new();
        let mut successors: Vec<Vec<(TransitionId, SgStateId)>> = Vec::new();
        let mut parents: Vec<Option<(TransitionId, SgStateId)>> = Vec::new();

        table.insert(state_hash(&initial, self.initial_code()), 0);
        markings.push(initial);
        codes.push(self.initial_code());
        successors.push(Vec::new());
        parents.push(None);

        // Level-synchronised BFS (see `PetriNet::explore_with` for the
        // determinism argument): expand one completed level in
        // parallel, merge sequentially in id order. Faults are carried
        // through the merge, not raised during expansion, so the firing
        // they surface at is the same for every thread count.
        let mut level_start = 0usize;
        // Sequential expansion reuses one successor scratch buffer; the
        // parallel path necessarily materialises one list per state to
        // ship results between threads.
        let mut scratch: Vec<Firing> = Vec::new();
        while level_start < markings.len() {
            let level_end = markings.len();
            // Firing outcomes depend only on the parent (marking, code)
            // pair, so they are computable without the index.
            let expand = |marking: &Marking, code: u64, out: &mut Vec<Firing>| {
                for t in self.net.transition_ids() {
                    if !self.net.is_enabled(t, marking) {
                        continue;
                    }
                    let next_code = match self.labels[t.index()] {
                        Label::Dummy => code,
                        Label::Edge(e) => {
                            let cur = code & e.signal.mask() != 0;
                            if cur == e.polarity.target_value() {
                                // Fires against current value.
                                out.push((t, Err(FireFault::Inconsistent)));
                                continue;
                            }
                            code ^ e.signal.mask()
                        }
                    };
                    out.push((t, match self.net.try_fire(t, marking) {
                        Ok(next) => Ok((next, next_code)),
                        Err(e) => Err(FireFault::Overflow(e)),
                    }));
                }
            };
            if pool.threads() <= 1 || level_end - level_start < PAR_FRONTIER_MIN {
                for i in level_start..level_end {
                    scratch.clear();
                    expand(&markings[i], codes[i], &mut scratch);
                    let firings = std::mem::take(&mut scratch);
                    self.merge_firings(
                        SgStateId(i as u32),
                        firings.iter().cloned(),
                        max_states,
                        &mut table,
                        &mut markings,
                        &mut codes,
                        &mut successors,
                        &mut parents,
                    )?;
                    scratch = firings;
                }
            } else {
                let expanded: Vec<Vec<Firing>> =
                    pool.par_map_range(level_start..level_end, |i| {
                        let mut out = Vec::new();
                        expand(&markings[i], codes[i], &mut out);
                        out
                    });
                for (offset, firings) in expanded.into_iter().enumerate() {
                    self.merge_firings(
                        SgStateId((level_start + offset) as u32),
                        firings.into_iter(),
                        max_states,
                        &mut table,
                        &mut markings,
                        &mut codes,
                        &mut successors,
                        &mut parents,
                    )?;
                }
            }
            level_start = level_end;
        }
        Ok(StateGraph {
            markings,
            codes,
            successors,
            parents,
        })
    }

    /// Merges one state's firing outcomes into the graph in transition
    /// order — the single code path both the sequential and parallel
    /// engines fund their determinism contract with.
    #[allow(clippy::too_many_arguments)]
    fn merge_firings(
        &self,
        current: SgStateId,
        firings: impl Iterator<Item = Firing>,
        max_states: usize,
        table: &mut IdTable,
        markings: &mut Vec<Marking>,
        codes: &mut Vec<u64>,
        successors: &mut Vec<Vec<(TransitionId, SgStateId)>>,
        parents: &mut Vec<Option<(TransitionId, SgStateId)>>,
    ) -> Result<(), StgError> {
        for (t, outcome) in firings {
            let (next, next_code) = match outcome {
                Err(FireFault::Inconsistent) => {
                    let e = match self.labels[t.index()] {
                        Label::Edge(e) => e,
                        Label::Dummy => unreachable!("dummy cannot be inconsistent"),
                    };
                    let mut trace: Vec<String> =
                        self.trace_names(parents, current).into_iter().collect();
                    trace.push(self.transition_name(t));
                    return Err(StgError::Inconsistent {
                        signal: self.signal(e.signal).name.clone(),
                        transition: self.transition_name(t),
                        trace,
                    });
                }
                Err(FireFault::Overflow(e)) => {
                    return Err(StgError::TokenOverflow {
                        place: self.net.place(e.place).name.clone(),
                        transition: self.net.transition(e.transition).name.clone(),
                    });
                }
                Ok(key) => key,
            };
            let hash = state_hash(&next, next_code);
            let next_id = match table.get(hash, |id| {
                codes[id as usize] == next_code && markings[id as usize] == next
            }) {
                Some(id) => SgStateId(id),
                None => {
                    if markings.len() >= max_states {
                        return Err(StgError::StateLimit { limit: max_states });
                    }
                    let id = SgStateId(markings.len() as u32);
                    table.insert(hash, id.0);
                    markings.push(next);
                    codes.push(next_code);
                    successors.push(Vec::new());
                    parents.push(Some((t, current)));
                    id
                }
            };
            successors[current.index()].push((t, next_id));
        }
        Ok(())
    }

    fn trace_names(
        &self,
        parents: &[Option<(TransitionId, SgStateId)>],
        state: SgStateId,
    ) -> Vec<String> {
        let mut trace = Vec::new();
        let mut cur = state;
        while let Some((t, prev)) = parents[cur.index()] {
            trace.push(self.transition_name(t));
            cur = prev;
        }
        trace.reverse();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StgBuilder;

    fn handshake() -> Stg {
        let mut b = StgBuilder::new("hs");
        let req = b.input("req", false);
        let ack = b.output("ack", false);
        let rp = b.rise(req);
        let ap = b.rise(ack);
        let rm = b.fall(req);
        let am = b.fall(ack);
        b.connect_marked(am, rp);
        b.connect(rp, ap);
        b.connect(ap, rm);
        b.connect(rm, am);
        b.build()
    }

    #[test]
    fn handshake_state_graph() {
        let stg = handshake();
        let sg = stg.state_graph(100).unwrap();
        assert_eq!(sg.state_count(), 4);
        assert_eq!(sg.edge_count(), 4);
        // Codes cycle 00 -> 01(req) -> 11 -> 10 -> 00.
        let codes: Vec<u64> = sg.state_ids().map(|s| sg.code(s)).collect();
        assert_eq!(codes, vec![0b00, 0b01, 0b11, 0b10]);
    }

    #[test]
    fn excitation_and_next_value() {
        let stg = handshake();
        let req = stg.signal_by_name("req").unwrap();
        let ack = stg.signal_by_name("ack").unwrap();
        let sg = stg.state_graph(100).unwrap();
        let s0 = SgStateId::INITIAL;
        assert!(sg.is_excited(&stg, s0, req));
        assert!(!sg.is_excited(&stg, s0, ack));
        assert!(sg.next_value(&stg, s0, req));
        assert!(!sg.next_value(&stg, s0, ack));
    }

    #[test]
    fn inconsistent_stg_rejected() {
        // Two consecutive rises of the same signal.
        let mut b = StgBuilder::new("bad");
        let a = b.input("a", false);
        let t1 = b.rise(a);
        let t2 = b.rise(a);
        b.connect_marked(t2, t1);
        b.connect(t1, t2);
        let stg = b.build();
        let err = stg.state_graph(100).unwrap_err();
        match err {
            StgError::Inconsistent {
                signal,
                transition,
                trace,
            } => {
                assert_eq!(signal, "a");
                assert_eq!(transition, "a+/2");
                assert_eq!(trace, vec!["a+".to_string(), "a+/2".to_string()]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn initially_wrong_polarity_rejected() {
        let mut b = StgBuilder::new("bad2");
        let a = b.input("a", true); // already 1
        let t1 = b.rise(a); // rising edge against value 1
        let t2 = b.fall(a);
        b.connect_marked(t2, t1);
        b.connect(t1, t2);
        let stg = b.build();
        // Initially only t1 can fire but a=1.
        // t2 requires a token from t1 so the first firing is the violation...
        // Actually connect_marked(t2->t1) marks the place before t1.
        let err = stg.state_graph(100).unwrap_err();
        assert!(matches!(err, StgError::Inconsistent { .. }));
    }

    #[test]
    fn state_limit_respected() {
        let stg = handshake();
        let err = stg.state_graph(2).unwrap_err();
        assert_eq!(err, StgError::StateLimit { limit: 2 });
    }

    #[test]
    fn trace_to_reconstructs_path() {
        let stg = handshake();
        let sg = stg.state_graph(100).unwrap();
        let last = SgStateId(3);
        let names: Vec<String> = sg
            .trace_to(last)
            .into_iter()
            .map(|t| stg.transition_name(t))
            .collect();
        assert_eq!(names, vec!["req+", "ack+", "req-"]);
    }

    #[test]
    fn dummy_preserves_code() {
        let mut b = StgBuilder::new("dummy");
        let a = b.output("a", false);
        let up = b.rise(a);
        let d = b.dummy();
        let down = b.fall(a);
        b.connect_marked(down, up);
        b.connect(up, d);
        b.connect(d, down);
        let stg = b.build();
        let sg = stg.state_graph(100).unwrap();
        assert_eq!(sg.state_count(), 3);
        // State after a+ and state after dummy share the code 1.
        let by_code = sg.states_by_code();
        assert_eq!(by_code[&1].len(), 2);
    }

    #[test]
    fn replay_follows_traces() {
        let stg = handshake();
        let sg = stg.state_graph(100).unwrap();
        let s = sg.replay(&stg, &["req+", "ack+"]).unwrap();
        assert_eq!(sg.code(s), 0b11);
        // Replaying a reported trace lands where trace_to points.
        let target = SgStateId(3);
        let names: Vec<String> = sg
            .trace_to(target)
            .into_iter()
            .map(|t| stg.transition_name(t))
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        assert_eq!(sg.replay(&stg, &refs).unwrap(), target);
        // Errors carry the failing step.
        let err = sg.replay(&stg, &["ack+"]).unwrap_err();
        assert_eq!(err.0, 0);
        assert!(err.1.contains("not enabled"));
        let err = sg.replay(&stg, &["zzz"]).unwrap_err();
        assert!(err.1.contains("unknown"));
    }

    #[test]
    fn states_by_code_groups() {
        let stg = handshake();
        let sg = stg.state_graph(100).unwrap();
        let by_code = sg.states_by_code();
        assert_eq!(by_code.len(), 4, "all codes distinct in a handshake");
    }
}
