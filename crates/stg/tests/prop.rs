//! Property-based tests: random handshake-pipeline STGs stay clean
//! through every transformation the crate offers.

use a4a_rt::prop::{self, Gen, PropResult};
use a4a_rt::{prop_assert, prop_assert_eq, prop_assume};
use a4a_stg::prop_support::{pipeline_stg, pipeline_stg_with_prefix};
use a4a_stg::{SignalKind, Stg};

/// Pipelines are consistent, deadlock-free and persistent for any
/// output assignment.
#[test]
fn pipelines_verify_clean() {
    prop::check("pipelines_verify_clean", |g: &mut Gen| -> PropResult {
        let n = g.usize(1..8);
        let mask = g.any_u64();
        let stg = pipeline_stg(n, mask);
        let sg = stg.state_graph(1_000_000).unwrap();
        prop_assert_eq!(sg.state_count(), 2 * n);
        let report = stg.verify(&sg);
        prop_assert!(report.deadlocks.is_empty());
        prop_assert!(report.persistence.is_empty());
        Ok(())
    });
}

/// `.g` round trips preserve the state graph exactly.
#[test]
fn g_round_trip_preserves_behaviour() {
    prop::check("g_round_trip_preserves_behaviour", |g: &mut Gen| -> PropResult {
        let n = g.usize(1..8);
        let mask = g.any_u64();
        let stg = pipeline_stg(n, mask);
        let text = stg.to_g();
        let back = Stg::parse_g(&text).unwrap();
        let sg1 = stg.state_graph(1_000_000).unwrap();
        let sg2 = back.state_graph(1_000_000).unwrap();
        prop_assert_eq!(sg1.state_count(), sg2.state_count());
        prop_assert_eq!(sg1.edge_count(), sg2.edge_count());
        prop_assert_eq!(back.signal_count(), stg.signal_count());
        // Initial values inferred from the text agree with the original.
        for (a, b) in stg.signals().iter().zip(back.signals()) {
            prop_assert_eq!(a.initial, b.initial, "signal {}", &a.name);
        }
        Ok(())
    });
}

/// A second round trip is a fixed point (normal form).
#[test]
fn g_format_reaches_fixed_point() {
    prop::check("g_format_reaches_fixed_point", |g: &mut Gen| -> PropResult {
        let n = g.usize(1..6);
        let mask = g.any_u64();
        let stg = pipeline_stg(n, mask);
        let once = Stg::parse_g(&stg.to_g()).unwrap();
        let twice = Stg::parse_g(&once.to_g()).unwrap();
        prop_assert_eq!(once.to_g(), twice.to_g());
        Ok(())
    });
}

/// Composing two disjoint pipelines multiplies their state spaces.
#[test]
fn disjoint_composition_multiplies() {
    prop::check("disjoint_composition_multiplies", |g: &mut Gen| -> PropResult {
        let na = g.usize(1..5);
        let nb = g.usize(1..5);
        let a = pipeline_stg(na, u64::MAX);
        let b = pipeline_stg_with_prefix(nb, u64::MAX, "t");
        let c = a.compose(&b).unwrap();
        let sg = c.state_graph(1_000_000).unwrap();
        prop_assert_eq!(sg.state_count(), (2 * na) * (2 * nb));
        Ok(())
    });
}

/// Hiding any output keeps the state graph size and the checks
/// clean.
#[test]
fn hide_preserves_behaviour() {
    prop::check("hide_preserves_behaviour", |g: &mut Gen| -> PropResult {
        let n = g.usize(2..7);
        let stg = pipeline_stg(n, u64::MAX);
        let out = stg
            .signal_ids()
            .find(|&s| stg.signal(s).kind == SignalKind::Output);
        prop_assume!(out.is_some());
        let hidden = stg.hide(out.unwrap());
        let sg = hidden.state_graph(1_000_000).unwrap();
        prop_assert_eq!(sg.state_count(), 2 * n);
        prop_assert!(hidden.verify(&sg).persistence.is_empty());
        Ok(())
    });
}

/// The parser is total: arbitrary input either parses or returns an
/// error — it never panics.
#[test]
fn parser_never_panics() {
    prop::check("parser_never_panics", |g: &mut Gen| -> PropResult {
        let text = g.printable_string(0..301);
        let _ = Stg::parse_g(&text);
        Ok(())
    });
}

/// Structured fuzz: valid-looking directives with junk bodies also
/// never panic.
#[test]
fn parser_never_panics_structured() {
    prop::check("parser_never_panics_structured", |g: &mut Gen| -> PropResult {
        let tokens = g.vec(0..40, |g| g.string_of("abc+/<>,{}.-", 1..7));
        let mut text = String::from(".model f\n.inputs a b\n.outputs c\n.graph\n");
        for chunk in tokens.chunks(3) {
            text.push_str(&chunk.join(" "));
            text.push('\n');
        }
        text.push_str(".marking { }\n.end\n");
        let _ = Stg::parse_g(&text);
        Ok(())
    });
}

/// DOT output mentions every transition exactly once as a node
/// label.
#[test]
fn dot_mentions_all_transitions() {
    prop::check("dot_mentions_all_transitions", |g: &mut Gen| -> PropResult {
        let n = g.usize(1..6);
        let mask = g.any_u64();
        let stg = pipeline_stg(n, mask);
        let dot = stg.to_dot();
        for t in stg.net().transition_ids() {
            let name = stg.transition_name(t);
            prop_assert!(dot.contains(&name), "missing {}", name);
        }
        Ok(())
    });
}
