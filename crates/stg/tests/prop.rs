//! Property-based tests: random handshake-pipeline STGs stay clean
//! through every transformation the crate offers.

use a4a_stg::prop_support::{pipeline_stg, pipeline_stg_with_prefix};
use a4a_stg::{SignalKind, Stg};
use proptest::prelude::*;

proptest! {
    /// Pipelines are consistent, deadlock-free and persistent for any
    /// output assignment.
    #[test]
    fn pipelines_verify_clean(n in 1usize..8, mask in any::<u64>()) {
        let stg = pipeline_stg(n, mask);
        let sg = stg.state_graph(1_000_000).unwrap();
        prop_assert_eq!(sg.state_count(), 2 * n);
        let report = stg.verify(&sg);
        prop_assert!(report.deadlocks.is_empty());
        prop_assert!(report.persistence.is_empty());
    }

    /// `.g` round trips preserve the state graph exactly.
    #[test]
    fn g_round_trip_preserves_behaviour(n in 1usize..8, mask in any::<u64>()) {
        let stg = pipeline_stg(n, mask);
        let text = stg.to_g();
        let back = Stg::parse_g(&text).unwrap();
        let sg1 = stg.state_graph(1_000_000).unwrap();
        let sg2 = back.state_graph(1_000_000).unwrap();
        prop_assert_eq!(sg1.state_count(), sg2.state_count());
        prop_assert_eq!(sg1.edge_count(), sg2.edge_count());
        prop_assert_eq!(back.signal_count(), stg.signal_count());
        // Initial values inferred from the text agree with the original.
        for (a, b) in stg.signals().iter().zip(back.signals()) {
            prop_assert_eq!(a.initial, b.initial, "signal {}", &a.name);
        }
    }

    /// A second round trip is a fixed point (normal form).
    #[test]
    fn g_format_reaches_fixed_point(n in 1usize..6, mask in any::<u64>()) {
        let stg = pipeline_stg(n, mask);
        let once = Stg::parse_g(&stg.to_g()).unwrap();
        let twice = Stg::parse_g(&once.to_g()).unwrap();
        prop_assert_eq!(once.to_g(), twice.to_g());
    }

    /// Composing two disjoint pipelines multiplies their state spaces.
    #[test]
    fn disjoint_composition_multiplies(na in 1usize..5, nb in 1usize..5) {
        let a = pipeline_stg(na, u64::MAX);
        let b = pipeline_stg_with_prefix(nb, u64::MAX, "t");
        let c = a.compose(&b).unwrap();
        let sg = c.state_graph(1_000_000).unwrap();
        prop_assert_eq!(sg.state_count(), (2 * na) * (2 * nb));
    }

    /// Hiding any output keeps the state graph size and the checks
    /// clean.
    #[test]
    fn hide_preserves_behaviour(n in 2usize..7) {
        let stg = pipeline_stg(n, u64::MAX);
        let out = stg
            .signal_ids()
            .find(|&s| stg.signal(s).kind == SignalKind::Output);
        prop_assume!(out.is_some());
        let hidden = stg.hide(out.unwrap());
        let sg = hidden.state_graph(1_000_000).unwrap();
        prop_assert_eq!(sg.state_count(), 2 * n);
        prop_assert!(hidden.verify(&sg).persistence.is_empty());
    }

    /// The parser is total: arbitrary input either parses or returns an
    /// error — it never panics.
    #[test]
    fn parser_never_panics(text in "\\PC{0,300}") {
        let _ = Stg::parse_g(&text);
    }

    /// Structured fuzz: valid-looking directives with junk bodies also
    /// never panic.
    #[test]
    fn parser_never_panics_structured(
        tokens in proptest::collection::vec("[a-c+/<>,{}.-]{1,6}", 0..40),
    ) {
        let mut text = String::from(".model f\n.inputs a b\n.outputs c\n.graph\n");
        for chunk in tokens.chunks(3) {
            text.push_str(&chunk.join(" "));
            text.push('\n');
        }
        text.push_str(".marking { }\n.end\n");
        let _ = Stg::parse_g(&text);
    }

    /// DOT output mentions every transition exactly once as a node
    /// label.
    #[test]
    fn dot_mentions_all_transitions(n in 1usize..6, mask in any::<u64>()) {
        let stg = pipeline_stg(n, mask);
        let dot = stg.to_dot();
        for t in stg.net().transition_ids() {
            let name = stg.transition_name(t);
            prop_assert!(dot.contains(&name), "missing {}", name);
        }
    }
}
