use std::fmt;

use a4a_sim::SimError;

use crate::CoilModel;

/// Conduction state of one phase's power stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchState {
    /// High-side PMOS conducting: the coil charges from `V_in`.
    PmosOn,
    /// Low-side NMOS conducting: the coil free-wheels to ground.
    NmosOn,
    /// Both transistors off: body diodes conduct until the coil current
    /// reaches zero (discontinuous conduction).
    #[default]
    Off,
}

/// Electrical parameters of the multiphase buck power stage.
///
/// Defaults put the converter in the paper's operating regime: a 5 V
/// input, 3.3 V target, four phases with 4.7 µH coils, and a load around
/// half an ampere.
#[derive(Debug, Clone, PartialEq)]
pub struct BuckParams {
    /// Input supply voltage (V).
    pub vin: f64,
    /// Number of phases.
    pub phases: usize,
    /// Per-phase coil model.
    pub coil: CoilModel,
    /// Output capacitance (F).
    pub cap: f64,
    /// Load resistance (Ω); can be stepped at run time with
    /// [`Buck::set_load`].
    pub rload: f64,
    /// PMOS on-resistance (Ω).
    pub rdson_p: f64,
    /// NMOS on-resistance (Ω).
    pub rdson_n: f64,
    /// Body-diode forward drop (V).
    pub vdiode: f64,
}

impl Default for BuckParams {
    fn default() -> Self {
        BuckParams {
            vin: 5.0,
            phases: 4,
            coil: CoilModel::coilcraft(4.7),
            cap: 330e-9,
            rload: 6.0,
            rdson_p: 0.15,
            rdson_n: 0.12,
            vdiode: 0.6,
        }
    }
}

impl BuckParams {
    /// Replaces the coil model (used by the Figure 7 inductance sweeps).
    pub fn with_coil(mut self, coil: CoilModel) -> Self {
        self.coil = coil;
        self
    }

    /// Replaces the nominal load resistance.
    pub fn with_load(mut self, rload: f64) -> Self {
        self.rload = rload;
        self
    }

    /// Replaces the phase count.
    pub fn with_phases(mut self, phases: usize) -> Self {
        self.phases = phases;
        self
    }
}

/// Piecewise-linear ODE model of the analog buck.
///
/// State: per-phase coil currents and the output capacitor voltage.
/// Integration is explicit midpoint (RK2) with discontinuous-conduction
/// clamping; the step size is chosen by the caller (the mixed-signal
/// testbench subdivides steps at digital event boundaries).
#[derive(Debug, Clone)]
pub struct Buck {
    params: BuckParams,
    switches: Vec<SwitchState>,
    current: Vec<f64>,
    voltage: f64,
    time: f64,
    /// Cumulative energy drawn from the input supply (J).
    energy_in: f64,
    /// Cumulative energy delivered to the load (J).
    energy_out: f64,
    /// RK2 scratch buffers, reused across steps so the integration hot
    /// path is allocation-free (the testbench takes ~20k sub-0.5 ns
    /// steps per 10 µs run). Contents are meaningless between steps.
    k1_i: Vec<f64>,
    mid_i: Vec<f64>,
    k2_i: Vec<f64>,
}

impl Buck {
    /// Creates a buck at rest: zero coil currents, zero output voltage,
    /// all switches off.
    ///
    /// # Panics
    ///
    /// Panics if the parameter set is non-physical (no phases,
    /// non-positive or non-finite component values); see
    /// [`Buck::try_new`] for the fallible variant.
    pub fn new(params: BuckParams) -> Self {
        match Self::try_new(params) {
            Ok(buck) => buck,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Buck::new`]: a non-physical parameter set — zero
    /// phases, or any NaN, infinite, or wrong-sign component value — is
    /// reported as [`SimError::InvalidParameter`] naming the offending
    /// field. Note that NaN fails every comparison, so an `assert!(x >
    /// 0.0)`-style check catches it too; the explicit finiteness checks
    /// here additionally reject infinities and cover the fields
    /// (on-resistances, diode drop, coil resistances) that may be zero.
    pub fn try_new(params: BuckParams) -> Result<Self, SimError> {
        if params.phases == 0 {
            return Err(SimError::InvalidParameter {
                what: "phase count",
                value: 0.0,
            });
        }
        let positive = [
            ("vin (V)", params.vin),
            ("cap (F)", params.cap),
            ("rload (Ohm)", params.rload),
            ("coil inductance (H)", params.coil.inductance),
        ];
        for (what, value) in positive {
            if !(value.is_finite() && value > 0.0) {
                return Err(SimError::InvalidParameter { what, value });
            }
        }
        let non_negative = [
            ("rdson_p (Ohm)", params.rdson_p),
            ("rdson_n (Ohm)", params.rdson_n),
            ("vdiode (V)", params.vdiode),
            ("coil dcr (Ohm)", params.coil.dcr),
            ("coil esr_hf (Ohm)", params.coil.esr_hf),
        ];
        for (what, value) in non_negative {
            if !(value.is_finite() && value >= 0.0) {
                return Err(SimError::InvalidParameter { what, value });
            }
        }
        Ok(Buck {
            switches: vec![SwitchState::Off; params.phases],
            current: vec![0.0; params.phases],
            voltage: 0.0,
            k1_i: Vec::with_capacity(params.phases),
            mid_i: Vec::with_capacity(params.phases),
            k2_i: Vec::with_capacity(params.phases),
            params,
            time: 0.0,
            energy_in: 0.0,
            energy_out: 0.0,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &BuckParams {
        &self.params
    }

    /// Simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Output (load) voltage in volts.
    pub fn output_voltage(&self) -> f64 {
        self.voltage
    }

    /// Coil current of `phase` in amperes.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn coil_current(&self, phase: usize) -> f64 {
        self.current[phase]
    }

    /// All coil currents, indexed by phase.
    pub fn currents(&self) -> &[f64] {
        &self.current
    }

    /// Sum of all coil currents.
    pub fn total_coil_current(&self) -> f64 {
        self.current.iter().sum()
    }

    /// Cumulative energy drawn from the input supply since t = 0 (J).
    /// Includes body-diode return current (counted negative).
    pub fn energy_in(&self) -> f64 {
        self.energy_in
    }

    /// Cumulative energy delivered to the load since t = 0 (J).
    pub fn energy_out(&self) -> f64 {
        self.energy_out
    }

    /// Power-conversion efficiency so far: `E_out / E_in`, `NaN` until
    /// energy has flowed. Note the output capacitor still stores some
    /// input energy, so measure over windows long enough to amortise it.
    pub fn efficiency(&self) -> f64 {
        self.energy_out / self.energy_in
    }

    /// The switch state of `phase`.
    ///
    /// # Panics
    ///
    /// Panics if `phase` is out of range.
    pub fn switch(&self, phase: usize) -> SwitchState {
        self.switches[phase]
    }

    /// Drives the power transistors of `phase`.
    ///
    /// # Panics
    ///
    /// Panics if both transistors are commanded on — the short-circuit
    /// condition the controllers are formally verified to exclude — or if
    /// `phase` is out of range. See [`Buck::try_set_switch`] for the
    /// fallible variant.
    pub fn set_switch(&mut self, phase: usize, pmos_on: bool, nmos_on: bool) {
        if let Err(e) = self.try_set_switch(phase, pmos_on, nmos_on) {
            panic!("{e}");
        }
    }

    /// Fallible [`Buck::set_switch`]: a simultaneous-on command is
    /// reported as [`SimError::ShortCircuit`] and an out-of-range phase
    /// as [`SimError::PhaseOutOfRange`]; the switch state is unchanged
    /// on error.
    pub fn try_set_switch(
        &mut self,
        phase: usize,
        pmos_on: bool,
        nmos_on: bool,
    ) -> Result<(), SimError> {
        if phase >= self.params.phases {
            return Err(SimError::PhaseOutOfRange {
                phase,
                phases: self.params.phases,
            });
        }
        self.switches[phase] = match (pmos_on, nmos_on) {
            (true, false) => SwitchState::PmosOn,
            (false, true) => SwitchState::NmosOn,
            (false, false) => SwitchState::Off,
            (true, true) => {
                return Err(SimError::ShortCircuit {
                    phase,
                    at_secs: self.time,
                })
            }
        };
        Ok(())
    }

    /// Steps the load resistance (the high-load events of Figure 6).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite resistance; see
    /// [`Buck::try_set_load`] for the fallible variant.
    pub fn set_load(&mut self, rload: f64) {
        if let Err(e) = self.try_set_load(rload) {
            panic!("{e}");
        }
    }

    /// Fallible [`Buck::set_load`]: NaN, infinite, and non-positive
    /// resistances are reported as [`SimError::InvalidParameter`].
    pub fn try_set_load(&mut self, rload: f64) -> Result<(), SimError> {
        if !(rload.is_finite() && rload > 0.0) {
            return Err(SimError::InvalidParameter {
                what: "rload (Ohm)",
                value: rload,
            });
        }
        self.params.rload = rload;
        Ok(())
    }

    /// Advances the model by `dt` seconds (explicit midpoint rule with
    /// DCM clamping).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite step, or when the
    /// integration diverges; see [`Buck::try_step`] for the fallible
    /// variant.
    pub fn step(&mut self, dt: f64) {
        if let Err(e) = self.try_step(dt) {
            panic!("{e}");
        }
    }

    /// Fallible [`Buck::step`]: a NaN, infinite, or non-positive `dt` is
    /// reported as [`SimError::InvalidParameter`] without touching the
    /// state; a step large enough to blow the explicit integration up to
    /// a non-finite state is reported as [`SimError::NonFinite`], after
    /// which the model is poisoned and must be discarded.
    pub fn try_step(&mut self, dt: f64) -> Result<(), SimError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(SimError::InvalidParameter {
                what: "step dt (s)",
                value: dt,
            });
        }
        self.integrate(dt);
        if !self.voltage.is_finite() || self.current.iter().any(|i| !i.is_finite()) {
            return Err(SimError::NonFinite {
                what: "buck state",
                at_secs: self.time,
            });
        }
        Ok(())
    }

    fn integrate(&mut self, dt: f64) {
        let n = self.params.phases;
        // The scratch buffers are taken out of `self` for the duration
        // of the step so the `&self` derivative evaluations below can
        // borrow freely; they are put back at the end, so steady state
        // never allocates (capacity is retained across steps).
        let mut k1_i = std::mem::take(&mut self.k1_i);
        let mut mid_i = std::mem::take(&mut self.mid_i);
        let mut k2_i = std::mem::take(&mut self.k2_i);
        // k1 at the current state.
        k1_i.clear();
        k1_i.extend((0..n).map(|k| self.di_dt(k, self.current[k], self.voltage)));
        let k1_v = self.dv_dt(&self.current, self.voltage);
        // Midpoint state.
        mid_i.clear();
        mid_i.extend((0..n).map(|k| self.current[k] + 0.5 * dt * k1_i[k]));
        let mid_v = self.voltage + 0.5 * dt * k1_v;
        // k2 at the midpoint.
        k2_i.clear();
        k2_i.extend((0..n).map(|k| self.di_dt(k, mid_i[k], mid_v)));
        let k2_v = self.dv_dt(&mid_i, mid_v);
        // Advance.
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            let before = self.current[k];
            let mut after = before + dt * k2_i[k];
            // Discontinuous conduction: with both switches off the body
            // diodes cannot reverse the current through zero.
            if self.switches[k] == SwitchState::Off
                && before != 0.0
                && after * before <= 0.0
            {
                after = 0.0;
            }
            self.current[k] = after;
        }
        self.voltage += dt * k2_v;
        self.time += dt;
        // Energy bookkeeping (midpoint currents for consistency).
        let supply_current: f64 = (0..n)
            .map(|k| match self.switches[k] {
                SwitchState::PmosOn => mid_i[k],
                // PMOS body diode returns current to the supply.
                SwitchState::Off if mid_i[k] < 0.0 => mid_i[k],
                _ => 0.0,
            })
            .sum();
        self.energy_in += self.params.vin * supply_current * dt;
        self.energy_out += mid_v * mid_v / self.params.rload * dt;
        self.k1_i = k1_i;
        self.mid_i = mid_i;
        self.k2_i = k2_i;
    }

    fn di_dt(&self, phase: usize, i: f64, v: f64) -> f64 {
        let p = &self.params;
        let l = p.coil.inductance;
        let node = match self.switches[phase] {
            SwitchState::PmosOn => p.vin - i * p.rdson_p,
            SwitchState::NmosOn => -i * p.rdson_n,
            SwitchState::Off => {
                // Which body diode conducts is decided by the *step-start*
                // current, not the evaluation point: an RK2 midpoint that
                // dips through zero must not flip to the opposite diode
                // (that would inject a spurious current kick right at the
                // DCM boundary).
                let direction = self.current[phase];
                if direction > 0.0 {
                    // NMOS body diode conducts from ground.
                    -p.vdiode
                } else if direction < 0.0 {
                    // PMOS body diode returns current to the supply.
                    p.vin + p.vdiode
                } else {
                    return 0.0;
                }
            }
        };
        (node - v - i * p.coil.dcr) / l
    }

    fn dv_dt(&self, currents: &[f64], v: f64) -> f64 {
        let total: f64 = currents.iter().sum();
        (total - v / self.params.rload) / self.params.cap
    }
}

impl fmt::Display for Buck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buck t={:.3}us v={:.3}V i={:?}",
            self.time * 1e6,
            self.voltage,
            self.current
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buck() -> Buck {
        Buck::new(BuckParams::default())
    }

    #[test]
    fn rest_state_is_quiescent() {
        let mut b = buck();
        for _ in 0..100 {
            b.step(1e-9);
        }
        assert_eq!(b.output_voltage(), 0.0);
        assert_eq!(b.total_coil_current(), 0.0);
    }

    #[test]
    fn pmos_charges_coil_and_cap() {
        let mut b = buck();
        b.set_switch(0, true, false);
        for _ in 0..2000 {
            b.step(1e-9);
        }
        assert!(b.coil_current(0) > 0.05, "i={}", b.coil_current(0));
        assert!(b.output_voltage() > 0.1);
        assert!(b.output_voltage() < b.params().vin);
    }

    #[test]
    fn nmos_discharges_coil() {
        let mut b = buck();
        b.set_switch(0, true, false);
        for _ in 0..2000 {
            b.step(1e-9);
        }
        let peak = b.coil_current(0);
        b.set_switch(0, false, true);
        for _ in 0..2000 {
            b.step(1e-9);
        }
        assert!(b.coil_current(0) < peak);
    }

    #[test]
    fn dcm_clamps_current_at_zero() {
        let mut b = buck();
        b.set_switch(0, true, false);
        for _ in 0..1000 {
            b.step(1e-9);
        }
        b.set_switch(0, false, false);
        // Body diode free-wheels the current down; it must stop at zero,
        // not ring negative.
        for _ in 0..20000 {
            b.step(1e-9);
            assert!(b.coil_current(0) >= 0.0, "current reversed in DCM");
        }
        assert_eq!(b.coil_current(0), 0.0);
    }

    #[test]
    fn negative_current_possible_with_nmos_on() {
        let mut b = buck();
        // Pre-charge the cap, then hold NMOS on: current goes negative
        // (the OV-mode energy sink of the paper).
        b.set_switch(0, true, false);
        for _ in 0..5000 {
            b.step(1e-9);
        }
        b.set_switch(0, false, true);
        let mut min_i = f64::INFINITY;
        for _ in 0..5000 {
            b.step(1e-9);
            min_i = min_i.min(b.coil_current(0));
        }
        assert!(min_i < 0.0, "current never reversed: min {min_i}");
    }

    #[test]
    #[should_panic(expected = "short circuit")]
    fn short_circuit_panics() {
        let mut b = buck();
        b.set_switch(0, true, true);
    }

    #[test]
    fn load_step_changes_discharge_rate() {
        let mut b = buck();
        b.set_switch(0, true, false);
        for _ in 0..5000 {
            b.step(1e-9);
        }
        b.set_switch(0, false, false);
        let v0 = b.output_voltage();
        let mut b_heavy = b.clone();
        b_heavy.set_load(2.0);
        for _ in 0..1000 {
            b.step(1e-9);
            b_heavy.step(1e-9);
        }
        assert!(v0 - b_heavy.output_voltage() > v0 - b.output_voltage());
    }

    #[test]
    fn charge_conservation_against_fine_reference() {
        // The same scenario at dt and dt/10 must agree closely (RK2
        // convergence sanity).
        let run = |dt: f64| -> (f64, f64) {
            let mut b = buck();
            b.set_switch(0, true, false);
            // Round, don't truncate: a dt that doesn't divide the window
            // exactly would silently shorten the simulated duration and
            // skew the two runs being compared.
            let steps = (2e-6 / dt).round() as usize;
            for _ in 0..steps {
                b.step(dt);
            }
            (b.output_voltage(), b.coil_current(0))
        };
        let (v1, i1) = run(1e-9);
        let (v2, i2) = run(1e-10);
        assert!((v1 - v2).abs() < 5e-3, "v: {v1} vs {v2}");
        assert!((i1 - i2).abs() < 5e-3, "i: {i1} vs {i2}");
    }

    #[test]
    fn multiphase_currents_superpose() {
        let mut b = buck();
        for k in 0..4 {
            b.set_switch(k, true, false);
        }
        for _ in 0..1000 {
            b.step(1e-9);
        }
        let total = b.total_coil_current();
        assert!((total - 4.0 * b.coil_current(0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "phase count")]
    fn zero_phases_rejected() {
        let _ = Buck::new(BuckParams::default().with_phases(0));
    }

    #[test]
    fn try_new_rejects_non_physical_params() {
        for bad in [f64::NAN, 0.0, -5.0, f64::INFINITY, f64::NEG_INFINITY] {
            let mut p = BuckParams::default();
            p.vin = bad;
            assert!(
                matches!(
                    Buck::try_new(p),
                    Err(SimError::InvalidParameter { what: "vin (V)", .. })
                ),
                "vin = {bad} accepted"
            );
        }
        let mut p = BuckParams::default();
        p.rdson_p = f64::NAN;
        assert!(matches!(
            Buck::try_new(p),
            Err(SimError::InvalidParameter {
                what: "rdson_p (Ohm)",
                ..
            })
        ));
        let mut p = BuckParams::default();
        p.coil.dcr = -0.1;
        assert!(Buck::try_new(p).is_err());
        assert!(Buck::try_new(BuckParams::default()).is_ok());
    }

    #[test]
    fn try_step_rejects_bad_dt_without_mutating() {
        let mut b = buck();
        b.set_switch(0, true, false);
        b.step(1e-9);
        let v = b.output_voltage();
        let t = b.time();
        for bad in [f64::NAN, 0.0, -1e-9, f64::INFINITY] {
            assert!(matches!(
                b.try_step(bad),
                Err(SimError::InvalidParameter { what: "step dt (s)", .. })
            ));
        }
        assert_eq!(b.output_voltage(), v, "failed step must not mutate");
        assert_eq!(b.time(), t);
    }

    #[test]
    fn try_step_reports_divergence_as_non_finite() {
        // An absurd step makes the explicit midpoint rule explode; the
        // typed path reports it instead of silently carrying inf/NaN.
        let mut b = buck();
        b.set_switch(0, true, false);
        let mut diverged = false;
        for _ in 0..50 {
            match b.try_step(1.0) {
                Ok(()) => {}
                Err(SimError::NonFinite { .. }) => {
                    diverged = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(diverged, "1 s steps on a nanosecond-scale plant must diverge");
    }

    #[test]
    fn try_set_switch_reports_short_and_range() {
        let mut b = buck();
        assert!(matches!(
            b.try_set_switch(0, true, true),
            Err(SimError::ShortCircuit { phase: 0, .. })
        ));
        assert_eq!(b.switch(0), SwitchState::Off, "state unchanged on error");
        assert!(matches!(
            b.try_set_switch(99, true, false),
            Err(SimError::PhaseOutOfRange { phase: 99, phases: 4 })
        ));
        assert!(b.try_set_switch(1, false, true).is_ok());
        assert_eq!(b.switch(1), SwitchState::NmosOn);
    }

    #[test]
    fn try_set_load_rejects_nan_and_negative() {
        let mut b = buck();
        for bad in [f64::NAN, 0.0, -3.0, f64::INFINITY] {
            assert!(b.try_set_load(bad).is_err(), "{bad} accepted");
        }
        assert_eq!(b.params().rload, 6.0, "load unchanged after rejects");
        assert!(b.try_set_load(3.6).is_ok());
        assert_eq!(b.params().rload, 3.6);
    }
}

#[cfg(test)]
mod energy_tests {
    use super::*;

    #[test]
    fn energy_flows_and_efficiency_bounded() {
        let mut b = Buck::new(BuckParams::default().with_phases(1));
        // A few manual switching cycles.
        for _ in 0..20 {
            b.set_switch(0, true, false);
            for _ in 0..200 {
                b.step(1e-9);
            }
            b.set_switch(0, false, true);
            for _ in 0..200 {
                b.step(1e-9);
            }
        }
        assert!(b.energy_in() > 0.0);
        assert!(b.energy_out() > 0.0);
        let eff = b.efficiency();
        assert!(eff > 0.0 && eff < 1.0, "efficiency {eff}");
    }

    #[test]
    fn idle_buck_moves_no_energy() {
        let mut b = Buck::new(BuckParams::default());
        for _ in 0..1000 {
            b.step(1e-9);
        }
        assert_eq!(b.energy_in(), 0.0);
        assert_eq!(b.energy_out(), 0.0);
    }

    #[test]
    fn dcm_zero_crossing_never_kicks_upward() {
        // Regression: the RK2 midpoint must not flip to the opposite
        // body diode when it dips through zero — that used to inject a
        // ~5 mA spurious kick right at the DCM boundary.
        for pre in (100..400).step_by(7) {
            let mut b = Buck::new(
                BuckParams::default()
                    .with_phases(1)
                    .with_coil(crate::CoilModel::coilcraft(1.0)),
            );
            b.set_switch(0, true, false);
            for _ in 0..pre {
                b.step(1e-9);
            }
            b.set_switch(0, false, false);
            let mut prev = b.coil_current(0);
            for _ in 0..20_000 {
                b.step(1e-9);
                let i = b.coil_current(0);
                assert!(
                    !(i > prev + 1e-12 && prev < 1e-3),
                    "upward kick near zero: {prev:.3e} -> {i:.3e} (pre={pre})"
                );
                prev = i;
                if i == 0.0 {
                    break;
                }
            }
        }
    }

    #[test]
    fn conservation_energy_in_bounds_stored_plus_out() {
        // E_in >= E_out + E_stored (losses are non-negative).
        let mut b = Buck::new(BuckParams::default().with_phases(1));
        b.set_switch(0, true, false);
        for _ in 0..5000 {
            b.step(1e-9);
        }
        let p = b.params().clone();
        let stored = 0.5 * p.cap * b.output_voltage().powi(2)
            + 0.5 * p.coil.inductance * b.coil_current(0).powi(2);
        assert!(
            b.energy_in() + 1e-12 >= b.energy_out() + stored,
            "E_in {} < E_out {} + stored {}",
            b.energy_in(),
            b.energy_out(),
            stored
        );
    }
}
