use std::fmt;

use crate::Comparator;

/// Identity of a sensor condition (Figure 2a of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// High load: the output voltage dropped below `V_min`.
    Hl,
    /// Under-voltage: the output voltage dropped below `V_ref`.
    Uv,
    /// Over-voltage: the output voltage exceeded `V_max`.
    Ov,
    /// Over-current of one phase: the coil current exceeded the active
    /// OC reference (`I_max`, or `I_0` in OV mode).
    Oc(usize),
    /// Zero-crossing of one phase: the coil current fell below the
    /// active ZC reference (`I_0`, or `I_neg` in OV mode).
    Zc(usize),
}

impl fmt::Display for SensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorKind::Hl => write!(f, "hl"),
            SensorKind::Uv => write!(f, "uv"),
            SensorKind::Ov => write!(f, "ov"),
            SensorKind::Oc(k) => write!(f, "oc{k}"),
            SensorKind::Zc(k) => write!(f, "zc{k}"),
        }
    }
}

/// A sensor output change, time-stamped with sub-step resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorEvent {
    /// Event time in seconds (crossing time plus comparator delay).
    pub time: f64,
    /// Which condition changed.
    pub kind: SensorKind,
    /// The new comparator output.
    pub value: bool,
}

/// Reference values and comparator characteristics for the sensor bank.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorThresholds {
    /// High-load voltage threshold `V_min` (V).
    pub vmin: f64,
    /// Regulation target / UV threshold `V_ref` (V).
    pub vref: f64,
    /// Over-voltage threshold `V_max` (V).
    pub vmax: f64,
    /// Normal-mode over-current reference `I_max` (A).
    pub imax: f64,
    /// Zero-current reference `I_0` (A); the OC reference in OV mode.
    pub i0: f64,
    /// Negative current limit `I_neg` (A); the ZC reference in OV mode.
    pub ineg: f64,
    /// Voltage comparator hysteresis (V).
    pub v_hyst: f64,
    /// Current comparator hysteresis (A).
    pub i_hyst: f64,
    /// Comparator propagation delay (s).
    pub delay: f64,
}

impl Default for SensorThresholds {
    fn default() -> Self {
        SensorThresholds {
            vmin: 3.05,
            vref: 3.3,
            vmax: 3.42,
            imax: 0.20,
            i0: 0.0,
            ineg: -0.10,
            v_hyst: 0.01,
            i_hyst: 0.004,
            delay: 1e-9,
        }
    }
}

/// The full condition-detector bank of an N-phase buck: HL, UV, OV plus
/// per-phase OC and ZC comparators, with the OV-mode threshold switch of
/// §II.
///
/// # Examples
///
/// ```
/// use a4a_analog::{SensorBank, SensorKind};
///
/// let mut bank = SensorBank::new(2, Default::default());
/// // Voltage collapses: HL and UV assert (ordering by threshold).
/// let events = bank.update(0.0, 1e-9, 0.0, &[0.0, 0.0]);
/// assert!(events.iter().any(|e| e.kind == SensorKind::Uv && e.value));
/// ```
#[derive(Debug, Clone)]
pub struct SensorBank {
    thresholds: SensorThresholds,
    hl: Comparator,
    uv: Comparator,
    ov: Comparator,
    oc: Vec<Comparator>,
    zc: Vec<Comparator>,
    ov_mode: bool,
    /// Last sampled time/voltage/currents, valid when `has_last`. Kept
    /// as flat fields (currents in a reused buffer) so the per-window
    /// [`SensorBank::update_into`] path never clones or allocates.
    has_last: bool,
    last_t: f64,
    last_v: f64,
    last_i: Vec<f64>,
}

impl SensorBank {
    /// Creates the bank for `phases` phases.
    pub fn new(phases: usize, thresholds: SensorThresholds) -> SensorBank {
        let t = &thresholds;
        SensorBank {
            hl: Comparator::below(t.vmin, t.v_hyst, t.delay),
            uv: Comparator::below(t.vref, t.v_hyst, t.delay),
            ov: Comparator::above(t.vmax, t.v_hyst, t.delay),
            oc: (0..phases)
                .map(|_| Comparator::above(t.imax, t.i_hyst, t.delay))
                .collect(),
            zc: (0..phases)
                .map(|_| Comparator::below(t.i0, t.i_hyst, t.delay))
                .collect(),
            ov_mode: false,
            thresholds,
            has_last: false,
            last_t: 0.0,
            last_v: 0.0,
            last_i: Vec::with_capacity(phases),
        }
    }

    /// The active thresholds.
    pub fn thresholds(&self) -> &SensorThresholds {
        &self.thresholds
    }

    /// Whether the OV operating mode is active.
    pub fn ov_mode(&self) -> bool {
        self.ov_mode
    }

    /// Current output of a sensor.
    pub fn output(&self, kind: SensorKind) -> bool {
        match kind {
            SensorKind::Hl => self.hl.output(),
            SensorKind::Uv => self.uv.output(),
            SensorKind::Ov => self.ov.output(),
            SensorKind::Oc(k) => self.oc[k].output(),
            SensorKind::Zc(k) => self.zc[k].output(),
        }
    }

    /// Switches the current references between normal mode
    /// (`I_max`/`I_0`) and OV mode (`I_0`/`I_neg`). Returns the sensor
    /// events caused by re-evaluating the last sample against the new
    /// references.
    pub fn set_ov_mode(&mut self, on: bool, now: f64) -> Vec<SensorEvent> {
        if self.ov_mode == on {
            return Vec::new();
        }
        self.ov_mode = on;
        let t = &self.thresholds;
        let (oc_ref, zc_ref) = if on { (t.i0, t.ineg) } else { (t.imax, t.i0) };
        for c in &mut self.oc {
            c.set_threshold(oc_ref);
        }
        for c in &mut self.zc {
            c.set_threshold(zc_ref);
        }
        // Re-evaluate against the stored sample so mode changes take
        // effect without waiting for the next analog step. Cold path
        // (mode switches are rare), so returning a Vec is fine.
        let mut events = Vec::new();
        if self.has_last {
            for k in 0..self.last_i.len() {
                let i = self.last_i[k];
                if let Some((_, v)) = self.oc[k].update(now, i, now, i) {
                    events.push(SensorEvent {
                        time: now + t.delay,
                        kind: SensorKind::Oc(k),
                        value: v,
                    });
                }
                if let Some((_, v)) = self.zc[k].update(now, i, now, i) {
                    events.push(SensorEvent {
                        time: now + t.delay,
                        kind: SensorKind::Zc(k),
                        value: v,
                    });
                }
            }
        }
        events
    }

    /// Feeds one analog step (from the last sample to `(t, v, i)`),
    /// returning sensor events sorted by time. Convenience wrapper
    /// around [`SensorBank::update_into`].
    ///
    /// # Panics
    ///
    /// Panics if the current slice length changes between calls.
    pub fn update(&mut self, t0: f64, t: f64, v: f64, i: &[f64]) -> Vec<SensorEvent> {
        let mut events = Vec::new();
        self.update_into(t0, t, v, i, &mut events);
        events
    }

    /// Allocation-free [`SensorBank::update`]: appends the step's
    /// events to `events` (that appended range sorted by time) instead
    /// of returning a fresh Vec, so the co-simulation loop can reuse
    /// one buffer across windows.
    ///
    /// # Panics
    ///
    /// Panics if the current slice length changes between calls.
    pub fn update_into(
        &mut self,
        t0: f64,
        t: f64,
        v: f64,
        i: &[f64],
        events: &mut Vec<SensorEvent>,
    ) {
        let (prev_t, prev_v) = if self.has_last {
            assert_eq!(self.last_i.len(), i.len(), "phase count changed");
            (self.last_t, self.last_v)
        } else {
            (t0, v)
        };
        let start = events.len();
        let mut push = |kind: SensorKind, ev: Option<(f64, bool)>| {
            if let Some((time, value)) = ev {
                events.push(SensorEvent { time, kind, value });
            }
        };
        push(SensorKind::Hl, self.hl.update(prev_t, prev_v, t, v));
        push(SensorKind::Uv, self.uv.update(prev_t, prev_v, t, v));
        push(SensorKind::Ov, self.ov.update(prev_t, prev_v, t, v));
        for k in 0..i.len() {
            let prev_ik = if self.has_last { self.last_i[k] } else { i[k] };
            push(SensorKind::Oc(k), self.oc[k].update(prev_t, prev_ik, t, i[k]));
            push(SensorKind::Zc(k), self.zc[k].update(prev_t, prev_ik, t, i[k]));
        }
        self.has_last = true;
        self.last_t = t;
        self.last_v = v;
        self.last_i.clear();
        self.last_i.extend_from_slice(i);
        events[start..].sort_by(|a, b| a.time.total_cmp(&b.time));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> SensorBank {
        SensorBank::new(2, SensorThresholds::default())
    }

    #[test]
    fn startup_asserts_hl_uv_immediately() {
        let mut b = bank();
        let evs = b.update(0.0, 1e-9, 0.0, &[0.0, 0.0]);
        let kinds: Vec<SensorKind> = evs.iter().filter(|e| e.value).map(|e| e.kind).collect();
        assert!(kinds.contains(&SensorKind::Hl));
        assert!(kinds.contains(&SensorKind::Uv));
        assert!(!kinds.contains(&SensorKind::Ov));
        assert!(b.output(SensorKind::Uv));
    }

    #[test]
    fn voltage_recovery_clears_in_threshold_order() {
        let mut b = bank();
        b.update(0.0, 1e-9, 0.0, &[0.0, 0.0]);
        let evs = b.update(1e-9, 1e-6, 3.4, &[0.0, 0.0]);
        let clears: Vec<(f64, SensorKind)> = evs
            .iter()
            .filter(|e| !e.value)
            .map(|e| (e.time, e.kind))
            .collect();
        assert_eq!(clears.len(), 2, "HL then UV release");
        assert!(clears[0].1 == SensorKind::Hl && clears[1].1 == SensorKind::Uv);
        assert!(clears[0].0 < clears[1].0, "HL releases first (lower threshold)");
    }

    #[test]
    fn over_voltage_asserts() {
        let mut b = bank();
        b.update(0.0, 1e-9, 3.3, &[0.0, 0.0]);
        let evs = b.update(1e-9, 1e-6, 3.6, &[0.0, 0.0]);
        assert!(evs
            .iter()
            .any(|e| e.kind == SensorKind::Ov && e.value));
    }

    #[test]
    fn per_phase_oc_and_zc() {
        let mut b = bank();
        b.update(0.0, 1e-9, 3.3, &[0.1, 0.0]);
        // Phase 0 exceeds I_max; phase 1 stays put.
        let evs = b.update(1e-9, 1e-6, 3.3, &[0.25, 0.0]);
        assert!(evs.iter().any(|e| e.kind == SensorKind::Oc(0) && e.value));
        assert!(!evs.iter().any(|e| e.kind == SensorKind::Oc(1)));
        // Phase 0 current decays to zero: ZC fires.
        let evs = b.update(1e-6, 2e-6, 3.3, &[-0.01, 0.0]);
        assert!(evs.iter().any(|e| e.kind == SensorKind::Zc(0) && e.value));
    }

    #[test]
    fn ov_mode_switches_current_references() {
        let mut b = bank();
        // Current sits at 0.05 A: below I_max, above I_0.
        b.update(0.0, 1e-9, 3.3, &[0.05, 0.05]);
        assert!(!b.output(SensorKind::Oc(0)));
        // Enter OV mode: OC reference becomes I_0 = 0, so 0.05 A is now
        // over-current.
        let evs = b.set_ov_mode(true, 2e-9);
        assert!(b.ov_mode());
        assert!(evs.iter().any(|e| e.kind == SensorKind::Oc(0) && e.value));
        assert!(evs.iter().any(|e| e.kind == SensorKind::Oc(1) && e.value));
        // ZC reference is now I_neg: current must go below -0.1 A.
        let evs = b.update(2e-9, 1e-6, 3.3, &[-0.05, 0.05]);
        assert!(!evs.iter().any(|e| e.kind == SensorKind::Zc(0) && e.value));
        let evs = b.update(1e-6, 2e-6, 3.3, &[-0.15, 0.05]);
        assert!(evs.iter().any(|e| e.kind == SensorKind::Zc(0) && e.value));
        // Leaving OV mode restores the references.
        b.set_ov_mode(false, 3e-6);
        assert!(!b.ov_mode());
    }

    #[test]
    fn repeated_mode_switch_is_idempotent() {
        let mut b = bank();
        b.update(0.0, 1e-9, 3.3, &[0.05, 0.0]);
        let first = b.set_ov_mode(true, 2e-9);
        assert!(!first.is_empty());
        let second = b.set_ov_mode(true, 3e-9);
        assert!(second.is_empty(), "no-op repeat produces no events");
        // Leaving restores the normal references and re-evaluates.
        let leave = b.set_ov_mode(false, 4e-9);
        assert!(leave.iter().any(|e| e.kind == SensorKind::Oc(0) && !e.value));
    }

    #[test]
    fn events_sorted_by_time() {
        let mut b = bank();
        let evs = b.update(0.0, 1e-6, 0.0, &[0.3, -0.3]);
        for w in evs.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(SensorKind::Oc(2).to_string(), "oc2");
        assert_eq!(SensorKind::Hl.to_string(), "hl");
    }
}
