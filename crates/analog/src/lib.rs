//! Analog substrate for the multiphase buck case study — the Verilog-A /
//! Cadence AMS stand-in.
//!
//! * [`Buck`] — a piecewise-linear ODE model of an N-phase synchronous
//!   buck converter: per-phase PMOS/NMOS switches with on-resistance,
//!   body diodes, discontinuous-conduction clamping, per-phase coils, a
//!   shared output capacitor, and a resistive load that experiments can
//!   step at run time;
//! * [`Comparator`] and [`SensorBank`] — the five condition detectors of
//!   the paper (HL, UV, OV, per-phase OC and ZC) with hysteresis,
//!   propagation delay, and sub-step linear-interpolated crossing times;
//!   the OV operating mode switches the current thresholds from
//!   `I_max`/`I_0` to `I_0`/`I_neg` exactly as described in §II;
//! * [`CoilModel`] — a Coilcraft-style RF inductor family with
//!   inductance-dependent DCR and high-frequency ESR, covering the 1–10
//!   µH sweep of Figure 7;
//! * [`Waveform`] / [`metrics`] — recording and the paper's measurements
//!   (voltage ripple, inductor peak current, RMS decomposition, coil
//!   conduction losses).
//!
//! # Examples
//!
//! Run a phase open-loop for a microsecond and watch the coil charge:
//!
//! ```
//! use a4a_analog::{Buck, BuckParams};
//!
//! let mut buck = Buck::new(BuckParams::default());
//! buck.set_switch(0, true, false); // PMOS on
//! for _ in 0..1000 {
//!     buck.step(1e-9);
//! }
//! assert!(buck.coil_current(0) > 0.0);
//! assert!(buck.output_voltage() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buck;
mod coil;
mod comparator;
pub mod metrics;
mod record;
mod sensors;

pub use buck::{Buck, BuckParams, SwitchState};
pub use coil::CoilModel;
pub use comparator::Comparator;
pub use record::{TrackId, Waveform};
pub use sensors::{SensorBank, SensorEvent, SensorKind, SensorThresholds};
