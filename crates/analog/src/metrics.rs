//! The paper's measurements over recorded waveforms: voltage ripple,
//! inductor peak current, RMS decomposition, and coil conduction losses.
//!
//! NaN handling: a NaN sample poisons every metric over the record to
//! NaN. `f64::min`/`f64::max` silently *drop* NaN operands, so the
//! extremum-based metrics ([`voltage_ripple`], [`peak_current`]) check
//! explicitly — a corrupted record must never masquerade as a clean
//! measurement (the sum-based metrics propagate NaN naturally).

use crate::{CoilModel, Waveform};

/// Peak-to-peak output-voltage ripple over the record (V); NaN when any
/// voltage sample is NaN.
///
/// Figure 6 quotes this for the normal-load window: 0.43 V synchronous
/// vs 0.36 V asynchronous.
pub fn voltage_ripple(w: &Waveform) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &w.v {
        if v.is_nan() {
            return f64::NAN;
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo.is_finite() {
        hi - lo
    } else {
        0.0
    }
}

/// Mean output voltage (V).
pub fn mean_voltage(w: &Waveform) -> f64 {
    if w.v.is_empty() {
        return 0.0;
    }
    w.v.iter().sum::<f64>() / w.v.len() as f64
}

/// The largest absolute coil current over all phases (A) — the
/// "inductor peak current" of Figures 7a/7b; NaN when any current
/// sample is NaN.
pub fn peak_current(w: &Waveform) -> f64 {
    let mut peak = 0.0f64;
    for &x in w.i.iter().flat_map(|phase| phase.iter()) {
        if x.is_nan() {
            return f64::NAN;
        }
        peak = peak.max(x.abs());
    }
    peak
}

/// RMS of one phase's coil current (A).
///
/// # Panics
///
/// Panics if `phase` is out of range.
pub fn rms_current(w: &Waveform, phase: usize) -> f64 {
    let samples = &w.i[phase];
    if samples.is_empty() {
        return 0.0;
    }
    let sq: f64 = samples.iter().map(|&x| x * x).sum();
    (sq / samples.len() as f64).sqrt()
}

/// Mean (DC) component of one phase's coil current (A).
///
/// # Panics
///
/// Panics if `phase` is out of range.
pub fn dc_current(w: &Waveform, phase: usize) -> f64 {
    let samples = &w.i[phase];
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// AC (ripple) RMS of one phase's coil current (A): RMS after removing
/// the DC component.
///
/// # Panics
///
/// Panics if `phase` is out of range.
pub fn ac_rms_current(w: &Waveform, phase: usize) -> f64 {
    let rms = rms_current(w, phase);
    let dc = dc_current(w, phase);
    if rms.is_nan() || dc.is_nan() {
        // `.max(0.0)` below would silently launder NaN into 0.
        return f64::NAN;
    }
    (rms * rms - dc * dc).max(0.0).sqrt()
}

/// Total inductor conduction losses over all phases (W):
/// `I_dc² · DCR + I_ac,rms² · ESR_hf` per coil — the quantity of
/// Figure 7c, where the high-frequency ESR term dominates and grows
/// with inductance.
pub fn inductor_losses(w: &Waveform, coil: &CoilModel) -> f64 {
    (0..w.phases())
        .map(|k| {
            let dc = dc_current(w, k);
            let ac = ac_rms_current(w, k);
            dc * dc * coil.dcr + ac * ac * coil.esr_hf
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_wave() -> Waveform {
        // Phase 0: symmetric triangle 0..0.2 A around 0.1 A; phase 1 flat.
        let mut w = Waveform::new(2);
        for k in 0..=1000 {
            let t = k as f64 * 1e-9;
            let phase = (k % 100) as f64 / 100.0;
            let tri = if phase < 0.5 {
                phase * 2.0
            } else {
                2.0 - phase * 2.0
            };
            w.sample(t, 3.3 + 0.05 * (tri - 0.5), &[0.2 * tri, 0.1]);
        }
        w
    }

    #[test]
    fn ripple_is_peak_to_peak() {
        let w = triangle_wave();
        let r = voltage_ripple(&w);
        assert!((r - 0.05).abs() < 1e-3, "got {r}");
        assert!((mean_voltage(&w) - 3.3).abs() < 1e-2);
    }

    #[test]
    fn peak_current_over_phases() {
        let w = triangle_wave();
        assert!((peak_current(&w) - 0.2).abs() < 5e-3);
    }

    #[test]
    fn rms_decomposition() {
        let w = triangle_wave();
        // Triangle 0..A: dc = A/2, rms = A/sqrt(3), ac = A/(2*sqrt(3)).
        let a: f64 = 0.2;
        assert!((dc_current(&w, 0) - a / 2.0).abs() < 5e-3);
        assert!((rms_current(&w, 0) - a / 3.0f64.sqrt()).abs() < 5e-3);
        assert!((ac_rms_current(&w, 0) - a / (2.0 * 3.0f64.sqrt())).abs() < 5e-3);
        // Flat phase has zero AC content.
        assert!(ac_rms_current(&w, 1) < 1e-6);
        assert!((dc_current(&w, 1) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn losses_grow_with_coil_resistance() {
        let w = triangle_wave();
        let small = CoilModel::coilcraft(1.0);
        let large = CoilModel::coilcraft(10.0);
        let p_small = inductor_losses(&w, &small);
        let p_large = inductor_losses(&w, &large);
        assert!(p_small > 0.0);
        assert!(p_large > p_small, "same waveform, lossier coil");
    }

    #[test]
    fn nan_sample_poisons_extremum_metrics() {
        // Regression: `f64::min`/`f64::max` drop NaN operands, so a
        // single corrupted sample used to vanish from ripple and peak
        // current instead of flagging the record.
        let mut w = triangle_wave();
        w.v[500] = f64::NAN;
        assert!(voltage_ripple(&w).is_nan(), "NaN voltage must poison ripple");
        assert!(mean_voltage(&w).is_nan());
        let mut w = triangle_wave();
        w.i[1][3] = f64::NAN;
        assert!(peak_current(&w).is_nan(), "NaN current must poison peak");
        assert!(rms_current(&w, 1).is_nan());
        assert!(dc_current(&w, 1).is_nan());
        assert!(ac_rms_current(&w, 1).is_nan());
        // The untouched phase still measures clean.
        assert!(!rms_current(&w, 0).is_nan());
    }

    #[test]
    fn empty_waveform_is_zero() {
        let w = Waveform::new(1);
        assert_eq!(voltage_ripple(&w), 0.0);
        assert_eq!(peak_current(&w), 0.0);
        assert_eq!(rms_current(&w, 0), 0.0);
        assert_eq!(mean_voltage(&w), 0.0);
    }
}
