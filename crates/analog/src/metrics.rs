//! The paper's measurements over recorded waveforms: voltage ripple,
//! inductor peak current, RMS decomposition, and coil conduction losses.

use crate::{CoilModel, Waveform};

/// Peak-to-peak output-voltage ripple over the record (V).
///
/// Figure 6 quotes this for the normal-load window: 0.43 V synchronous
/// vs 0.36 V asynchronous.
pub fn voltage_ripple(w: &Waveform) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &w.v {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo.is_finite() {
        hi - lo
    } else {
        0.0
    }
}

/// Mean output voltage (V).
pub fn mean_voltage(w: &Waveform) -> f64 {
    if w.v.is_empty() {
        return 0.0;
    }
    w.v.iter().sum::<f64>() / w.v.len() as f64
}

/// The largest absolute coil current over all phases (A) — the
/// "inductor peak current" of Figures 7a/7b.
pub fn peak_current(w: &Waveform) -> f64 {
    w.i.iter()
        .flat_map(|phase| phase.iter())
        .fold(0.0f64, |acc, &x| acc.max(x.abs()))
}

/// RMS of one phase's coil current (A).
///
/// # Panics
///
/// Panics if `phase` is out of range.
pub fn rms_current(w: &Waveform, phase: usize) -> f64 {
    let samples = &w.i[phase];
    if samples.is_empty() {
        return 0.0;
    }
    let sq: f64 = samples.iter().map(|&x| x * x).sum();
    (sq / samples.len() as f64).sqrt()
}

/// Mean (DC) component of one phase's coil current (A).
///
/// # Panics
///
/// Panics if `phase` is out of range.
pub fn dc_current(w: &Waveform, phase: usize) -> f64 {
    let samples = &w.i[phase];
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// AC (ripple) RMS of one phase's coil current (A): RMS after removing
/// the DC component.
///
/// # Panics
///
/// Panics if `phase` is out of range.
pub fn ac_rms_current(w: &Waveform, phase: usize) -> f64 {
    let rms = rms_current(w, phase);
    let dc = dc_current(w, phase);
    (rms * rms - dc * dc).max(0.0).sqrt()
}

/// Total inductor conduction losses over all phases (W):
/// `I_dc² · DCR + I_ac,rms² · ESR_hf` per coil — the quantity of
/// Figure 7c, where the high-frequency ESR term dominates and grows
/// with inductance.
pub fn inductor_losses(w: &Waveform, coil: &CoilModel) -> f64 {
    (0..w.phases())
        .map(|k| {
            let dc = dc_current(w, k);
            let ac = ac_rms_current(w, k);
            dc * dc * coil.dcr + ac * ac * coil.esr_hf
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_wave() -> Waveform {
        // Phase 0: symmetric triangle 0..0.2 A around 0.1 A; phase 1 flat.
        let mut w = Waveform::new(2);
        for k in 0..=1000 {
            let t = k as f64 * 1e-9;
            let phase = (k % 100) as f64 / 100.0;
            let tri = if phase < 0.5 {
                phase * 2.0
            } else {
                2.0 - phase * 2.0
            };
            w.sample(t, 3.3 + 0.05 * (tri - 0.5), &[0.2 * tri, 0.1]);
        }
        w
    }

    #[test]
    fn ripple_is_peak_to_peak() {
        let w = triangle_wave();
        let r = voltage_ripple(&w);
        assert!((r - 0.05).abs() < 1e-3, "got {r}");
        assert!((mean_voltage(&w) - 3.3).abs() < 1e-2);
    }

    #[test]
    fn peak_current_over_phases() {
        let w = triangle_wave();
        assert!((peak_current(&w) - 0.2).abs() < 5e-3);
    }

    #[test]
    fn rms_decomposition() {
        let w = triangle_wave();
        // Triangle 0..A: dc = A/2, rms = A/sqrt(3), ac = A/(2*sqrt(3)).
        let a: f64 = 0.2;
        assert!((dc_current(&w, 0) - a / 2.0).abs() < 5e-3);
        assert!((rms_current(&w, 0) - a / 3.0f64.sqrt()).abs() < 5e-3);
        assert!((ac_rms_current(&w, 0) - a / (2.0 * 3.0f64.sqrt())).abs() < 5e-3);
        // Flat phase has zero AC content.
        assert!(ac_rms_current(&w, 1) < 1e-6);
        assert!((dc_current(&w, 1) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn losses_grow_with_coil_resistance() {
        let w = triangle_wave();
        let small = CoilModel::coilcraft(1.0);
        let large = CoilModel::coilcraft(10.0);
        let p_small = inductor_losses(&w, &small);
        let p_large = inductor_losses(&w, &large);
        assert!(p_small > 0.0);
        assert!(p_large > p_small, "same waveform, lossier coil");
    }

    #[test]
    fn empty_waveform_is_zero() {
        let w = Waveform::new(1);
        assert_eq!(voltage_ripple(&w), 0.0);
        assert_eq!(peak_current(&w), 0.0);
        assert_eq!(rms_current(&w, 0), 0.0);
        assert_eq!(mean_voltage(&w), 0.0);
    }
}
