use std::fmt;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

/// An interned digital-track name.
///
/// Track names ("uv", "gp0", "get & !pass", ...) are registered once —
/// at testbench/controller construction time — in a process-wide name
/// table; the per-event hot path then stores and compares a `u16`
/// instead of a heap `String`. Ids are process-local (the numbering
/// depends on registration order), but resolve back to the same names
/// everywhere, so rendered output is independent of interning order.
///
/// # Examples
///
/// ```
/// use a4a_analog::TrackId;
///
/// let uv = TrackId::intern("uv");
/// assert_eq!(uv, TrackId::intern("uv")); // idempotent
/// assert_eq!(uv.name(), "uv");
/// assert_eq!(uv, "uv"); // compares by resolved name
/// assert_eq!(uv.to_string(), "uv");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(u16);

fn registry() -> &'static Mutex<Vec<&'static str>> {
    static REGISTRY: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

impl TrackId {
    /// Interns `name`, returning its process-wide id. Idempotent; cold
    /// path only (linear scan + allocation on first sight of a name).
    ///
    /// # Panics
    ///
    /// Panics if the table exceeds `u16::MAX` distinct names — far
    /// beyond the handful of tracks any testbench registers.
    pub fn intern(name: &str) -> TrackId {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(idx) = reg.iter().position(|&n| n == name) {
            return TrackId(idx as u16);
        }
        assert!(
            reg.len() < u16::MAX as usize,
            "track name table full ({} names)",
            reg.len()
        );
        // Leaked once per distinct name for the process lifetime, so
        // `name()` can hand out `&'static str` without a guard.
        reg.push(Box::leak(name.to_owned().into_boxed_str()));
        TrackId((reg.len() - 1) as u16)
    }

    /// Resolves the id back to the name it was interned from.
    pub fn name(self) -> &'static str {
        let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.get(self.0 as usize).copied().unwrap_or("<unregistered>")
    }

    /// Raw table index (diagnostics only — ids are process-local).
    pub fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for TrackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl PartialEq<str> for TrackId {
    fn eq(&self, other: &str) -> bool {
        self.name() == other
    }
}

impl PartialEq<&str> for TrackId {
    fn eq(&self, other: &&str) -> bool {
        self.name() == *other
    }
}

/// A recorded mixed-signal run: analog samples plus named digital event
/// tracks — the data behind Figure 6's waveform plots.
///
/// # Examples
///
/// ```
/// use a4a_analog::Waveform;
///
/// let mut w = Waveform::new(2);
/// w.sample(0.0, 0.0, &[0.0, 0.0]);
/// w.sample(1e-9, 0.1, &[0.01, 0.0]);
/// w.event_named(0.5e-9, "uv", true);
/// assert_eq!(w.len(), 2);
/// assert!(w.csv().starts_with("t,v"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Waveform {
    phases: usize,
    /// Sample times (s).
    pub t: Vec<f64>,
    /// Output voltage per sample (V).
    pub v: Vec<f64>,
    /// Coil current per phase per sample (A): `i[phase][sample]`.
    pub i: Vec<Vec<f64>>,
    /// Digital events: (time, interned track id, new value). Resolve
    /// names with [`TrackId::name`]; `id == "uv"` compares by name.
    pub events: Vec<(f64, TrackId, bool)>,
}

impl Waveform {
    /// An empty record for `phases` phases.
    pub fn new(phases: usize) -> Waveform {
        Waveform {
            phases,
            t: Vec::new(),
            v: Vec::new(),
            i: vec![Vec::new(); phases],
            events: Vec::new(),
        }
    }

    /// Number of analog samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Returns `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.phases
    }

    /// Appends an analog sample.
    ///
    /// # Panics
    ///
    /// Panics if `currents` length differs from the phase count.
    pub fn sample(&mut self, t: f64, v: f64, currents: &[f64]) {
        assert_eq!(currents.len(), self.phases, "phase count mismatch");
        self.t.push(t);
        self.v.push(v);
        for (k, &c) in currents.iter().enumerate() {
            self.i[k].push(c);
        }
    }

    /// Appends a digital event on an interned track (allocation-free).
    pub fn event(&mut self, t: f64, track: TrackId, value: bool) {
        self.events.push((t, track, value));
    }

    /// Appends a digital event on a track given by name, interning it
    /// first. Convenience for tests and one-off recording; hot paths
    /// should intern once and use [`Waveform::event`].
    pub fn event_named(&mut self, t: f64, track: &str, value: bool) {
        self.event(t, TrackId::intern(track), value);
    }

    /// Restricts all analog samples to a time window (events kept).
    pub fn window(&self, t_start: f64, t_end: f64) -> Waveform {
        let mut out = Waveform::new(self.phases);
        for (idx, &t) in self.t.iter().enumerate() {
            if t >= t_start && t <= t_end {
                out.t.push(t);
                out.v.push(self.v[idx]);
                for k in 0..self.phases {
                    out.i[k].push(self.i[k][idx]);
                }
            }
        }
        out.events = self
            .events
            .iter()
            .filter(|(t, _, _)| *t >= t_start && *t <= t_end)
            .copied()
            .collect();
        out
    }

    /// Renders the analog samples as CSV (`t,v,i0,i1,...`).
    pub fn csv(&self) -> String {
        let mut out = String::from("t,v");
        for k in 0..self.phases {
            let _ = write!(out, ",i{k}");
        }
        out.push('\n');
        for idx in 0..self.len() {
            let _ = write!(out, "{:.9e},{:.6}", self.t[idx], self.v[idx]);
            for k in 0..self.phases {
                let _ = write!(out, ",{:.6}", self.i[k][idx]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders the digital events as CSV (`t,track,value`).
    pub fn events_csv(&self) -> String {
        let mut out = String::from("t,track,value\n");
        let mut sorted = self.events.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (t, track, value) in sorted {
            let _ = writeln!(out, "{t:.9e},{track},{}", u8::from(value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave() -> Waveform {
        let mut w = Waveform::new(2);
        for k in 0..10 {
            let t = k as f64 * 1e-9;
            w.sample(t, k as f64 * 0.1, &[k as f64 * 0.01, 0.0]);
        }
        w.event_named(3e-9, "uv", true);
        w.event_named(7e-9, "uv", false);
        w
    }

    #[test]
    fn sample_and_len() {
        let w = wave();
        assert_eq!(w.len(), 10);
        assert!(!w.is_empty());
        assert_eq!(w.phases(), 2);
        assert_eq!(w.i[0].len(), 10);
    }

    #[test]
    fn intern_round_trip() {
        let a = TrackId::intern("round-trip-a");
        let b = TrackId::intern("round-trip-b");
        assert_ne!(a, b);
        assert_eq!(a, TrackId::intern("round-trip-a"));
        assert_eq!(a.name(), "round-trip-a");
        assert_eq!(b.name(), "round-trip-b");
        assert_eq!(a, "round-trip-a");
        assert_ne!(&a, &"round-trip-b");
        assert_eq!(format!("{a}"), "round-trip-a");
    }

    #[test]
    fn window_filters_samples_and_events() {
        let w = wave().window(1.5e-9, 6.5e-9);
        assert_eq!(w.len(), 5);
        assert_eq!(w.events.len(), 1);
        assert_eq!(w.events[0].1, "uv");
        assert!(w.events[0].2);
    }

    #[test]
    fn window_preserves_interned_events() {
        let mut w = Waveform::new(1);
        w.sample(0.0, 0.0, &[0.0]);
        let gp = TrackId::intern("gp0");
        let uv = TrackId::intern("uv");
        w.event(1e-9, gp, true);
        w.event(2e-9, uv, true);
        w.event(3e-9, gp, false);
        let win = w.window(0.5e-9, 2.5e-9);
        assert_eq!(win.events, vec![(1e-9, gp, true), (2e-9, uv, true)]);
        assert_eq!(win.events[0].1.name(), "gp0");
    }

    #[test]
    fn csv_shape() {
        let w = wave();
        let csv = w.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,v,i0,i1");
        assert_eq!(lines.len(), 11);
        let ev = w.events_csv();
        assert!(ev.contains("uv,1"));
        assert!(ev.contains("uv,0"));
    }

    #[test]
    fn events_csv_renders_names_exactly_as_string_era() {
        // The pre-interning format was `{t:.9e},{track},{value as u8}`
        // with a stable sort by time; byte-for-byte compatibility is
        // the refactor contract.
        let mut w = Waveform::new(1);
        w.sample(0.0, 0.0, &[0.0]);
        w.event_named(2e-9, "uv", false);
        w.event_named(1e-9, "gp0", true);
        w.event_named(1e-9, "hl", true);
        assert_eq!(
            w.events_csv(),
            "t,track,value\n\
             1.000000000e-9,gp0,1\n\
             1.000000000e-9,hl,1\n\
             2.000000000e-9,uv,0\n"
        );
    }

    #[test]
    #[should_panic(expected = "phase count mismatch")]
    fn wrong_phase_count_panics() {
        let mut w = Waveform::new(2);
        w.sample(0.0, 0.0, &[0.0]);
    }
}
