use std::fmt::Write as _;

/// A recorded mixed-signal run: analog samples plus named digital event
/// tracks — the data behind Figure 6's waveform plots.
///
/// # Examples
///
/// ```
/// use a4a_analog::Waveform;
///
/// let mut w = Waveform::new(2);
/// w.sample(0.0, 0.0, &[0.0, 0.0]);
/// w.sample(1e-9, 0.1, &[0.01, 0.0]);
/// w.event(0.5e-9, "uv", true);
/// assert_eq!(w.len(), 2);
/// assert!(w.csv().starts_with("t,v"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Waveform {
    phases: usize,
    /// Sample times (s).
    pub t: Vec<f64>,
    /// Output voltage per sample (V).
    pub v: Vec<f64>,
    /// Coil current per phase per sample (A): `i[phase][sample]`.
    pub i: Vec<Vec<f64>>,
    /// Digital events: (time, track name, new value).
    pub events: Vec<(f64, String, bool)>,
}

impl Waveform {
    /// An empty record for `phases` phases.
    pub fn new(phases: usize) -> Waveform {
        Waveform {
            phases,
            t: Vec::new(),
            v: Vec::new(),
            i: vec![Vec::new(); phases],
            events: Vec::new(),
        }
    }

    /// Number of analog samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Returns `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.phases
    }

    /// Appends an analog sample.
    ///
    /// # Panics
    ///
    /// Panics if `currents` length differs from the phase count.
    pub fn sample(&mut self, t: f64, v: f64, currents: &[f64]) {
        assert_eq!(currents.len(), self.phases, "phase count mismatch");
        self.t.push(t);
        self.v.push(v);
        for (k, &c) in currents.iter().enumerate() {
            self.i[k].push(c);
        }
    }

    /// Appends a digital event on a named track.
    pub fn event(&mut self, t: f64, track: impl Into<String>, value: bool) {
        self.events.push((t, track.into(), value));
    }

    /// Restricts all analog samples to a time window (events kept).
    pub fn window(&self, t_start: f64, t_end: f64) -> Waveform {
        let mut out = Waveform::new(self.phases);
        for (idx, &t) in self.t.iter().enumerate() {
            if t >= t_start && t <= t_end {
                out.t.push(t);
                out.v.push(self.v[idx]);
                for k in 0..self.phases {
                    out.i[k].push(self.i[k][idx]);
                }
            }
        }
        out.events = self
            .events
            .iter()
            .filter(|(t, _, _)| *t >= t_start && *t <= t_end)
            .cloned()
            .collect();
        out
    }

    /// Renders the analog samples as CSV (`t,v,i0,i1,...`).
    pub fn csv(&self) -> String {
        let mut out = String::from("t,v");
        for k in 0..self.phases {
            let _ = write!(out, ",i{k}");
        }
        out.push('\n');
        for idx in 0..self.len() {
            let _ = write!(out, "{:.9e},{:.6}", self.t[idx], self.v[idx]);
            for k in 0..self.phases {
                let _ = write!(out, ",{:.6}", self.i[k][idx]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders the digital events as CSV (`t,track,value`).
    pub fn events_csv(&self) -> String {
        let mut out = String::from("t,track,value\n");
        let mut sorted = self.events.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (t, track, value) in sorted {
            let _ = writeln!(out, "{t:.9e},{track},{}", u8::from(value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave() -> Waveform {
        let mut w = Waveform::new(2);
        for k in 0..10 {
            let t = k as f64 * 1e-9;
            w.sample(t, k as f64 * 0.1, &[k as f64 * 0.01, 0.0]);
        }
        w.event(3e-9, "uv", true);
        w.event(7e-9, "uv", false);
        w
    }

    #[test]
    fn sample_and_len() {
        let w = wave();
        assert_eq!(w.len(), 10);
        assert!(!w.is_empty());
        assert_eq!(w.phases(), 2);
        assert_eq!(w.i[0].len(), 10);
    }

    #[test]
    fn window_filters_samples_and_events() {
        let w = wave().window(1.5e-9, 6.5e-9);
        assert_eq!(w.len(), 5);
        assert_eq!(w.events.len(), 1);
        assert_eq!(w.events[0].1, "uv");
    }

    #[test]
    fn csv_shape() {
        let w = wave();
        let csv = w.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,v,i0,i1");
        assert_eq!(lines.len(), 11);
        let ev = w.events_csv();
        assert!(ev.contains("uv,1"));
        assert!(ev.contains("uv,0"));
    }

    #[test]
    #[should_panic(expected = "phase count mismatch")]
    fn wrong_phase_count_panics() {
        let mut w = Waveform::new(2);
        w.sample(0.0, 0.0, &[0.0]);
    }
}
