/// An analog comparator with hysteresis and propagation delay.
///
/// The comparator watches a continuous quantity sampled at simulation
/// steps; crossings inside a step are located by linear interpolation, so
/// event times have sub-step resolution — the analog equivalent of the
/// testbench's `cross()` in Verilog-A.
///
/// # Examples
///
/// ```
/// use a4a_analog::Comparator;
///
/// // Over-current: asserts above 0.2 A with 4 mA hysteresis, 1 ns delay.
/// let mut oc = Comparator::above(0.2, 0.004, 1e-9);
/// let (t, asserted) = oc.update(0.0, 0.0, 1e-6, 0.3).expect("crossed");
/// assert!(asserted);
/// assert!((t - (0.202 / 0.3 * 1e-6 + 1e-9)).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Comparator {
    /// `true`: asserts when the input is above the threshold.
    rise_above: bool,
    threshold: f64,
    hysteresis: f64,
    delay: f64,
    state: bool,
}

impl Comparator {
    /// A comparator asserting when the input exceeds `threshold`.
    pub fn above(threshold: f64, hysteresis: f64, delay: f64) -> Comparator {
        Comparator {
            rise_above: true,
            threshold,
            hysteresis,
            delay,
            state: false,
        }
    }

    /// A comparator asserting when the input falls below `threshold`.
    pub fn below(threshold: f64, hysteresis: f64, delay: f64) -> Comparator {
        Comparator {
            rise_above: false,
            threshold,
            hysteresis,
            delay,
            state: false,
        }
    }

    /// The current (already-propagated) output.
    pub fn output(&self) -> bool {
        self.state
    }

    /// Forces the output state (used when initialising a testbench in a
    /// known operating point).
    pub fn set_output(&mut self, state: bool) {
        self.state = state;
    }

    /// Changes the reference threshold (the paper's OV-mode switch of
    /// `I_max`→`I_0` and `I_0`→`I_neg`). The next update evaluates
    /// against the new value.
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// The active threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The threshold the input must cross for the output to *assert*.
    fn assert_level(&self) -> f64 {
        if self.rise_above {
            self.threshold + self.hysteresis / 2.0
        } else {
            self.threshold - self.hysteresis / 2.0
        }
    }

    /// The threshold the input must cross for the output to *deassert*.
    fn deassert_level(&self) -> f64 {
        if self.rise_above {
            self.threshold - self.hysteresis / 2.0
        } else {
            self.threshold + self.hysteresis / 2.0
        }
    }

    /// Processes one linear segment of the input, from `(t0, x0)` to
    /// `(t1, x1)`. Returns the output change — `(event_time, new_state)`
    /// including propagation delay — or `None`.
    pub fn update(&mut self, t0: f64, x0: f64, t1: f64, x1: f64) -> Option<(f64, bool)> {
        let (level, target_state) = if self.state {
            (self.deassert_level(), false)
        } else {
            (self.assert_level(), true)
        };
        let beyond = |x: f64| {
            if self.rise_above == target_state {
                x >= level
            } else {
                x <= level
            }
        };
        if !beyond(x1) {
            return None;
        }
        // Locate the crossing within the segment.
        let t_cross = if beyond(x0) || (x1 - x0).abs() < f64::EPSILON {
            t0
        } else {
            t0 + (level - x0) / (x1 - x0) * (t1 - t0)
        };
        self.state = target_state;
        Some((t_cross + self.delay, target_state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn above_asserts_on_rise() {
        let mut c = Comparator::above(1.0, 0.0, 0.0);
        assert_eq!(c.update(0.0, 0.0, 1.0, 0.5), None);
        let (t, s) = c.update(1.0, 0.5, 2.0, 1.5).unwrap();
        assert!(s);
        assert!((t - 1.5).abs() < 1e-12, "crossing at midpoint, got {t}");
        assert!(c.output());
    }

    #[test]
    fn below_asserts_on_fall() {
        let mut c = Comparator::below(3.3, 0.0, 0.0);
        assert_eq!(c.update(0.0, 5.0, 1.0, 4.0), None);
        let (t, s) = c.update(1.0, 4.0, 2.0, 2.6).unwrap();
        assert!(s);
        assert!((t - 1.5).abs() < 1e-12);
    }

    #[test]
    fn hysteresis_prevents_chatter() {
        let mut c = Comparator::above(1.0, 0.2, 0.0);
        // Rises just past the nominal threshold but not past +h/2.
        assert_eq!(c.update(0.0, 0.9, 1.0, 1.05), None);
        // Past the assert level.
        assert!(c.update(1.0, 1.05, 2.0, 1.2).is_some());
        // Dips below nominal but above the deassert level: stays on.
        assert_eq!(c.update(2.0, 1.2, 3.0, 0.95), None);
        // Below the deassert level: releases.
        let (_, s) = c.update(3.0, 0.95, 4.0, 0.8).unwrap();
        assert!(!s);
    }

    #[test]
    fn delay_shifts_event_time() {
        let mut c = Comparator::above(1.0, 0.0, 0.25);
        let (t, _) = c.update(0.0, 0.0, 1.0, 2.0).unwrap();
        assert!((t - 0.75).abs() < 1e-12, "0.5 crossing + 0.25 delay, got {t}");
    }

    #[test]
    fn threshold_change_applies_next_update() {
        let mut c = Comparator::above(0.2, 0.0, 0.0);
        assert_eq!(c.update(0.0, 0.1, 1.0, 0.15), None);
        c.set_threshold(0.12);
        // Input is flat at 0.15, already beyond the new threshold.
        let (t, s) = c.update(1.0, 0.15, 2.0, 0.15).unwrap();
        assert!(s);
        assert!((t - 1.0).abs() < 1e-12, "asserts at segment start");
    }

    #[test]
    fn set_output_initialises_state() {
        let mut c = Comparator::below(3.3, 0.0, 0.0);
        c.set_output(true);
        assert!(c.output());
        // Already asserted: rising past the deassert level releases.
        let (_, s) = c.update(0.0, 3.0, 1.0, 3.5).unwrap();
        assert!(!s);
    }

    #[test]
    fn doc_example_numbers() {
        let mut oc = Comparator::above(0.2, 0.004, 1e-9);
        let (t, s) = oc.update(0.0, 0.0, 1e-6, 0.3).unwrap();
        assert!(s);
        // level = 0.202; crossing at 0.202/0.3 us = 0.6733 us.
        assert!((t - (0.202 / 0.3 * 1e-6 + 1e-9)).abs() < 1e-15);
    }
}
