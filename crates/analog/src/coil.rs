use std::fmt;

/// An RF power inductor model in the style of the Coilcraft parts the
/// paper simulates.
///
/// The family trend matters for Figure 7c: within one package family,
/// larger inductance means more turns of thinner wire, so DC resistance
/// (and the high-frequency ESR that dominates ripple losses) grows with
/// inductance. The values here follow the 0805HP-class catalogue shape.
///
/// # Examples
///
/// ```
/// use a4a_analog::CoilModel;
///
/// let small = CoilModel::coilcraft(1.8);
/// let large = CoilModel::coilcraft(8.2);
/// assert!(small.dcr < large.dcr);
/// assert!(small.esr_hf < large.esr_hf);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoilModel {
    /// Inductance (H).
    pub inductance: f64,
    /// DC winding resistance (Ω).
    pub dcr: f64,
    /// Effective series resistance at the converter's ~3 MHz ripple
    /// frequency (Ω), capturing skin and core losses.
    pub esr_hf: f64,
}

/// Catalogue anchor points: (inductance µH, DCR Ω, ESR Ω at ~3 MHz).
const CATALOGUE: &[(f64, f64, f64)] = &[
    (1.0, 0.045, 0.30),
    (1.8, 0.060, 0.42),
    (2.25, 0.070, 0.50),
    (3.1, 0.085, 0.62),
    (4.7, 0.105, 0.85),
    (5.7, 0.130, 1.00),
    (6.8, 0.150, 1.15),
    (8.2, 0.180, 1.35),
    (10.0, 0.210, 1.60),
];

impl CoilModel {
    /// A coil with explicit parameters (inductance in henries).
    ///
    /// # Panics
    ///
    /// Panics on non-positive values.
    pub fn new(inductance: f64, dcr: f64, esr_hf: f64) -> CoilModel {
        assert!(
            inductance > 0.0 && dcr > 0.0 && esr_hf > 0.0,
            "coil parameters must be positive"
        );
        CoilModel {
            inductance,
            dcr,
            esr_hf,
        }
    }

    /// A Coilcraft-style part of the given inductance in **µH**, with
    /// DCR/ESR interpolated from the catalogue family (extrapolated
    /// linearly outside 1–10 µH).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive inductance.
    pub fn coilcraft(l_uh: f64) -> CoilModel {
        assert!(l_uh > 0.0, "inductance must be positive");
        let interp = |select: fn(&(f64, f64, f64)) -> f64| -> f64 {
            // Piecewise-linear interpolation over the catalogue.
            let first = &CATALOGUE[0];
            let last = &CATALOGUE[CATALOGUE.len() - 1];
            if l_uh <= first.0 {
                let second = &CATALOGUE[1];
                let t = (l_uh - first.0) / (second.0 - first.0);
                return select(first) + t * (select(second) - select(first));
            }
            if l_uh >= last.0 {
                let prev = &CATALOGUE[CATALOGUE.len() - 2];
                let t = (l_uh - prev.0) / (last.0 - prev.0);
                return select(prev) + t * (select(last) - select(prev));
            }
            for w in CATALOGUE.windows(2) {
                if l_uh >= w[0].0 && l_uh <= w[1].0 {
                    let t = (l_uh - w[0].0) / (w[1].0 - w[0].0);
                    return select(&w[0]) + t * (select(&w[1]) - select(&w[0]));
                }
            }
            unreachable!("interpolation covers the whole axis")
        };
        CoilModel {
            inductance: l_uh * 1e-6,
            dcr: interp(|c| c.1),
            esr_hf: interp(|c| c.2),
        }
    }

    /// The nine catalogue inductances swept in Figure 7a/7c, in µH.
    pub fn family_uh() -> Vec<f64> {
        CATALOGUE.iter().map(|c| c.0).collect()
    }

    /// The inductance in µH (display convenience).
    pub fn inductance_uh(&self) -> f64 {
        self.inductance * 1e6
    }
}

impl fmt::Display for CoilModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}uH (DCR {:.0}mΩ, ESR {:.2}Ω@3MHz)",
            self.inductance_uh(),
            self.dcr * 1e3,
            self.esr_hf
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_points_exact() {
        let c = CoilModel::coilcraft(4.7);
        assert!((c.inductance - 4.7e-6).abs() < 1e-12);
        assert!((c.dcr - 0.105).abs() < 1e-9);
        assert!((c.esr_hf - 0.85).abs() < 1e-9);
    }

    #[test]
    fn interpolation_between_points() {
        let c = CoilModel::coilcraft(1.4); // halfway 1.0..1.8
        assert!(c.dcr > 0.045 && c.dcr < 0.060);
    }

    #[test]
    fn monotone_over_family() {
        let family = CoilModel::family_uh();
        assert_eq!(family.len(), 9);
        let coils: Vec<CoilModel> = family.iter().map(|&l| CoilModel::coilcraft(l)).collect();
        for w in coils.windows(2) {
            assert!(w[0].inductance < w[1].inductance);
            assert!(w[0].dcr < w[1].dcr);
            assert!(w[0].esr_hf < w[1].esr_hf);
        }
    }

    #[test]
    fn extrapolation_stays_positive() {
        let lo = CoilModel::coilcraft(0.5);
        let hi = CoilModel::coilcraft(15.0);
        assert!(lo.dcr > 0.0 && hi.dcr > lo.dcr);
    }

    #[test]
    fn display_formats() {
        let c = CoilModel::coilcraft(4.7);
        let s = c.to_string();
        assert!(s.contains("4.70uH"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_rejected() {
        let _ = CoilModel::new(0.0, 0.1, 0.1);
    }
}
