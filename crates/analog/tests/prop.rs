//! Property-based tests: the buck model stays physical under arbitrary
//! switch schedules, and the comparators never miss or invent crossings.

use a4a_analog::{Buck, BuckParams, CoilModel, Comparator, SwitchState};
use a4a_rt::prop::{self, Config, Gen, PropResult};
use a4a_rt::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};

/// A random per-phase switch schedule: (step index, phase, state).
fn arb_schedule(g: &mut Gen, phases: usize, len: usize) -> Vec<(usize, usize, SwitchState)> {
    g.vec(0..len, |g| {
        (
            g.usize(0..2000),
            g.usize(0..phases),
            *g.pick(&[SwitchState::PmosOn, SwitchState::NmosOn, SwitchState::Off]),
        )
    })
}

/// Under any legal switching schedule the state stays bounded and
/// finite: |i| below a physical ceiling, v within diode-clamped
/// rails, and no NaNs.
#[test]
fn buck_stays_physical() {
    prop::check_with(&Config::with_cases(48), "buck_stays_physical", |g: &mut Gen| -> PropResult {
        let schedule = arb_schedule(g, 2, 40);
        let params = BuckParams::default().with_phases(2);
        let vin = params.vin;
        let mut buck = Buck::new(params);
        let mut schedule = schedule;
        schedule.sort_by_key(|s| s.0);
        let mut next = 0usize;
        for step in 0..2000usize {
            while next < schedule.len() && schedule[next].0 <= step {
                let (_, phase, state) = schedule[next];
                let (gp, gn) = match state {
                    SwitchState::PmosOn => (true, false),
                    SwitchState::NmosOn => (false, true),
                    SwitchState::Off => (false, false),
                };
                buck.set_switch(phase, gp, gn);
                next += 1;
            }
            buck.step(1e-9);
            for k in 0..2 {
                let i = buck.coil_current(k);
                prop_assert!(i.is_finite());
                prop_assert!(i.abs() < 20.0, "runaway current {i}");
            }
            let v = buck.output_voltage();
            prop_assert!(v.is_finite());
            prop_assert!(v > -2.0 && v < vin + 2.0, "rail escape {v}");
        }
        Ok(())
    });
}

/// With both switches off the coil current never crosses zero
/// (discontinuous conduction clamp), from any pre-charge.
#[test]
fn dcm_never_reverses() {
    prop::check_with(&Config::with_cases(48), "dcm_never_reverses", |g: &mut Gen| -> PropResult {
        let precharge_steps = g.usize(10..2000);
        let mut buck = Buck::new(BuckParams::default().with_phases(1));
        buck.set_switch(0, true, false);
        for _ in 0..precharge_steps {
            buck.step(1e-9);
        }
        buck.set_switch(0, false, false);
        let sign = buck.coil_current(0).signum();
        for _ in 0..30_000 {
            buck.step(1e-9);
            let i = buck.coil_current(0);
            prop_assert!(i == 0.0 || i.signum() == sign, "current reversed in DCM");
        }
        Ok(())
    });
}

/// RK2 is step-size robust: halving dt changes the trajectory only
/// slightly for a smooth (fixed-switch) segment.
#[test]
fn integration_step_robust() {
    prop::check_with(&Config::with_cases(48), "integration_step_robust", |g: &mut Gen| -> PropResult {
        let l_uh = g.f64(1.0..10.0);
        let steps = g.usize(100..1000);
        let run = |dt: f64, n: usize| -> (f64, f64) {
            let mut b = Buck::new(
                BuckParams::default()
                    .with_phases(1)
                    .with_coil(CoilModel::coilcraft(l_uh)),
            );
            b.set_switch(0, true, false);
            for _ in 0..n {
                b.step(dt);
            }
            (b.output_voltage(), b.coil_current(0))
        };
        let (v1, i1) = run(1e-9, steps);
        let (v2, i2) = run(0.5e-9, steps * 2);
        prop_assert!((v1 - v2).abs() < 0.02, "{v1} vs {v2}");
        prop_assert!((i1 - i2).abs() < 0.02, "{i1} vs {i2}");
        Ok(())
    });
}

/// A comparator fed a piecewise-linear trace produces alternating
/// edges whose times are strictly increasing and sit within the
/// segment that crossed (plus delay).
#[test]
fn comparator_edges_alternate() {
    prop::check_with(&Config::with_cases(48), "comparator_edges_alternate", |g: &mut Gen| -> PropResult {
        let values = g.vec(2..60, |g| g.f64(-1.0..1.0));
        let mut c = Comparator::above(0.0, 0.1, 1e-9);
        let mut last_state = false;
        let mut last_time = f64::NEG_INFINITY;
        let mut prev = (0.0f64, values[0]);
        for (k, &x) in values.iter().enumerate().skip(1) {
            let t = k as f64 * 1e-6;
            if let Some((te, s)) = c.update(prev.0, prev.1, t, x) {
                prop_assert_ne!(s, last_state, "edges must alternate");
                prop_assert!(te > last_time, "event times increase");
                prop_assert!(te >= prev.0 && te <= t + 1e-9 + 1e-12, "event within segment+delay");
                last_state = s;
                last_time = te;
            }
            prop_assert_eq!(c.output(), last_state);
            prev = (t, x);
        }
        Ok(())
    });
}

/// Coil family interpolation is monotone in inductance.
#[test]
fn coil_family_monotone() {
    prop::check_with(&Config::with_cases(48), "coil_family_monotone", |g: &mut Gen| -> PropResult {
        let a = g.f64(1.0..10.0);
        let b = g.f64(1.0..10.0);
        prop_assume!(a < b);
        let ca = CoilModel::coilcraft(a);
        let cb = CoilModel::coilcraft(b);
        prop_assert!(ca.inductance < cb.inductance);
        prop_assert!(ca.dcr <= cb.dcr);
        prop_assert!(ca.esr_hf <= cb.esr_hf);
        Ok(())
    });
}
