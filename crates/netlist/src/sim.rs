//! Deterministic event-driven simulation of a [`Netlist`] with inertial
//! delays and glitch observation.
//!
//! Every net carries a three-valued [`Logic`] level. A gate whose inputs
//! change schedules its new output value after the gate delay; if the
//! inputs revert before the delay elapses the pending transition is
//! cancelled and recorded as a *glitch* — this is how hazards in
//! non-speed-independent circuits are observed, mirroring the paper's
//! "absence of hazards" verification at gate level.

use a4a_sim::{EventKey, Logic, Scheduler, Time};

use crate::{GateId, NetId, Netlist};

/// A cancelled (filtered) pulse: evidence of a hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Glitch {
    /// When the pulse was cancelled.
    pub time: Time,
    /// The net whose pending transition was revoked.
    pub net: NetId,
}

/// A recorded net transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// When the net changed.
    pub time: Time,
    /// The net.
    pub net: NetId,
    /// The new level.
    pub value: Logic,
}

/// Event-driven simulator over a borrowed [`Netlist`].
///
/// See the crate-level example for typical use. All nets start at
/// [`Logic::X`]; drive primary inputs with [`GateSim::set_input`] and
/// pre-load state-holding outputs with [`GateSim::init_net`], then
/// [`GateSim::settle`].
#[derive(Debug)]
pub struct GateSim<'a> {
    netlist: &'a Netlist,
    values: Vec<Logic>,
    sched: Scheduler<(NetId, Logic)>,
    pending: Vec<Option<(EventKey, Logic)>>,
    glitches: Vec<Glitch>,
    trace: Vec<Transition>,
    tracing: bool,
}

impl<'a> GateSim<'a> {
    /// Creates a simulator with every net at `X` and time zero.
    pub fn new(netlist: &'a Netlist) -> Self {
        GateSim {
            netlist,
            values: vec![Logic::X; netlist.net_count()],
            sched: Scheduler::new(),
            pending: vec![None; netlist.net_count()],
            glitches: Vec::new(),
            trace: Vec::new(),
            tracing: false,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// The level of `net`.
    ///
    /// # Panics
    ///
    /// Panics if `net` does not belong to the netlist.
    pub fn value(&self, net: NetId) -> Logic {
        self.values[net.index()]
    }

    /// Glitches observed so far.
    pub fn glitches(&self) -> &[Glitch] {
        &self.glitches
    }

    /// Recorded transitions (empty unless tracing is enabled).
    pub fn trace(&self) -> &[Transition] {
        &self.trace
    }

    /// Enables or disables transition recording.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Forces a primary input to `value` at the current time and
    /// propagates.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not a primary input.
    pub fn set_input(&mut self, net: NetId, value: impl Into<Logic>) {
        assert!(
            self.netlist.net(net).is_input,
            "{} is not a primary input",
            self.netlist.net(net).name
        );
        self.apply(net, value.into());
    }

    /// Pre-loads a net's level without an event (initialisation of
    /// state-holding outputs before time starts).
    pub fn init_net(&mut self, net: NetId, value: impl Into<Logic>) {
        self.values[net.index()] = value.into();
        for &g in self.netlist.fanout(net) {
            self.reevaluate(g);
        }
    }

    /// Processes events until the queue drains or the next event is past
    /// `deadline`. Returns `true` when the circuit is quiescent (queue
    /// empty) at return.
    pub fn settle(&mut self, deadline: Time) -> bool {
        while let Some(t) = self.sched.peek_time() {
            if t > deadline {
                return false;
            }
            self.step();
        }
        true
    }

    /// Processes a single event; returns the transition, or `None` when
    /// the queue is empty.
    pub fn step(&mut self) -> Option<Transition> {
        let (time, (net, value)) = self.sched.pop()?;
        self.pending[net.index()] = None;
        self.apply_at(net, value, time);
        Some(Transition { time, net, value })
    }

    /// Sets an input and measures the delay until any of `watch` changes.
    ///
    /// Returns the first watched net to change and the elapsed time, or
    /// `None` if the circuit settles (or passes `deadline`) without any
    /// watched net changing.
    pub fn measure_reaction(
        &mut self,
        input: NetId,
        value: impl Into<Logic>,
        watch: &[NetId],
        deadline: Time,
    ) -> Option<(NetId, Time)> {
        let t0 = self.now();
        let before: Vec<Logic> = watch.iter().map(|&n| self.value(n)).collect();
        self.set_input(input, value);
        loop {
            match self.sched.peek_time() {
                None => return None,
                Some(t) if t > deadline => return None,
                Some(_) => {}
            }
            let tr = self.step().expect("peeked nonempty");
            if let Some(pos) = watch.iter().position(|&n| n == tr.net) {
                if before[pos] != tr.value {
                    return Some((tr.net, tr.time - t0));
                }
            }
        }
    }

    fn apply(&mut self, net: NetId, value: Logic) {
        let now = self.now();
        self.apply_at(net, value, now);
    }

    fn apply_at(&mut self, net: NetId, value: Logic, time: Time) {
        if self.values[net.index()] == value {
            return;
        }
        self.values[net.index()] = value;
        if self.tracing {
            self.trace.push(Transition { time, net, value });
        }
        for &g in self.netlist.fanout(net) {
            self.reevaluate(g);
        }
    }

    fn reevaluate(&mut self, gate_id: GateId) {
        let gate = self.netlist.gate(gate_id);
        let out = gate.output;
        let current = self.values[out.index()];
        let target = self.eval_gate(gate_id, current);

        let pending = self.pending[out.index()];
        match pending {
            Some((key, scheduled)) => {
                if scheduled == target {
                    return; // already heading there
                }
                // Revoke the pulse.
                self.sched.cancel(key);
                self.pending[out.index()] = None;
                self.glitches.push(Glitch {
                    time: self.now(),
                    net: out,
                });
                if target != current {
                    self.schedule_transition(gate_id, target);
                }
            }
            None => {
                if target != current {
                    self.schedule_transition(gate_id, target);
                }
            }
        }
    }

    fn schedule_transition(&mut self, gate_id: GateId, target: Logic) {
        let gate = self.netlist.gate(gate_id);
        let delay = gate.delay.towards(target.to_bool(true));
        let key = self.sched.schedule_after(delay, (gate.output, target));
        self.pending[gate.output.index()] = Some((key, target));
    }

    /// Three-valued gate evaluation: the output is known only when both
    /// completions of the unknown inputs agree.
    fn eval_gate(&self, gate_id: GateId, current: Logic) -> Logic {
        let gate = self.netlist.gate(gate_id);
        let pins: Vec<Logic> = gate
            .pins
            .iter()
            .map(|&p| self.values[p.index()])
            .collect();
        let any_x = pins.iter().any(|l| l.is_x()) || current.is_x();
        if !any_x {
            let bits: Vec<bool> = pins.iter().map(|l| l.is_one()).collect();
            return Logic::from(gate.kind.eval(&bits, current.is_one()));
        }
        // Evaluate all completions of the unknowns (bounded: gates are
        // small). If every completion agrees, the output is known.
        let x_positions: Vec<usize> = pins
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_x())
            .map(|(i, _)| i)
            .collect();
        let cur_options: &[bool] = if current.is_x() {
            &[false, true]
        } else if current.is_one() {
            &[true]
        } else {
            &[false]
        };
        let mut result: Option<bool> = None;
        let combos = 1u32 << x_positions.len();
        for combo in 0..combos {
            let mut bits: Vec<bool> = pins.iter().map(|l| l.is_one()).collect();
            for (k, &pos) in x_positions.iter().enumerate() {
                bits[pos] = (combo >> k) & 1 == 1;
            }
            for &cur in cur_options {
                let v = gate.kind.eval(&bits, cur);
                match result {
                    None => result = Some(v),
                    Some(prev) if prev != v => return Logic::X,
                    Some(_) => {}
                }
            }
        }
        result.map(Logic::from).unwrap_or(Logic::X)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateLib, NetlistBuilder};
    use a4a_boolmin::Expr;

    fn lib() -> GateLib {
        GateLib::tsmc90()
    }

    #[test]
    fn inverter_propagates_with_delay() {
        let lib = lib();
        let mut b = NetlistBuilder::new("inv");
        let a = b.input("a");
        let y = b.net("y");
        b.inv(y, a, &lib);
        let n = b.build().unwrap();
        let mut sim = GateSim::new(&n);
        sim.set_input(a, false);
        assert!(sim.settle(Time::from_ns(1.0)));
        assert_eq!(sim.value(y), Logic::One);
        let t0 = sim.now();
        sim.set_input(a, true);
        sim.settle(Time::from_ns(10.0));
        assert_eq!(sim.value(y), Logic::Zero);
        assert!(sim.now() > t0);
    }

    #[test]
    fn x_propagates_until_inputs_known() {
        let lib = lib();
        let mut b = NetlistBuilder::new("and");
        let a = b.input("a");
        let c = b.input("c");
        let y = b.net("y");
        b.complex(y, &[a, c], Expr::and(vec![Expr::var(0), Expr::var(1)]), &lib);
        let n = b.build().unwrap();
        let mut sim = GateSim::new(&n);
        assert_eq!(sim.value(y), Logic::X);
        // A controlling 0 resolves the AND even with the other input X.
        sim.set_input(a, false);
        sim.settle(Time::from_ns(10.0));
        assert_eq!(sim.value(y), Logic::Zero);
        sim.set_input(a, true);
        sim.settle(Time::from_ns(10.0));
        assert_eq!(sim.value(y), Logic::X, "other input still unknown");
        sim.set_input(c, true);
        sim.settle(Time::from_ns(10.0));
        assert_eq!(sim.value(y), Logic::One);
    }

    #[test]
    fn c_element_holds_state() {
        let lib = lib();
        let mut b = NetlistBuilder::new("c");
        let a = b.input("a");
        let c = b.input("c");
        let y = b.net("y");
        b.c_element(y, &[a, c], &lib);
        let n = b.build().unwrap();
        let mut sim = GateSim::new(&n);
        sim.set_input(a, false);
        sim.set_input(c, false);
        sim.init_net(y, false);
        sim.settle(Time::from_ns(10.0));
        sim.set_input(a, true);
        sim.settle(Time::from_ns(10.0));
        assert_eq!(sim.value(y), Logic::Zero, "one input is not enough");
        sim.set_input(c, true);
        sim.settle(Time::from_ns(10.0));
        assert_eq!(sim.value(y), Logic::One);
        sim.set_input(a, false);
        sim.settle(Time::from_ns(10.0));
        assert_eq!(sim.value(y), Logic::One, "holds until both drop");
        sim.set_input(c, false);
        sim.settle(Time::from_ns(10.0));
        assert_eq!(sim.value(y), Logic::Zero);
    }

    #[test]
    fn short_pulse_is_filtered_and_counted() {
        let mut b = NetlistBuilder::new("pulse");
        let a = b.input("a");
        let y = b.net("y");
        b.delay_line(y, a, Time::from_ns(1.0));
        let n = b.build().unwrap();
        let mut sim = GateSim::new(&n);
        sim.set_input(a, false);
        sim.settle(Time::from_us(1.0));
        // 100 ps pulse through a 1 ns inertial delay: filtered.
        sim.set_input(a, true);
        let t = sim.now() + Time::from_ps(100.0);
        // Advance time by scheduling nothing; emulate with settle deadline
        // then a direct input flip at the later time via a helper event.
        while sim.sched.peek_time().map(|pt| pt <= t) == Some(true) {
            sim.step();
        }
        // Manually advance the scheduler clock by scheduling a no-op.
        sim.sched.schedule(t, (a, Logic::Zero));
        sim.step(); // consumes the helper event, setting a low again
        sim.pending[a.index()] = None;
        sim.settle(Time::from_us(2.0));
        assert_eq!(sim.value(y), Logic::Zero, "pulse never reached output");
        assert_eq!(sim.glitches().len(), 1);
        assert_eq!(sim.glitches()[0].net, y);
    }

    #[test]
    fn mutex_grants_one_side() {
        let lib = lib();
        let mut b = NetlistBuilder::new("mx");
        let r1 = b.input("r1");
        let r2 = b.input("r2");
        let g1 = b.net("g1");
        let g2 = b.net("g2");
        b.mutex(g1, g2, r1, r2, &lib);
        let n = b.build().unwrap();
        let mut sim = GateSim::new(&n);
        sim.set_input(r1, false);
        sim.set_input(r2, false);
        sim.init_net(g1, false);
        sim.init_net(g2, false);
        sim.settle(Time::from_ns(10.0));
        // Both request in the same instant.
        sim.set_input(r1, true);
        sim.set_input(r2, true);
        sim.settle(Time::from_ns(50.0));
        let granted = [sim.value(g1), sim.value(g2)];
        assert_eq!(
            granted.iter().filter(|l| l.is_one()).count(),
            1,
            "exactly one grant: {granted:?}"
        );
        // Release the winner; the loser gets the grant.
        if sim.value(g1).is_one() {
            sim.set_input(r1, false);
        } else {
            sim.set_input(r2, false);
        }
        sim.settle(Time::from_ns(50.0));
        assert_eq!(
            [sim.value(g1), sim.value(g2)]
                .iter()
                .filter(|l| l.is_one())
                .count(),
            1
        );
    }

    #[test]
    fn tracing_records_transitions() {
        let lib = lib();
        let mut b = NetlistBuilder::new("tr");
        let a = b.input("a");
        let y = b.net("y");
        b.buf(y, a, &lib);
        let n = b.build().unwrap();
        let mut sim = GateSim::new(&n);
        sim.set_tracing(true);
        sim.set_input(a, true);
        sim.settle(Time::from_ns(10.0));
        assert!(sim.trace().iter().any(|t| t.net == y && t.value == Logic::One));
    }

    #[test]
    fn measure_reaction_reports_path_delay() {
        let lib = lib();
        let mut b = NetlistBuilder::new("path");
        let a = b.input("a");
        let x = b.net("x");
        let y = b.net("y");
        b.inv(x, a, &lib);
        b.inv(y, x, &lib);
        let n = b.build().unwrap();
        let mut sim = GateSim::new(&n);
        sim.set_input(a, false);
        sim.settle(Time::from_ns(10.0));
        let (net, dt) = sim
            .measure_reaction(a, true, &[y], Time::from_ns(100.0))
            .expect("output toggles");
        assert_eq!(net, y);
        // Two inverter delays: rise then fall (or vice versa).
        assert!(dt > Time::from_ps(50.0) && dt < Time::from_ps(200.0), "{dt}");
    }

    #[test]
    fn measure_reaction_none_when_no_effect() {
        let lib = lib();
        let mut b = NetlistBuilder::new("dead");
        let a = b.input("a");
        let c = b.input("c");
        let y = b.net("y");
        b.buf(y, c, &lib);
        let n = b.build().unwrap();
        let mut sim = GateSim::new(&n);
        sim.set_input(a, false);
        sim.set_input(c, false);
        sim.settle(Time::from_ns(10.0));
        assert_eq!(
            sim.measure_reaction(a, true, &[y], Time::from_ns(100.0)),
            None
        );
    }

    #[test]
    fn settle_deadline_respected() {
        let lib = lib();
        let mut b = NetlistBuilder::new("osc");
        let y = b.net("y");
        // Ring oscillator: y = !y.
        b.inv(y, y, &lib);
        let n = b.build().unwrap();
        let mut sim = GateSim::new(&n);
        sim.init_net(y, false);
        let settled = sim.settle(Time::from_ns(5.0));
        assert!(!settled, "oscillator never settles");
        assert!(sim.now() <= Time::from_ns(5.0) + Time::from_ps(100.0));
    }
}
