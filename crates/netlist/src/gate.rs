use a4a_boolmin::Expr;
use a4a_sim::Time;

/// Pin-to-output propagation delays of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delay {
    /// Delay of an output rising transition.
    pub rise: Time,
    /// Delay of an output falling transition.
    pub fall: Time,
}

impl Delay {
    /// A symmetric delay.
    pub fn symmetric(d: Time) -> Delay {
        Delay { rise: d, fall: d }
    }

    /// The delay applying to a transition towards `target` (rise when
    /// `target` is `true`).
    pub fn towards(&self, target: bool) -> Time {
        if target {
            self.rise
        } else {
            self.fall
        }
    }
}

/// Functional kind of a gate.
///
/// Every gate drives exactly one output net. State-holding kinds
/// (generalized C, mutex half) consult the output's previous value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateKind {
    /// Pure combinational gate: `out = expr(pins)` where expression
    /// variable `i` refers to pin `i`.
    Complex(Expr),
    /// Generalized (asymmetric) C-element: `out' = set(pins) | (out &
    /// !reset(pins))`. The plain Muller C-element is the special case
    /// `set = AND(pins)`, `reset = AND(!pins)`.
    GeneralizedC {
        /// Set function over the pins.
        set: Expr,
        /// Reset function over the pins.
        reset: Expr,
    },
    /// One half of a mutual-exclusion element: pin 0 is this side's
    /// request, pin 1 the *other* side's grant. The half asserts its
    /// grant when requested and the other grant is low:
    /// `out' = req & !other_grant`. Two cross-coupled halves form the
    /// classic NAND-latch MUTEX with metastability filter.
    MutexHalf,
}

impl GateKind {
    /// Number of pins the kind requires, if fixed.
    pub fn pin_count(&self) -> Option<usize> {
        match self {
            GateKind::MutexHalf => Some(2),
            _ => None,
        }
    }

    /// Evaluates the gate's next output value.
    ///
    /// `pins` holds the current pin values (index = expression variable)
    /// and `current` the present output value (ignored by combinational
    /// gates).
    pub fn eval(&self, pins: &[bool], current: bool) -> bool {
        let assignment = pins
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &v)| acc | (u64::from(v)) << i);
        match self {
            GateKind::Complex(expr) => expr.eval(assignment),
            GateKind::GeneralizedC { set, reset } => {
                set.eval(assignment) || (current && !reset.eval(assignment))
            }
            GateKind::MutexHalf => pins[0] && !pins[1],
        }
    }

    /// A short name for reports and Verilog comments.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            GateKind::Complex(_) => "cplx",
            GateKind::GeneralizedC { .. } => "gc",
            GateKind::MutexHalf => "mutex_half",
        }
    }
}

/// A timing library in the style of a 90 nm standard-cell kit.
///
/// Delays are derived from gate complexity: a base intrinsic delay plus a
/// per-literal term, with state-holding elements slightly slower. The
/// default values are calibrated so the asynchronous buck controller's
/// input→gate-drive paths land in the sub-nanosecond to ~2 ns range the
/// paper reports for TSMC 90 nm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateLib {
    /// Intrinsic delay of the simplest gate.
    pub base: Time,
    /// Additional delay per literal of the gate function.
    pub per_literal: Time,
    /// Extra intrinsic delay of state-holding gates (C-elements).
    pub latch_penalty: Time,
    /// Extra delay of the mutex (arbitration) element.
    pub mutex_penalty: Time,
}

impl GateLib {
    /// The default 90 nm-class library.
    pub fn tsmc90() -> GateLib {
        GateLib {
            base: Time::from_ps(35.0),
            per_literal: Time::from_ps(12.0),
            latch_penalty: Time::from_ps(25.0),
            mutex_penalty: Time::from_ps(45.0),
        }
    }

    /// A slower library (roughly a 0.35 µm-class process) for ablation
    /// studies.
    pub fn slow() -> GateLib {
        GateLib {
            base: Time::from_ps(180.0),
            per_literal: Time::from_ps(60.0),
            latch_penalty: Time::from_ps(120.0),
            mutex_penalty: Time::from_ps(200.0),
        }
    }

    /// The delay assigned to a gate of the given kind.
    pub fn delay_for(&self, kind: &GateKind) -> Delay {
        let literals = match kind {
            GateKind::Complex(e) => e.literal_count(),
            GateKind::GeneralizedC { set, reset } => set.literal_count() + reset.literal_count(),
            GateKind::MutexHalf => 2,
        };
        let mut d = self.base + self.per_literal * u64::from(literals.max(1));
        match kind {
            GateKind::GeneralizedC { .. } => d += self.latch_penalty,
            GateKind::MutexHalf => d += self.mutex_penalty,
            GateKind::Complex(_) => {}
        }
        // Falling edges are marginally faster in CMOS (NMOS strength).
        Delay {
            rise: d,
            fall: d - d / 8,
        }
    }
}

impl Default for GateLib {
    fn default() -> Self {
        GateLib::tsmc90()
    }
}

/// Builds the set/reset pair of a plain Muller C-element over `n` pins.
pub(crate) fn muller_c_functions(n: usize) -> (Expr, Expr) {
    let set = Expr::and((0..n).map(Expr::var).collect());
    let reset = Expr::and((0..n).map(|i| Expr::not(Expr::var(i))).collect());
    (set, reset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_gate_eval() {
        let kind = GateKind::Complex(Expr::and(vec![Expr::var(0), Expr::not(Expr::var(1))]));
        assert!(kind.eval(&[true, false], false));
        assert!(!kind.eval(&[true, true], true));
    }

    #[test]
    fn muller_c_semantics() {
        let (set, reset) = muller_c_functions(2);
        let c = GateKind::GeneralizedC { set, reset };
        assert!(c.eval(&[true, true], false), "all 1 sets");
        assert!(!c.eval(&[false, false], true), "all 0 resets");
        assert!(c.eval(&[true, false], true), "holds 1");
        assert!(!c.eval(&[true, false], false), "holds 0");
    }

    #[test]
    fn generalized_c_asymmetric() {
        // set = a, reset = b
        let c = GateKind::GeneralizedC {
            set: Expr::var(0),
            reset: Expr::var(1),
        };
        assert!(c.eval(&[true, false], false));
        assert!(!c.eval(&[false, true], true));
        // set wins over reset in this latch form
        assert!(c.eval(&[true, true], false));
    }

    #[test]
    fn mutex_half_semantics() {
        let m = GateKind::MutexHalf;
        assert!(m.eval(&[true, false], false), "req with other grant low");
        assert!(!m.eval(&[true, true], true), "other grant blocks");
        assert!(!m.eval(&[false, false], true), "release on req low");
        assert_eq!(m.pin_count(), Some(2));
    }

    #[test]
    fn library_delays_scale_with_literals() {
        let lib = GateLib::tsmc90();
        let inv = GateKind::Complex(Expr::not(Expr::var(0)));
        let and4 = GateKind::Complex(Expr::and((0..4).map(Expr::var).collect()));
        let d_inv = lib.delay_for(&inv);
        let d_and4 = lib.delay_for(&and4);
        assert!(d_and4.rise > d_inv.rise);
        assert!(d_inv.fall < d_inv.rise, "falls are faster");
    }

    #[test]
    fn latch_and_mutex_penalties() {
        let lib = GateLib::tsmc90();
        let (set, reset) = muller_c_functions(2);
        let c = lib.delay_for(&GateKind::GeneralizedC { set, reset });
        let m = lib.delay_for(&GateKind::MutexHalf);
        let inv = lib.delay_for(&GateKind::Complex(Expr::not(Expr::var(0))));
        assert!(c.rise > inv.rise);
        assert!(m.rise > inv.rise);
    }

    #[test]
    fn delay_towards() {
        let d = Delay {
            rise: Time::from_ps(100.0),
            fall: Time::from_ps(80.0),
        };
        assert_eq!(d.towards(true), Time::from_ps(100.0));
        assert_eq!(d.towards(false), Time::from_ps(80.0));
        let s = Delay::symmetric(Time::from_ps(50.0));
        assert_eq!(s.rise, s.fall);
    }
}
