use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use a4a_boolmin::Expr;
use a4a_sim::Time;

use crate::gate::{muller_c_functions, Delay, GateKind, GateLib};

/// Index of a net within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

/// Index of a gate within its [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub(crate) u32);

impl NetId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A named wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Unique name.
    pub name: String,
    /// Whether the net is a primary input (driven by the environment).
    pub is_input: bool,
}

/// A gate instance: one output, ordered input pins, a kind, and delays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The net this gate drives.
    pub output: NetId,
    /// Input pins; pin `i` is expression variable `i` in the kind's
    /// functions.
    pub pins: Vec<NetId>,
    /// Functional kind.
    pub kind: GateKind,
    /// Propagation delays.
    pub delay: Delay,
}

/// Errors raised while assembling a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A net is driven by two gates (or by a gate and the environment).
    MultipleDrivers {
        /// The over-driven net's name.
        net: String,
    },
    /// A non-input net has no driver.
    Undriven {
        /// The floating net's name.
        net: String,
    },
    /// A gate function references a pin index beyond its pin list.
    BadPinReference {
        /// The offending gate's output net name.
        gate_output: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => write!(f, "net {net:?} has multiple drivers"),
            NetlistError::Undriven { net } => write!(f, "net {net:?} has no driver"),
            NetlistError::BadPinReference { gate_output } => {
                write!(f, "gate driving {gate_output:?} references a missing pin")
            }
        }
    }
}

impl Error for NetlistError {}

/// An immutable gate-level circuit.
///
/// Built with [`NetlistBuilder`]; every net has exactly one driver (a
/// gate or the environment for primary inputs).
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) nets: Vec<Net>,
    pub(crate) gates: Vec<Gate>,
    /// Driver gate per net (None for primary inputs).
    pub(crate) driver: Vec<Option<GateId>>,
    /// Gates fed by each net.
    pub(crate) fanout: Vec<Vec<GateId>>,
}

impl Netlist {
    /// Returns a builder.
    pub fn builder(name: impl Into<String>) -> NetlistBuilder {
        NetlistBuilder::new(name)
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Total literal count over all gates (area proxy).
    pub fn literal_count(&self) -> u32 {
        self.gates
            .iter()
            .map(|g| match &g.kind {
                GateKind::Complex(e) => e.literal_count(),
                GateKind::GeneralizedC { set, reset } => {
                    set.literal_count() + reset.literal_count()
                }
                GateKind::MutexHalf => 2,
            })
            .sum()
    }

    /// Net metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Gate metadata.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Finds a net by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId(i as u32))
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Iterates over all gate ids.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Primary input nets.
    pub fn inputs(&self) -> Vec<NetId> {
        self.net_ids().filter(|&n| self.nets[n.index()].is_input).collect()
    }

    /// The gate driving `net`, if any (primary inputs have none).
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.driver[net.index()]
    }

    /// Gates with `net` on an input pin.
    pub fn fanout(&self, net: NetId) -> &[GateId] {
        &self.fanout[net.index()]
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist {} ({} nets, {} gates, {} literals)",
            self.name,
            self.net_count(),
            self.gate_count(),
            self.literal_count()
        )
    }
}

/// Incremental builder for [`Netlist`].
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    by_name: HashMap<String, NetId>,
}

impl NetlistBuilder {
    /// Creates a builder for a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    fn add_net(&mut self, name: String, is_input: bool) -> NetId {
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate net name {name:?}"
        );
        let id = NetId(self.nets.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nets.push(Net { name, is_input });
        id
    }

    /// Declares a primary input net.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        self.add_net(name.into(), true)
    }

    /// Declares an internal/output net (to be driven by a gate).
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn net(&mut self, name: impl Into<String>) -> NetId {
        self.add_net(name.into(), false)
    }

    /// Adds a gate of arbitrary kind with an explicit delay.
    pub fn gate_with_delay(
        &mut self,
        output: NetId,
        pins: &[NetId],
        kind: GateKind,
        delay: Delay,
    ) -> GateId {
        let id = GateId(self.gates.len() as u32);
        self.gates.push(Gate {
            output,
            pins: pins.to_vec(),
            kind,
            delay,
        });
        id
    }

    /// Adds a gate, deriving its delay from `lib`.
    pub fn gate(&mut self, output: NetId, pins: &[NetId], kind: GateKind, lib: &GateLib) -> GateId {
        let delay = lib.delay_for(&kind);
        self.gate_with_delay(output, pins, kind, delay)
    }

    /// Adds a combinational complex gate computing `expr` over `pins`.
    pub fn complex(&mut self, output: NetId, pins: &[NetId], expr: Expr, lib: &GateLib) -> GateId {
        self.gate(output, pins, GateKind::Complex(expr), lib)
    }

    /// Adds an inverter.
    pub fn inv(&mut self, output: NetId, input: NetId, lib: &GateLib) -> GateId {
        self.complex(output, &[input], Expr::not(Expr::var(0)), lib)
    }

    /// Adds a buffer.
    pub fn buf(&mut self, output: NetId, input: NetId, lib: &GateLib) -> GateId {
        self.complex(output, &[input], Expr::var(0), lib)
    }

    /// Adds a delay line: a buffer with an explicit propagation delay,
    /// used to model matched-delay timers.
    pub fn delay_line(&mut self, output: NetId, input: NetId, delay: Time) -> GateId {
        self.gate_with_delay(
            output,
            &[input],
            GateKind::Complex(Expr::var(0)),
            Delay::symmetric(delay),
        )
    }

    /// Adds a Muller C-element over `pins`.
    pub fn c_element(&mut self, output: NetId, pins: &[NetId], lib: &GateLib) -> GateId {
        let (set, reset) = muller_c_functions(pins.len());
        self.gate(output, pins, GateKind::GeneralizedC { set, reset }, lib)
    }

    /// Adds a generalized C-element with explicit set/reset functions
    /// over `pins`.
    pub fn generalized_c(
        &mut self,
        output: NetId,
        pins: &[NetId],
        set: Expr,
        reset: Expr,
        lib: &GateLib,
    ) -> GateId {
        self.gate(output, pins, GateKind::GeneralizedC { set, reset }, lib)
    }

    /// Adds a mutual-exclusion element: grants `g1`/`g2` arbitrate
    /// requests `r1`/`r2`.
    pub fn mutex(
        &mut self,
        g1: NetId,
        g2: NetId,
        r1: NetId,
        r2: NetId,
        lib: &GateLib,
    ) -> (GateId, GateId) {
        let a = self.gate(g1, &[r1, g2], GateKind::MutexHalf, lib);
        let b = self.gate(g2, &[r2, g1], GateKind::MutexHalf, lib);
        (a, b)
    }

    /// Finalises the netlist, checking driver consistency.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::MultipleDrivers`] if a net is driven twice or an
    ///   input net is driven by a gate;
    /// * [`NetlistError::Undriven`] if a non-input net has no driver;
    /// * [`NetlistError::BadPinReference`] if a gate function references
    ///   a pin beyond its pin list.
    pub fn build(self) -> Result<Netlist, NetlistError> {
        let mut driver: Vec<Option<GateId>> = vec![None; self.nets.len()];
        let mut fanout: Vec<Vec<GateId>> = vec![Vec::new(); self.nets.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let gid = GateId(i as u32);
            let out = g.output.index();
            if self.nets[out].is_input || driver[out].is_some() {
                return Err(NetlistError::MultipleDrivers {
                    net: self.nets[out].name.clone(),
                });
            }
            driver[out] = Some(gid);
            for &p in &g.pins {
                fanout[p.index()].push(gid);
            }
            let max_var = match &g.kind {
                GateKind::Complex(e) => e.support().into_iter().max(),
                GateKind::GeneralizedC { set, reset } => set
                    .support()
                    .into_iter()
                    .chain(reset.support())
                    .max(),
                GateKind::MutexHalf => Some(1),
            };
            if let Some(v) = max_var {
                if v >= g.pins.len() {
                    return Err(NetlistError::BadPinReference {
                        gate_output: self.nets[out].name.clone(),
                    });
                }
            }
        }
        for (i, net) in self.nets.iter().enumerate() {
            if !net.is_input && driver[i].is_none() {
                return Err(NetlistError::Undriven {
                    net: net.name.clone(),
                });
            }
        }
        Ok(Netlist {
            name: self.name,
            nets: self.nets,
            gates: self.gates,
            driver,
            fanout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_inverter_chain() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let x = b.net("x");
        let y = b.net("y");
        b.inv(x, a, &lib);
        b.inv(y, x, &lib);
        let n = b.build().unwrap();
        assert_eq!(n.net_count(), 3);
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.inputs(), vec![a]);
        assert_eq!(n.driver(a), None);
        assert!(n.driver(x).is_some());
        assert_eq!(n.fanout(a).len(), 1);
        assert_eq!(n.net_by_name("y"), Some(y));
    }

    #[test]
    fn undriven_net_rejected() {
        let mut b = NetlistBuilder::new("bad");
        b.net("floating");
        let err = b.build().unwrap_err();
        assert_eq!(
            err,
            NetlistError::Undriven {
                net: "floating".into()
            }
        );
    }

    #[test]
    fn double_driver_rejected() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let x = b.net("x");
        b.inv(x, a, &lib);
        b.buf(x, a, &lib);
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn driving_an_input_rejected() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let c = b.input("c");
        b.inv(a, c, &lib);
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn bad_pin_reference_rejected() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("bad");
        let a = b.input("a");
        let x = b.net("x");
        // expression references var 1 but only one pin given
        b.complex(x, &[a], Expr::var(1), &lib);
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetlistError::BadPinReference { .. }));
    }

    #[test]
    fn mutex_builds_two_cross_coupled_halves() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("mx");
        let r1 = b.input("r1");
        let r2 = b.input("r2");
        let g1 = b.net("g1");
        let g2 = b.net("g2");
        b.mutex(g1, g2, r1, r2, &lib);
        let n = b.build().unwrap();
        assert_eq!(n.gate_count(), 2);
        let ga = n.gate(n.driver(g1).unwrap());
        assert_eq!(ga.pins, vec![r1, g2]);
    }

    #[test]
    fn literal_count_sums() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("lc");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.net("x");
        let y = b.net("y");
        b.complex(
            x,
            &[a, c],
            Expr::and(vec![Expr::var(0), Expr::var(1)]),
            &lib,
        );
        b.c_element(y, &[a, c], &lib);
        let n = b.build().unwrap();
        assert_eq!(n.literal_count(), 2 + 4);
    }

    #[test]
    #[should_panic(expected = "duplicate net name")]
    fn duplicate_net_panics() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a");
        b.net("a");
    }
}
