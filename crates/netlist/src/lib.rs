//! Gate-level substrate for the A4A flow.
//!
//! The synthesiser emits circuits into this crate's [`Netlist`]; the
//! conformance checker and the Table-I latency measurements run on its
//! event-driven [`sim::GateSim`]. The building blocks:
//!
//! * [`GateKind`] — combinational complex gates (arbitrary
//!   [`a4a_boolmin::Expr`] over the pins), generalized C-elements
//!   (set/reset covers around a state-holding output), Muller C-elements,
//!   and mutex halves for arbitration;
//! * [`GateLib`] — a 90 nm-class timing model assigning pin-to-pin rise
//!   and fall delays from gate complexity (the PrimeTime stand-in);
//! * [`sim::GateSim`] — deterministic event-driven simulation with
//!   inertial delays; cancelled pulses are recorded as glitches, which is
//!   how hazards are observed;
//! * [`verilog`] — structural Verilog emission, including behavioural
//!   definitions of the asynchronous primitives.
//!
//! # Examples
//!
//! Build and simulate an inverter loop driving a C-element:
//!
//! ```
//! use a4a_netlist::{GateLib, NetlistBuilder};
//! use a4a_netlist::sim::GateSim;
//! use a4a_sim::Time;
//!
//! let lib = GateLib::tsmc90();
//! let mut b = NetlistBuilder::new("demo");
//! let a = b.input("a");
//! let c = b.input("b");
//! let y = b.net("y");
//! b.c_element(y, &[a, c], &lib);
//! let netlist = b.build()?;
//!
//! let mut sim = GateSim::new(&netlist);
//! sim.set_input(a, false);
//! sim.set_input(c, false);
//! sim.init_net(y, false);
//! sim.settle(Time::from_ns(10.0));
//! sim.set_input(a, true);
//! sim.set_input(c, true);
//! sim.settle(Time::from_ns(10.0));
//! assert_eq!(sim.value(y).known(), Some(true));
//! # Ok::<(), a4a_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompose;
mod gate;
mod graph;
pub mod path;
pub mod sim;
pub mod verilog;

pub use decompose::{combinational_expr, decompose};
pub use gate::{Delay, GateKind, GateLib};
pub use graph::{Gate, GateId, Net, NetId, Netlist, NetlistBuilder, NetlistError};
