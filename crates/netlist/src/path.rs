//! Static path analysis — the PrimeTime stand-in used to report the
//! synthesised controllers' input→output delays.
//!
//! Combinational cones are walked as DAGs; state-holding elements
//! (generalized-C, mutex) and feedback edges cut paths, contributing
//! their own delay as endpoints/startpoints, exactly like registers in
//! conventional STA. Delays use each gate's worst (rise) arc.

use a4a_sim::Time;

use crate::{GateKind, NetId, Netlist};

/// One timing path: the nets along it and the accumulated delay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingPath {
    /// Nets from startpoint to endpoint.
    pub nets: Vec<NetId>,
    /// Sum of gate delays along the path.
    pub delay: Time,
}

impl TimingPath {
    /// Renders the path as `a -> b -> c`.
    pub fn render(&self, netlist: &Netlist) -> String {
        self.nets
            .iter()
            .map(|&n| netlist.net(n).name.clone())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// The worst (longest-delay) path ending at each net, considering
/// state-holding gate outputs and primary inputs as startpoints.
///
/// Returns `None` for primary inputs (no path ends there).
pub fn worst_path_to(netlist: &Netlist, target: NetId) -> Option<TimingPath> {
    fn walk(netlist: &Netlist, net: NetId, path: &mut Vec<NetId>) -> Option<TimingPath> {
        if path.contains(&net) {
            // Feedback edge: cut here; the loop net is a startpoint.
            return Some(TimingPath {
                nets: vec![net],
                delay: Time::ZERO,
            });
        }
        let gate_id = netlist.driver(net)?;
        let gate = netlist.gate(gate_id);
        let own = gate.delay.rise;
        // State-holding gates: the path starts at this element's clock-
        // to-output arc.
        let combinational = matches!(gate.kind, GateKind::Complex(_));
        if !combinational || gate.pins.is_empty() {
            return Some(TimingPath {
                nets: vec![net],
                delay: own,
            });
        }
        path.push(net);
        let mut best: Option<TimingPath> = None;
        for &p in &gate.pins {
            let sub = walk(netlist, p, path).unwrap_or(TimingPath {
                nets: vec![p],
                delay: Time::ZERO,
            });
            if best.as_ref().map(|b| sub.delay > b.delay).unwrap_or(true) {
                best = Some(sub);
            }
        }
        path.pop();
        let mut result = best.expect("gate has pins");
        result.nets.push(net);
        result.delay += own;
        Some(result)
    }
    walk(netlist, target, &mut Vec::new())
}

/// A timing report: the worst path to every driven net, sorted by delay
/// (critical path first).
pub fn report(netlist: &Netlist) -> Vec<TimingPath> {
    let mut paths: Vec<TimingPath> = netlist
        .net_ids()
        .filter_map(|n| worst_path_to(netlist, n))
        .collect();
    paths.sort_by_key(|p| std::cmp::Reverse(p.delay));
    paths
}

/// The critical (longest) path of the whole netlist.
pub fn critical_path(netlist: &Netlist) -> Option<TimingPath> {
    report(netlist).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateLib, NetlistBuilder};
    use a4a_boolmin::Expr;

    #[test]
    fn chain_accumulates_delay() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a");
        let x = b.net("x");
        let y = b.net("y");
        b.inv(x, a, &lib);
        b.inv(y, x, &lib);
        let n = b.build().unwrap();
        let px = worst_path_to(&n, x).unwrap();
        let py = worst_path_to(&n, y).unwrap();
        assert!(py.delay > px.delay);
        assert_eq!(py.nets.len(), 3, "a -> x -> y");
        assert_eq!(py.render(&n), "a -> x -> y");
    }

    #[test]
    fn inputs_have_no_path() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("i");
        let a = b.input("a");
        let y = b.net("y");
        b.buf(y, a, &lib);
        let n = b.build().unwrap();
        assert!(worst_path_to(&n, a).is_none());
    }

    #[test]
    fn state_elements_cut_paths() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("cut");
        let a = b.input("a");
        let c = b.input("c");
        let q = b.net("q");
        let y = b.net("y");
        b.c_element(q, &[a, c], &lib);
        b.inv(y, q, &lib);
        let n = b.build().unwrap();
        let p = worst_path_to(&n, y).unwrap();
        // Path starts at the C-element output, not at a/c.
        assert_eq!(p.nets.first(), Some(&q));
        assert_eq!(p.nets.len(), 2);
    }

    #[test]
    fn feedback_is_cut_not_looped() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("fb");
        let a = b.input("a");
        let y = b.net("y");
        // y = a | y : state-holding complex gate with feedback.
        b.complex(
            y,
            &[a, y],
            Expr::or(vec![Expr::var(0), Expr::var(1)]),
            &lib,
        );
        let n = b.build().unwrap();
        let p = worst_path_to(&n, y).expect("terminates");
        assert!(p.delay > Time::ZERO);
    }

    #[test]
    fn critical_path_is_global_max(){
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("crit");
        let a = b.input("a");
        let mut prev = a;
        for i in 0..5 {
            let n = b.net(format!("n{i}"));
            b.inv(n, prev, &lib);
            prev = n;
        }
        let n = b.build().unwrap();
        let crit = critical_path(&n).unwrap();
        assert_eq!(crit.nets.len(), 6);
        for p in report(&n) {
            assert!(p.delay <= crit.delay);
        }
    }
}
