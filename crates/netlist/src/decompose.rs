//! Technology decomposition: maps atomic complex gates onto 2-input
//! cells (INV/AND2/OR2) so the netlist fits a conventional standard-cell
//! library — the "standard EDA tools can be reused for place-and-route"
//! step of the A4A flow.
//!
//! Decomposition preserves Boolean function (checked by
//! [`combinational_expr`]-based equivalence in the tests) but *not*
//! speed-independence in general: splitting an atomic gate exposes
//! internal nets whose hazards the SI model would flag. Real flows
//! discharge this with relative-timing constraints at signoff
//! (PrimeTime in the paper); the gate-level simulator's glitch counter
//! measures the exposure.

use a4a_boolmin::Expr;

use crate::{GateKind, GateLib, NetId, Netlist, NetlistBuilder, NetlistError};

/// Decomposes every complex gate into a tree of 1/2-input cells;
/// generalized-C elements keep their atomic latch but their set/reset
/// functions are decomposed into trees feeding dedicated pins; mutex
/// halves are kept atomic (they are library primitives).
///
/// # Errors
///
/// Returns [`NetlistError`] if the rebuilt netlist is structurally
/// invalid (cannot happen for well-formed inputs; surfaced rather than
/// unwrapped).
pub fn decompose(netlist: &Netlist, lib: &GateLib) -> Result<Netlist, NetlistError> {
    let mut b = NetlistBuilder::new(format!("{}_mapped", netlist.name()));
    // Recreate all nets with their original names/roles (ids preserved:
    // same creation order).
    let nets: Vec<NetId> = netlist
        .net_ids()
        .map(|n| {
            let net = netlist.net(n);
            if net.is_input {
                b.input(net.name.clone())
            } else {
                b.net(net.name.clone())
            }
        })
        .collect();

    let mut fresh = 0usize;
    for g in netlist.gate_ids() {
        let gate = netlist.gate(g);
        let pins: Vec<NetId> = gate.pins.iter().map(|&p| nets[p.index()]).collect();
        let out = nets[gate.output.index()];
        match &gate.kind {
            GateKind::Complex(expr) => {
                emit_tree(&mut b, lib, expr, &pins, Some(out), &mut fresh);
            }
            GateKind::GeneralizedC { set, reset } => {
                let set_net = emit_tree(&mut b, lib, set, &pins, None, &mut fresh);
                let reset_net = emit_tree(&mut b, lib, reset, &pins, None, &mut fresh);
                b.generalized_c(
                    out,
                    &[set_net, reset_net],
                    Expr::var(0),
                    Expr::var(1),
                    lib,
                );
            }
            GateKind::MutexHalf => {
                b.gate(out, &pins, GateKind::MutexHalf, lib);
            }
        }
    }
    b.build()
}

/// Emits `expr` as a tree of 1/2-input gates over `pins`; drives
/// `target` if given, otherwise a fresh intermediate net. Returns the
/// driven net.
fn emit_tree(
    b: &mut NetlistBuilder,
    lib: &GateLib,
    expr: &Expr,
    pins: &[NetId],
    target: Option<NetId>,
    fresh: &mut usize,
) -> NetId {
    // A bare variable with no target can reuse the pin net directly.
    if target.is_none() {
        if let Expr::Var(i) = expr {
            return pins[*i];
        }
    }
    let out = target.unwrap_or_else(|| {
        *fresh += 1;
        b.net(format!("_m{fresh}"))
    });
    match expr {
        Expr::Const(v) => {
            b.complex(out, &[], Expr::constant(*v), lib);
        }
        Expr::Var(i) => {
            b.buf(out, pins[*i], lib);
        }
        Expr::Not(inner) => {
            let sub = emit_tree(b, lib, inner, pins, None, fresh);
            b.inv(out, sub, lib);
        }
        Expr::And(es) | Expr::Or(es) => {
            let is_and = matches!(expr, Expr::And(_));
            let mut subs: Vec<NetId> = es
                .iter()
                .map(|e| emit_tree(b, lib, e, pins, None, fresh))
                .collect();
            // Balanced reduction with 2-input gates.
            while subs.len() > 2 {
                let mut next = Vec::with_capacity(subs.len().div_ceil(2));
                for pair in subs.chunks(2) {
                    if pair.len() == 1 {
                        next.push(pair[0]);
                    } else {
                        *fresh += 1;
                        let mid = b.net(format!("_m{fresh}"));
                        b.complex(mid, pair, two_input(is_and), lib);
                        next.push(mid);
                    }
                }
                subs = next;
            }
            match subs.len() {
                1 => {
                    b.buf(out, subs[0], lib);
                }
                _ => {
                    b.complex(out, &subs, two_input(is_and), lib);
                }
            }
        }
    }
    out
}

fn two_input(is_and: bool) -> Expr {
    let operands = vec![Expr::var(0), Expr::var(1)];
    if is_and {
        Expr::and(operands)
    } else {
        Expr::or(operands)
    }
}

/// Reconstructs the Boolean expression (over primary inputs and
/// state-holding nets) computed by the combinational cone driving
/// `net`. Generalized-C and mutex outputs are cone leaves, and so is
/// any net on a feedback path back to itself (a complex gate holding
/// state through its own output reads that output as a state variable).
///
/// Used by equivalence checks after decomposition.
pub fn combinational_expr(netlist: &Netlist, net: NetId) -> Expr {
    fn walk(netlist: &Netlist, net: NetId, path: &mut Vec<NetId>) -> Expr {
        if path.contains(&net) {
            // Feedback: treat the net as a state variable.
            return Expr::var(net.index());
        }
        match netlist.driver(net) {
            None => Expr::var(net.index()),
            Some(g) => {
                let gate = netlist.gate(g);
                match &gate.kind {
                    GateKind::Complex(e) => {
                        path.push(net);
                        let subs: Vec<Expr> = gate
                            .pins
                            .iter()
                            .map(|&p| walk(netlist, p, path))
                            .collect();
                        path.pop();
                        substitute(e, &subs)
                    }
                    // State-holding elements are cone boundaries.
                    _ => Expr::var(net.index()),
                }
            }
        }
    }
    walk(netlist, net, &mut Vec::new())
}

fn substitute(e: &Expr, subs: &[Expr]) -> Expr {
    match e {
        Expr::Const(v) => Expr::constant(*v),
        Expr::Var(i) => subs[*i].clone(),
        Expr::Not(inner) => Expr::not(substitute(inner, subs)),
        Expr::And(es) => Expr::and(es.iter().map(|x| substitute(x, subs)).collect()),
        Expr::Or(es) => Expr::or(es.iter().map(|x| substitute(x, subs)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_fanin(n: &Netlist) -> usize {
        n.gate_ids().map(|g| n.gate(g).pins.len()).max().unwrap_or(0)
    }

    #[test]
    fn wide_and_or_splits_into_two_input_cells() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("wide");
        let ins: Vec<NetId> = (0..5).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.net("y");
        // y = (i0 & i1 & i2) | !(i3 & i4)
        let expr = Expr::or(vec![
            Expr::and(vec![Expr::var(0), Expr::var(1), Expr::var(2)]),
            Expr::not(Expr::and(vec![Expr::var(3), Expr::var(4)])),
        ]);
        b.complex(y, &ins, expr.clone(), &lib);
        let n = b.build().unwrap();
        let mapped = decompose(&n, &lib).unwrap();
        assert!(max_fanin(&mapped) <= 2, "fanin {}", max_fanin(&mapped));
        assert!(mapped.gate_count() > n.gate_count());

        // Equivalence over all 32 assignments.
        let original = combinational_expr(&n, n.net_by_name("y").unwrap());
        let remapped = combinational_expr(&mapped, mapped.net_by_name("y").unwrap());
        for m in 0..32u64 {
            assert_eq!(original.eval(m), remapped.eval(m), "assignment {m:#b}");
        }
    }

    #[test]
    fn gc_keeps_latch_with_decomposed_functions() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("gc");
        let ins: Vec<NetId> = (0..3).map(|i| b.input(format!("i{i}"))).collect();
        let q = b.net("q");
        b.generalized_c(
            q,
            &ins,
            Expr::and(vec![Expr::var(0), Expr::var(1), Expr::var(2)]),
            Expr::not(Expr::var(0)),
            &lib,
        );
        let n = b.build().unwrap();
        let mapped = decompose(&n, &lib).unwrap();
        // The latch survives with exactly two pins.
        let q_net = mapped.net_by_name("q").unwrap();
        let gate = mapped.gate(mapped.driver(q_net).unwrap());
        assert!(matches!(gate.kind, GateKind::GeneralizedC { .. }));
        assert_eq!(gate.pins.len(), 2);
        // The set cone computes i0&i1&i2 from 2-input cells.
        let set_cone = combinational_expr(&mapped, gate.pins[0]);
        for m in 0..8u64 {
            let expected = (m & 0b111) == 0b111;
            assert_eq!(set_cone.eval(m), expected, "m={m:#b}");
        }
    }

    #[test]
    fn decomposed_netlist_simulates_like_original() {
        use crate::sim::GateSim;
        use a4a_sim::Time;
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("sim_eq");
        let a = b.input("a");
        let c = b.input("c");
        let d = b.input("d");
        let y = b.net("y");
        b.complex(
            y,
            &[a, c, d],
            Expr::or(vec![
                Expr::and(vec![Expr::var(0), Expr::var(1)]),
                Expr::and(vec![Expr::not(Expr::var(0)), Expr::var(2)]),
            ]),
            &lib,
        );
        let n = b.build().unwrap();
        let mapped = decompose(&n, &lib).unwrap();
        for assignment in 0..8u64 {
            let run = |netlist: &Netlist| -> bool {
                let mut sim = GateSim::new(netlist);
                for (i, name) in ["a", "c", "d"].iter().enumerate() {
                    let net = netlist.net_by_name(name).unwrap();
                    sim.set_input(net, (assignment >> i) & 1 == 1);
                }
                sim.settle(Time::from_us(1.0));
                sim.value(netlist.net_by_name("y").unwrap()).to_bool(false)
            };
            assert_eq!(run(&n), run(&mapped), "assignment {assignment:#b}");
        }
    }

    #[test]
    fn constants_and_buffers_map() {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("konst");
        let a = b.input("a");
        let y = b.net("y");
        let z = b.net("z");
        b.complex(y, &[], Expr::constant(true), &lib);
        b.buf(z, a, &lib);
        let n = b.build().unwrap();
        let mapped = decompose(&n, &lib).unwrap();
        assert_eq!(mapped.net_count(), n.net_count());
        let yv = combinational_expr(&mapped, mapped.net_by_name("y").unwrap());
        assert_eq!(yv, Expr::constant(true));
    }

}
