//! Property-based tests: random expression trees survive technology
//! decomposition and evaluate identically in the event simulator.

use a4a_boolmin::Expr;
use a4a_netlist::sim::GateSim;
use a4a_netlist::{combinational_expr, decompose, GateLib, NetlistBuilder};
use a4a_rt::prop::{self, Config, Gen, PropResult};
use a4a_rt::{prop_assert, prop_assert_eq};
use a4a_sim::Time;

/// A random boolean expression over `nvars` variables, depth-bounded.
fn arb_expr(g: &mut Gen, nvars: usize, depth: usize) -> Expr {
    // Leaves dominate at depth 0; inner nodes recurse with a smaller
    // budget (the replacement for `prop_recursive(4, 24, 4, ..)`).
    if depth == 0 || g.choice(3) == 0 {
        return if g.bool() {
            Expr::var(g.usize(0..nvars))
        } else {
            Expr::constant(g.bool())
        };
    }
    match g.choice(3) {
        0 => Expr::not(arb_expr(g, nvars, depth - 1)),
        1 => {
            let n = g.usize(2..4);
            Expr::and((0..n).map(|_| arb_expr(g, nvars, depth - 1)).collect())
        }
        _ => {
            let n = g.usize(2..4);
            Expr::or((0..n).map(|_| arb_expr(g, nvars, depth - 1)).collect())
        }
    }
}

/// Decomposition preserves the boolean function and caps fanin at 2.
#[test]
fn decomposition_is_equivalent() {
    prop::check_with(&Config::with_cases(48), "decomposition_is_equivalent", |g: &mut Gen| -> PropResult {
        let expr = arb_expr(g, 4, 4);
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("rand");
        let pins: Vec<_> = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.net("y");
        b.complex(y, &pins, expr.clone(), &lib);
        let n = b.build().unwrap();
        let mapped = decompose(&n, &lib).unwrap();
        for gt in mapped.gate_ids() {
            prop_assert!(mapped.gate(gt).pins.len() <= 2);
        }
        let original = combinational_expr(&n, n.net_by_name("y").unwrap());
        let remapped = combinational_expr(&mapped, mapped.net_by_name("y").unwrap());
        for m in 0..16u64 {
            prop_assert_eq!(original.eval(m), remapped.eval(m), "assignment {:#b}", m);
        }
        Ok(())
    });
}

/// The event simulator settles a combinational netlist to the static
/// evaluation of its function, for every input assignment.
#[test]
fn simulator_matches_static_eval() {
    prop::check_with(&Config::with_cases(48), "simulator_matches_static_eval", |g: &mut Gen| -> PropResult {
        let expr = arb_expr(g, 4, 4);
        let assignment = g.u64(0..16);
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("sim");
        let pins: Vec<_> = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.net("y");
        b.complex(y, &pins, expr.clone(), &lib);
        let n = b.build().unwrap();

        let mut sim = GateSim::new(&n);
        for (i, &p) in pins.iter().enumerate() {
            sim.set_input(p, (assignment >> i) & 1 == 1);
        }
        prop_assert!(sim.settle(Time::from_us(1.0)), "combinational nets settle");
        let value = sim.value(n.net_by_name("y").unwrap());
        prop_assert_eq!(value.known(), Some(expr.eval(assignment)));
        Ok(())
    });
}

/// Settling is input-order independent: driving inputs in any order
/// yields the same final value.
#[test]
fn settle_is_order_independent() {
    prop::check_with(&Config::with_cases(48), "settle_is_order_independent", |g: &mut Gen| -> PropResult {
        let expr = arb_expr(g, 4, 4);
        let assignment = g.u64(0..16);
        let mut order = [0usize, 1, 2, 3];
        g.shuffle(&mut order);
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("ord");
        let pins: Vec<_> = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.net("y");
        b.complex(y, &pins, expr, &lib);
        let n = b.build().unwrap();

        let run = |order: &[usize]| {
            let mut sim = GateSim::new(&n);
            for &i in order {
                sim.set_input(pins[i], (assignment >> i) & 1 == 1);
                sim.settle(Time::from_us(1.0));
            }
            sim.value(n.net_by_name("y").unwrap())
        };
        prop_assert_eq!(run(&[0, 1, 2, 3]), run(&order));
        Ok(())
    });
}

/// Verilog emission always produces the module header and one
/// assign/instance per gate.
#[test]
fn verilog_emission_total() {
    prop::check_with(&Config::with_cases(48), "verilog_emission_total", |g: &mut Gen| -> PropResult {
        let expr = arb_expr(g, 3, 4);
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("v");
        let pins: Vec<_> = (0..3).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.net("y");
        b.complex(y, &pins, expr, &lib);
        let n = b.build().unwrap();
        let v = a4a_netlist::verilog::emit(&n);
        prop_assert!(v.contains("module v ("));
        prop_assert!(v.contains("assign y = "));
        prop_assert!(v.contains("endmodule"));
        Ok(())
    });
}
