//! Property-based tests: random expression trees survive technology
//! decomposition and evaluate identically in the event simulator.

use a4a_boolmin::Expr;
use a4a_netlist::sim::GateSim;
use a4a_netlist::{combinational_expr, decompose, GateLib, NetlistBuilder};
use a4a_sim::Time;
use proptest::prelude::*;

/// A random boolean expression over `nvars` variables.
fn arb_expr(nvars: usize) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(Expr::var),
        any::<bool>().prop_map(Expr::constant),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::and),
            proptest::collection::vec(inner, 2..4).prop_map(Expr::or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Decomposition preserves the boolean function and caps fanin at 2.
    #[test]
    fn decomposition_is_equivalent(expr in arb_expr(4)) {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("rand");
        let pins: Vec<_> = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.net("y");
        b.complex(y, &pins, expr.clone(), &lib);
        let n = b.build().unwrap();
        let mapped = decompose(&n, &lib).unwrap();
        for g in mapped.gate_ids() {
            prop_assert!(mapped.gate(g).pins.len() <= 2);
        }
        let original = combinational_expr(&n, n.net_by_name("y").unwrap());
        let remapped = combinational_expr(&mapped, mapped.net_by_name("y").unwrap());
        for m in 0..16u64 {
            prop_assert_eq!(original.eval(m), remapped.eval(m), "assignment {:#b}", m);
        }
    }

    /// The event simulator settles a combinational netlist to the static
    /// evaluation of its function, for every input assignment.
    #[test]
    fn simulator_matches_static_eval(expr in arb_expr(4), assignment in 0u64..16) {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("sim");
        let pins: Vec<_> = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.net("y");
        b.complex(y, &pins, expr.clone(), &lib);
        let n = b.build().unwrap();

        let mut sim = GateSim::new(&n);
        for (i, &p) in pins.iter().enumerate() {
            sim.set_input(p, (assignment >> i) & 1 == 1);
        }
        prop_assert!(sim.settle(Time::from_us(1.0)), "combinational nets settle");
        let value = sim.value(n.net_by_name("y").unwrap());
        prop_assert_eq!(value.known(), Some(expr.eval(assignment)));
    }

    /// Settling is input-order independent: driving inputs in any order
    /// yields the same final value.
    #[test]
    fn settle_is_order_independent(
        expr in arb_expr(4),
        assignment in 0u64..16,
        order in Just([0usize, 1, 2, 3]).prop_shuffle(),
    ) {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("ord");
        let pins: Vec<_> = (0..4).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.net("y");
        b.complex(y, &pins, expr, &lib);
        let n = b.build().unwrap();

        let run = |order: &[usize]| {
            let mut sim = GateSim::new(&n);
            for &i in order {
                sim.set_input(pins[i], (assignment >> i) & 1 == 1);
                sim.settle(Time::from_us(1.0));
            }
            sim.value(n.net_by_name("y").unwrap())
        };
        prop_assert_eq!(run(&[0, 1, 2, 3]), run(&order));
    }

    /// Verilog emission always produces the module header and one
    /// assign/instance per gate.
    #[test]
    fn verilog_emission_total(expr in arb_expr(3)) {
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("v");
        let pins: Vec<_> = (0..3).map(|i| b.input(format!("i{i}"))).collect();
        let y = b.net("y");
        b.complex(y, &pins, expr, &lib);
        let n = b.build().unwrap();
        let v = a4a_netlist::verilog::emit(&n);
        prop_assert!(v.contains("module v ("));
        prop_assert!(v.contains("assign y = "));
        prop_assert!(v.contains("endmodule"));
    }
}
