//! Property-based tests: every clean random specification synthesises
//! into a conformant, hazard-free circuit in both styles.

use a4a_rt::prop::{self, Config, Gen, PropResult};
use a4a_rt::{prop_assert, prop_assert_eq};
use a4a_stg::prop_support::{pipeline_output_count, pipeline_stg, pipeline_stg_with_prefix};
use a4a_synth::{extract_next_state, synthesize, verify_si, SynthOptions, SynthStyle};

#[test]
fn wide_composition_synthesises_via_espresso() {
    // Two disjoint 10-signal pipelines: 20 signals, beyond the exact
    // QM enumeration bound, forcing the espresso path.
    let a = pipeline_stg(10, u64::MAX);
    let b = pipeline_stg_with_prefix(10, u64::MAX, "t");
    let wide = a.compose(&b).expect("disjoint");
    assert!(wide.signal_count() > 18);
    let synth = synthesize(&wide, &SynthOptions::new(SynthStyle::ComplexGate))
        .expect("espresso path");
    let report = verify_si(&wide, synth.netlist(), 1_000_000).expect("explore");
    assert!(report.is_clean(), "{:?}", report.violations.first());
}

/// Synthesis of any handshake pipeline verifies clean in both
/// styles.
#[test]
fn pipelines_synthesise_clean() {
    prop::check_with(&Config::with_cases(64), "pipelines_synthesise_clean", |g: &mut Gen| -> PropResult {
        let n = g.usize(2..7);
        let mask = g.any_u64();
        let stg = pipeline_stg(n, mask | 0b10); // at least one output
        for style in [SynthStyle::ComplexGate, SynthStyle::GeneralizedC] {
            let synth = synthesize(&stg, &SynthOptions::new(style)).unwrap();
            prop_assert_eq!(
                synth.netlist().gate_count(),
                pipeline_output_count(&stg),
                "one gate per implemented signal"
            );
            let report = verify_si(&stg, synth.netlist(), 1_000_000).unwrap();
            prop_assert!(report.is_clean(), "{:?}: {:?}", style, report.violations.first());
        }
        Ok(())
    });
}

/// The synthesised complex-gate function agrees with the extracted
/// next-state function on every reachable code.
#[test]
fn covers_match_next_state() {
    prop::check_with(&Config::with_cases(64), "covers_match_next_state", |g: &mut Gen| -> PropResult {
        let n = g.usize(2..7);
        let mask = g.any_u64();
        let stg = pipeline_stg(n, mask | 0b10);
        let sg = stg.state_graph(1_000_000).unwrap();
        let synth = synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate)).unwrap();
        for im in synth.impls() {
            let ns = extract_next_state(&stg, &sg, im.signal).unwrap();
            if let a4a_synth::SignalFunction::Complex(cover) = &im.function {
                for (&code, region) in &ns.regions {
                    prop_assert_eq!(
                        cover.eval(code),
                        region.next_value(),
                        "{} at {:#b}",
                        &im.name,
                        code
                    );
                }
            }
        }
        Ok(())
    });
}

/// gC set and reset covers never both fire on a reachable code.
#[test]
fn gc_set_reset_disjoint_on_reachable() {
    prop::check_with(&Config::with_cases(64), "gc_set_reset_disjoint_on_reachable", |g: &mut Gen| -> PropResult {
        let n = g.usize(2..6);
        let mask = g.any_u64();
        let stg = pipeline_stg(n, mask | 0b10);
        let sg = stg.state_graph(1_000_000).unwrap();
        let synth = synthesize(&stg, &SynthOptions::new(SynthStyle::GeneralizedC)).unwrap();
        let codes: std::collections::HashSet<u64> =
            sg.state_ids().map(|s| sg.code(s)).collect();
        for im in synth.impls() {
            if let a4a_synth::SignalFunction::Gc { set, reset } = &im.function {
                for &code in &codes {
                    prop_assert!(
                        !(set.eval(code) && reset.eval(code)),
                        "{} set and reset both on at {:#b}",
                        &im.name,
                        code
                    );
                }
            }
        }
        Ok(())
    });
}
