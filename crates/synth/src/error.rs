use std::error::Error;
use std::fmt;

use a4a_boolmin::MinimizeError;
use a4a_netlist::NetlistError;
use a4a_stg::{CscConflict, PersistenceViolation, StgError};

/// Errors raised by the synthesiser and the SI verifier.
#[derive(Debug, Clone)]
pub enum SynthError {
    /// The specification could not be explored (inconsistent or too
    /// large).
    Stg(StgError),
    /// The specification is not output-persistent, so no
    /// speed-independent implementation exists.
    NotPersistent(Vec<PersistenceViolation>),
    /// Complete state coding is violated: states with equal binary codes
    /// require different output behaviour. Resolve by adding internal
    /// signals.
    Csc(Vec<CscConflict>),
    /// Two-level minimisation failed.
    Minimize(MinimizeError),
    /// The generated netlist was structurally invalid (internal error).
    Netlist(NetlistError),
    /// A signal's next-state function disagreed with its minimised cover
    /// (internal consistency check).
    CoverMismatch {
        /// The offending signal name.
        signal: String,
        /// The reachable code where cover and next-state disagree.
        code: u64,
    },
    /// A netlist net has no counterpart signal in the specification (the
    /// SI verifier requires the one-net-per-signal form produced by
    /// [`crate::synthesize`]).
    SignalMapping {
        /// The unmatched net's name.
        net: String,
    },
    /// Joint state-space exploration exceeded its budget.
    StateLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Stg(e) => write!(f, "specification error: {e}"),
            SynthError::NotPersistent(v) => {
                write!(f, "specification is not output-persistent ({} violations)", v.len())
            }
            SynthError::Csc(c) => write!(
                f,
                "complete state coding violated ({} conflicts); add internal signals",
                c.len()
            ),
            SynthError::Minimize(e) => write!(f, "minimisation failed: {e}"),
            SynthError::Netlist(e) => write!(f, "netlist assembly failed: {e}"),
            SynthError::CoverMismatch { signal, code } => write!(
                f,
                "internal error: cover for {signal} disagrees with next-state at code {code:#b}"
            ),
            SynthError::SignalMapping { net } => {
                write!(f, "net {net:?} has no counterpart signal in the specification")
            }
            SynthError::StateLimit { limit } => {
                write!(f, "joint state space exceeds limit of {limit} states")
            }
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Stg(e) => Some(e),
            SynthError::Minimize(e) => Some(e),
            SynthError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StgError> for SynthError {
    fn from(e: StgError) -> Self {
        SynthError::Stg(e)
    }
}

impl From<MinimizeError> for SynthError {
    fn from(e: MinimizeError) -> Self {
        SynthError::Minimize(e)
    }
}

impl From<NetlistError> for SynthError {
    fn from(e: NetlistError) -> Self {
        SynthError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SynthError::Csc(vec![]);
        assert!(e.to_string().contains("state coding"));
        let e = SynthError::CoverMismatch {
            signal: "gp".into(),
            code: 0b101,
        };
        assert!(e.to_string().contains("gp"));
        let e: SynthError = StgError::StateLimit { limit: 3 }.into();
        assert!(e.to_string().contains("specification error"));
    }
}
