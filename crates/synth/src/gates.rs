//! Cover minimisation and netlist assembly.

use a4a_boolmin::{espresso, minimize, Cover, Expr, Minimize, MinimizeError};
use a4a_netlist::{GateKind, GateLib, NetId, Netlist, NetlistBuilder};
use a4a_stg::{SignalId, SignalKind, Stg};

use crate::extract::{extract_next_state, Region};
use crate::SynthError;

/// Implementation style for synthesised signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthStyle {
    /// One atomic complex gate per signal computing the full next-state
    /// function (Petrify's complex-gate mode).
    ComplexGate,
    /// A generalized C-element per signal with minimised set and reset
    /// covers (the gC mode preferred for standard-cell mapping).
    GeneralizedC,
}

/// Options for [`synthesize`].
#[derive(Debug, Clone)]
pub struct SynthOptions {
    /// Implementation style.
    pub style: SynthStyle,
    /// Timing library used for gate delays.
    pub lib: GateLib,
    /// State-graph exploration budget.
    pub max_states: usize,
    /// When `true`, skip the output-persistence gate (used by ablation
    /// experiments that deliberately synthesise hazardous specs).
    pub allow_non_persistent: bool,
}

impl SynthOptions {
    /// Default options with the given style.
    pub fn new(style: SynthStyle) -> Self {
        SynthOptions {
            style,
            lib: GateLib::tsmc90(),
            max_states: 1_000_000,
            allow_non_persistent: false,
        }
    }

    /// Sets the timing library.
    pub fn with_lib(mut self, lib: GateLib) -> Self {
        self.lib = lib;
        self
    }
}

/// The synthesised function of one signal.
#[derive(Debug, Clone)]
pub enum SignalFunction {
    /// A single cover: `signal = cover(code)`.
    Complex(Cover),
    /// Set/reset covers around a state-holding element:
    /// `signal' = set | (signal & !reset)`.
    Gc {
        /// The set cover.
        set: Cover,
        /// The reset cover.
        reset: Cover,
    },
}

impl SignalFunction {
    /// Total literal count (area proxy).
    pub fn literal_count(&self) -> u32 {
        match self {
            SignalFunction::Complex(c) => c.literal_count(),
            SignalFunction::Gc { set, reset } => set.literal_count() + reset.literal_count(),
        }
    }
}

/// The implementation chosen for one signal.
#[derive(Debug, Clone)]
pub struct SignalImpl {
    /// The implemented signal.
    pub signal: SignalId,
    /// The signal's name (copied for reporting convenience).
    pub name: String,
    /// The synthesised function.
    pub function: SignalFunction,
}

/// Result of [`synthesize`]: the netlist plus per-signal functions.
#[derive(Debug, Clone)]
pub struct Synthesis {
    netlist: Netlist,
    impls: Vec<SignalImpl>,
}

impl Synthesis {
    /// The synthesised gate-level circuit. Net names equal signal names.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Per-signal implementations.
    pub fn impls(&self) -> &[SignalImpl] {
        &self.impls
    }

    /// Total literal count (area proxy).
    pub fn literal_count(&self) -> u32 {
        self.impls.iter().map(|i| i.function.literal_count()).sum()
    }

    /// Renders a human-readable equation report.
    pub fn equations(&self, stg: &Stg) -> String {
        let names: Vec<String> = stg.signals().iter().map(|s| s.name.clone()).collect();
        let mut out = String::new();
        for im in &self.impls {
            match &im.function {
                SignalFunction::Complex(c) => {
                    out.push_str(&format!("{} = {}\n", im.name, c.format_with(&names)));
                }
                SignalFunction::Gc { set, reset } => {
                    out.push_str(&format!(
                        "{} : set = {} ; reset = {}\n",
                        im.name,
                        set.format_with(&names),
                        reset.format_with(&names)
                    ));
                }
            }
        }
        out
    }
}

/// Minimises ON/OFF minterm lists: exact Quine–McCluskey while the
/// variable count permits full enumeration, espresso-style heuristic
/// beyond that (wide composed controllers).
fn minimize_sets(nvars: usize, on: &[u64], off: &[u64]) -> Result<Cover, MinimizeError> {
    if nvars <= 18 {
        minimize(&Minimize::new(nvars).on(on).off(off))
    } else {
        espresso(nvars, on, off)
    }
}

/// Synthesises a speed-independent circuit from an STG.
///
/// # Errors
///
/// * [`SynthError::Stg`] — inconsistent spec or state limit;
/// * [`SynthError::NotPersistent`] — enabled outputs can be disabled;
/// * [`SynthError::Csc`] — complete state coding fails;
/// * [`SynthError::Minimize`] / [`SynthError::Netlist`] — downstream
///   failures (too many signals, structural errors).
pub fn synthesize(stg: &Stg, opts: &SynthOptions) -> Result<Synthesis, SynthError> {
    let sg = stg.state_graph(opts.max_states)?;
    let report = stg.verify(&sg);
    if !report.persistence.is_empty() && !opts.allow_non_persistent {
        return Err(SynthError::NotPersistent(report.persistence.clone()));
    }
    let csc: Vec<_> = report.csc_conflicts().into_iter().cloned().collect();
    if !csc.is_empty() {
        return Err(SynthError::Csc(csc));
    }

    let nvars = stg.signal_count();
    let mut impls = Vec::new();
    for signal in stg.signal_ids() {
        if !stg.signal(signal).kind.is_implemented() {
            continue;
        }
        let ns = extract_next_state(stg, &sg, signal).ok_or_else(|| {
            SynthError::Csc(Vec::new()) // unreachable: CSC checked above
        })?;
        let function = match opts.style {
            SynthStyle::ComplexGate => {
                let on = ns.on_set();
                let off = ns.off_set();
                let cover = minimize_sets(nvars, &on, &off)?;
                if let Some((code, _)) = cover.check(&on, &off) {
                    return Err(SynthError::CoverMismatch {
                        signal: stg.signal(signal).name.clone(),
                        code,
                    });
                }
                SignalFunction::Complex(cover)
            }
            SynthStyle::GeneralizedC => {
                let er_rise = ns.region_codes(Region::ExcitedRise);
                let er_fall = ns.region_codes(Region::ExcitedFall);
                let stable0 = ns.region_codes(Region::Stable0);
                let stable1 = ns.region_codes(Region::Stable1);
                // Set: 1 on ER(s+), 0 wherever the output must be/stay 0.
                let set_off: Vec<u64> =
                    stable0.iter().chain(er_fall.iter()).copied().collect();
                let set = minimize_sets(nvars, &er_rise, &set_off)?;
                // Reset: 1 on ER(s-), 0 wherever the output must be/stay 1.
                let reset_off: Vec<u64> =
                    stable1.iter().chain(er_rise.iter()).copied().collect();
                let reset = minimize_sets(nvars, &er_fall, &reset_off)?;
                SignalFunction::Gc { set, reset }
            }
        };
        impls.push(SignalImpl {
            signal,
            name: stg.signal(signal).name.clone(),
            function,
        });
    }

    let netlist = assemble(stg, &impls, opts)?;
    Ok(Synthesis { netlist, impls })
}

fn assemble(
    stg: &Stg,
    impls: &[SignalImpl],
    opts: &SynthOptions,
) -> Result<Netlist, SynthError> {
    let mut b = NetlistBuilder::new(stg.name());
    let mut nets: Vec<NetId> = Vec::with_capacity(stg.signal_count());
    for s in stg.signal_ids() {
        let sig = stg.signal(s);
        let net = if sig.kind == SignalKind::Input {
            b.input(sig.name.clone())
        } else {
            b.net(sig.name.clone())
        };
        nets.push(net);
    }
    for im in impls {
        let (kind, support) = match &im.function {
            SignalFunction::Complex(cover) => {
                let expr = Expr::from_cover(cover);
                (GateKind::Complex(expr.clone()), expr.support())
            }
            SignalFunction::Gc { set, reset } => {
                let set_e = Expr::from_cover(set);
                let reset_e = Expr::from_cover(reset);
                let mut support = set_e.support();
                support.extend(reset_e.support());
                support.sort_unstable();
                support.dedup();
                (
                    GateKind::GeneralizedC {
                        set: set_e,
                        reset: reset_e,
                    },
                    support,
                )
            }
        };
        // Remap global signal indices to local pin positions.
        let pin_of = |global: usize| -> usize {
            support
                .iter()
                .position(|&g| g == global)
                .expect("support member")
        };
        let kind = match kind {
            GateKind::Complex(e) => GateKind::Complex(e.map_vars(&pin_of)),
            GateKind::GeneralizedC { set, reset } => GateKind::GeneralizedC {
                set: set.map_vars(&pin_of),
                reset: reset.map_vars(&pin_of),
            },
            other => other,
        };
        let pins: Vec<NetId> = support.iter().map(|&g| nets[g]).collect();
        b.gate(nets[im.signal.index()], &pins, kind, &opts.lib);
    }
    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4a_stg::Stg;

    const CELEM: &str = "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
";

    #[test]
    fn c_element_complex_gate_is_majority() {
        let stg = Stg::parse_g(CELEM).unwrap();
        let synth = synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate)).unwrap();
        assert_eq!(synth.netlist().gate_count(), 1);
        // Complex-gate next-state of a C-element is the majority function
        // c' = ab + c(a+b): 6 literals.
        assert_eq!(synth.literal_count(), 6);
        let eqs = synth.equations(&stg);
        assert!(eqs.contains("c ="), "{eqs}");
    }

    #[test]
    fn c_element_gc_style() {
        let stg = Stg::parse_g(CELEM).unwrap();
        let synth = synthesize(&stg, &SynthOptions::new(SynthStyle::GeneralizedC)).unwrap();
        assert_eq!(synth.netlist().gate_count(), 1);
        let im = &synth.impls()[0];
        match &im.function {
            SignalFunction::Gc { set, reset } => {
                // set = a b ; reset = a' b'
                assert_eq!(set.literal_count(), 2);
                assert_eq!(reset.literal_count(), 2);
            }
            other => panic!("expected gC, got {other:?}"),
        }
    }

    #[test]
    fn handshake_ack_is_buffer() {
        let stg = Stg::parse_g(
            "\
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
",
        )
        .unwrap();
        let synth = synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate)).unwrap();
        // ack = req: a single-literal cover.
        assert_eq!(synth.literal_count(), 1);
    }

    #[test]
    fn csc_conflict_rejected() {
        let stg = Stg::parse_g(
            "\
.model bad
.inputs a
.outputs b
.graph
a+ a-
a- b+
b+ b-
b- a+
.marking { <b-,a+> }
.end
",
        )
        .unwrap();
        let err = synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate)).unwrap_err();
        assert!(matches!(err, SynthError::Csc(c) if !c.is_empty()));
    }

    #[test]
    fn non_persistent_rejected_unless_allowed() {
        // Output o+ in choice with input a+.
        let stg = Stg::parse_g(
            "\
.model np
.inputs a
.outputs o
.graph
p0 a+ o+
a+ p1
o+ p1
p1 a- o-
a- p2
o- p2
p2 a+
.marking { p0 }
.end
",
        );
        // This hand-written net is odd; build a cleaner one with the
        // builder instead.
        drop(stg);
        let mut bld = a4a_stg::StgBuilder::new("np");
        let a = bld.input("a", false);
        let o = bld.output("o", false);
        let ap = bld.rise(a);
        let op = bld.rise(o);
        let p = bld.place_with_tokens("p", 1);
        bld.arc_pt(p, ap);
        bld.arc_pt(p, op);
        let stg = bld.build();
        let err = synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate)).unwrap_err();
        assert!(matches!(err, SynthError::NotPersistent(_)));
    }

    #[test]
    fn netlist_nets_named_after_signals() {
        let stg = Stg::parse_g(CELEM).unwrap();
        let synth = synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate)).unwrap();
        let n = synth.netlist();
        assert!(n.net_by_name("a").is_some());
        assert!(n.net_by_name("c").is_some());
        assert_eq!(n.inputs().len(), 2);
    }
}
