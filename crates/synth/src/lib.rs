//! Speed-independent logic synthesis from Signal Transition Graphs — the
//! Petrify/MPSat stand-in of the A4A flow.
//!
//! The pipeline:
//!
//! 1. build the binary-encoded state graph ([`a4a_stg::StateGraph`]) and
//!    run the sanity checks (consistency, output persistence, CSC);
//! 2. extract, for every output/internal signal, its next-state function
//!    as ON/OFF sets of reachable codes ([`NextState`]);
//! 3. minimise with [`a4a_boolmin`] into either a single *complex gate*
//!    per signal or a *generalized C-element* (set/reset covers);
//! 4. assemble an [`a4a_netlist::Netlist`] with library timing;
//! 5. verify the result against the specification by joint state-space
//!    exploration ([`verify_si`]): every circuit output change must be
//!    allowed by the STG (conformance) and no excited gate may be
//!    disabled before firing (semi-modularity, i.e. hazard-freeness
//!    under the speed-independence model).
//!
//! # Examples
//!
//! Synthesise and verify a C-element specification:
//!
//! ```
//! use a4a_stg::Stg;
//! use a4a_synth::{synthesize, verify_si, SynthOptions, SynthStyle};
//!
//! let stg = Stg::parse_g("\
//! .model celem
//! .inputs a b
//! .outputs c
//! .graph
//! a+ c+
//! b+ c+
//! c+ a- b-
//! a- c-
//! b- c-
//! c- a+ b+
//! .marking { <c-,a+> <c-,b+> }
//! .end
//! ")?;
//! let synth = synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate))?;
//! assert_eq!(synth.netlist().gate_count(), 1);
//! let report = verify_si(&stg, synth.netlist(), 10_000)?;
//! assert!(report.is_clean());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod extract;
mod gates;
mod si;

pub use error::SynthError;
pub use extract::{extract_next_state, NextState, Region};
pub use gates::{synthesize, SignalImpl, SignalFunction, SynthOptions, SynthStyle, Synthesis};
pub use si::{verify_si, SiReport, SiViolation};
