//! Next-state function extraction from a binary-encoded state graph.

use std::collections::BTreeMap;

use a4a_stg::{SignalId, StateGraph, Stg};

/// Classification of a reachable code with respect to one signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Signal is 0 and not excited: stays 0.
    Stable0,
    /// Signal is 0 and excited: the rising excitation region, next
    /// value 1.
    ExcitedRise,
    /// Signal is 1 and not excited: stays 1.
    Stable1,
    /// Signal is 1 and excited: the falling excitation region, next
    /// value 0.
    ExcitedFall,
}

impl Region {
    /// The signal's next value in this region.
    pub fn next_value(self) -> bool {
        matches!(self, Region::ExcitedRise | Region::Stable1)
    }
}

/// The extracted next-state function of one signal: every reachable code
/// classified into a [`Region`]. Codes not present are unreachable
/// don't-cares.
#[derive(Debug, Clone)]
pub struct NextState {
    /// The signal this function implements.
    pub signal: SignalId,
    /// Region per reachable code (BTreeMap for deterministic iteration).
    pub regions: BTreeMap<u64, Region>,
}

impl NextState {
    /// Codes whose next value is 1 (the ON-set).
    pub fn on_set(&self) -> Vec<u64> {
        self.regions
            .iter()
            .filter(|(_, r)| r.next_value())
            .map(|(&c, _)| c)
            .collect()
    }

    /// Codes whose next value is 0 (the OFF-set).
    pub fn off_set(&self) -> Vec<u64> {
        self.regions
            .iter()
            .filter(|(_, r)| !r.next_value())
            .map(|(&c, _)| c)
            .collect()
    }

    /// Codes in the given region.
    pub fn region_codes(&self, region: Region) -> Vec<u64> {
        self.regions
            .iter()
            .filter(|(_, &r)| r == region)
            .map(|(&c, _)| c)
            .collect()
    }
}

/// Extracts the next-state function of `signal` from the state graph.
///
/// Returns `None` when two states share a code but disagree on the
/// signal's region — a CSC conflict for this signal (the caller reports
/// it with full detail via [`a4a_stg::verify`]).
///
/// [`a4a_stg::verify`]: a4a_stg::Stg::verify
pub fn extract_next_state(stg: &Stg, sg: &StateGraph, signal: SignalId) -> Option<NextState> {
    let mut regions: BTreeMap<u64, Region> = BTreeMap::new();
    for s in sg.state_ids() {
        let code = sg.code(s);
        let value = sg.value(s, signal);
        let excited = sg.is_excited(stg, s, signal);
        let region = match (value, excited) {
            (false, false) => Region::Stable0,
            (false, true) => Region::ExcitedRise,
            (true, false) => Region::Stable1,
            (true, true) => Region::ExcitedFall,
        };
        match regions.get(&code) {
            None => {
                regions.insert(code, region);
            }
            Some(&prev) if prev == region => {}
            Some(_) => return None, // CSC conflict on this signal
        }
    }
    Some(NextState { signal, regions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use a4a_stg::StgBuilder;

    fn handshake() -> Stg {
        let mut b = StgBuilder::new("hs");
        let req = b.input("req", false);
        let ack = b.output("ack", false);
        let rp = b.rise(req);
        let ap = b.rise(ack);
        let rm = b.fall(req);
        let am = b.fall(ack);
        b.connect_marked(am, rp);
        b.connect(rp, ap);
        b.connect(ap, rm);
        b.connect(rm, am);
        b.build()
    }

    #[test]
    fn handshake_ack_regions() {
        let stg = handshake();
        let sg = stg.state_graph(100).unwrap();
        let ack = stg.signal_by_name("ack").unwrap();
        let ns = extract_next_state(&stg, &sg, ack).expect("CSC holds");
        // Codes (bit0=req, bit1=ack): 00 stable0, 01 excited-rise,
        // 11 stable1, 10 excited-fall.
        assert_eq!(ns.regions[&0b00], Region::Stable0);
        assert_eq!(ns.regions[&0b01], Region::ExcitedRise);
        assert_eq!(ns.regions[&0b11], Region::Stable1);
        assert_eq!(ns.regions[&0b10], Region::ExcitedFall);
        assert_eq!(ns.on_set(), vec![0b01, 0b11]);
        assert_eq!(ns.off_set(), vec![0b00, 0b10]);
        assert_eq!(ns.region_codes(Region::ExcitedRise), vec![0b01]);
    }

    #[test]
    fn csc_conflict_yields_none() {
        // a+ a- b+ b- loop: code 00 occurs twice with different b
        // excitation.
        let mut bld = StgBuilder::new("csc");
        let a = bld.input("a", false);
        let b = bld.output("b", false);
        let ap = bld.rise(a);
        let am = bld.fall(a);
        let bp = bld.rise(b);
        let bm = bld.fall(b);
        bld.connect_marked(bm, ap);
        bld.connect(ap, am);
        bld.connect(am, bp);
        bld.connect(bp, bm);
        let stg = bld.build();
        let sg = stg.state_graph(100).unwrap();
        assert!(extract_next_state(&stg, &sg, b).is_none());
    }

    #[test]
    fn region_next_values() {
        assert!(!Region::Stable0.next_value());
        assert!(Region::ExcitedRise.next_value());
        assert!(Region::Stable1.next_value());
        assert!(!Region::ExcitedFall.next_value());
    }
}
