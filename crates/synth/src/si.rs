//! Speed-independence verification by joint exploration of the circuit
//! and its STG specification.
//!
//! The circuit's reachable behaviour under the speed-independence model
//! (arbitrary gate delays) is explored together with the set of
//! specification states compatible with the trace so far. Two properties
//! are checked:
//!
//! * **conformance** — whenever a gate output changes, the specification
//!   must allow that edge;
//! * **semi-modularity** (output persistence at gate level, i.e. hazard
//!   freedom) — an excited gate must not be disabled by another signal
//!   changing before it fires.

use std::collections::{BTreeSet, VecDeque};
use std::hash::Hasher;

use a4a_netlist::{GateId, Netlist};
use a4a_rt::{FxHashMap, FxHasher, IdTable};
use a4a_stg::{Edge, Label, Polarity, SgStateId, SignalId, SignalKind, Stg};

use crate::SynthError;

/// A violation discovered by [`verify_si`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiViolation {
    /// The circuit produced an output edge the specification does not
    /// allow here.
    Unexpected {
        /// The offending edge, e.g. `gp+`.
        edge: String,
        /// The trace (edge names) leading to the violation.
        trace: Vec<String>,
    },
    /// An excited gate was disabled before firing: a potential hazard.
    Disabled {
        /// The signal whose excitation was revoked.
        signal: String,
        /// The edge whose firing revoked it.
        by: String,
        /// The trace (edge names) leading to the violation.
        trace: Vec<String>,
    },
}

/// Result of [`verify_si`].
#[derive(Debug, Clone, Default)]
pub struct SiReport {
    /// Joint states explored.
    pub states: usize,
    /// Violations found (bounded to the first few per kind).
    pub violations: Vec<SiViolation>,
}

impl SiReport {
    /// Returns `true` when the circuit conforms to the specification and
    /// is free of hazards under the SI delay model.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verifies a synthesised netlist against its STG specification.
///
/// The netlist must use the one-net-per-signal form produced by
/// [`crate::synthesize`] (net names equal signal names).
///
/// # Errors
///
/// * [`SynthError::SignalMapping`] when a net has no same-named signal;
/// * [`SynthError::StateLimit`] when the joint exploration exceeds
///   `max_states`;
/// * [`SynthError::Stg`] when the specification itself cannot be
///   explored.
pub fn verify_si(stg: &Stg, netlist: &Netlist, max_states: usize) -> Result<SiReport, SynthError> {
    let sg = stg.state_graph(max_states)?;

    // Map implemented signals to their driver gates.
    let mut gate_of: Vec<Option<GateId>> = vec![None; stg.signal_count()];
    for net in netlist.net_ids() {
        let name = &netlist.net(net).name;
        let signal = stg
            .signal_by_name(name)
            .ok_or_else(|| SynthError::SignalMapping { net: name.clone() })?;
        if let Some(gate) = netlist.driver(net) {
            gate_of[signal.index()] = Some(gate);
        }
    }
    let implemented: Vec<SignalId> = stg
        .signal_ids()
        .filter(|&s| stg.signal(s).kind.is_implemented())
        .collect();
    // Signals implemented in the STG must be driven in the netlist.
    for &s in &implemented {
        if gate_of[s.index()].is_none() {
            return Err(SynthError::SignalMapping {
                net: stg.signal(s).name.clone(),
            });
        }
    }
    // Pin order: map netlist pins back to signal indices once.
    let pin_signals: FxHashMap<GateId, Vec<SignalId>> = netlist
        .gate_ids()
        .map(|g| {
            let sigs = netlist
                .gate(g)
                .pins
                .iter()
                .map(|&p| {
                    stg.signal_by_name(&netlist.net(p).name)
                        .expect("checked above")
                })
                .collect();
            (g, sigs)
        })
        .collect();

    let eval_signal = |signal: SignalId, code: u64| -> bool {
        let gate_id = gate_of[signal.index()].expect("implemented");
        let gate = netlist.gate(gate_id);
        let pins: Vec<bool> = pin_signals[&gate_id]
            .iter()
            .map(|s| code & s.mask() != 0)
            .collect();
        gate.kind.eval(&pins, code & signal.mask() != 0)
    };

    // Epsilon (dummy) closure over specification states.
    let closure = |set: BTreeSet<SgStateId>| -> BTreeSet<SgStateId> {
        let mut out = set;
        let mut queue: VecDeque<SgStateId> = out.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for &(t, succ) in sg.successors(s) {
                if stg.label(t) == Label::Dummy && out.insert(succ) {
                    queue.push_back(succ);
                }
            }
        }
        out
    };
    // Spec states in `set` enabling `edge`, and the closure of their
    // successors through it.
    let advance = |set: &BTreeSet<SgStateId>, edge: Edge| -> BTreeSet<SgStateId> {
        let mut next = BTreeSet::new();
        for &s in set {
            for &(t, succ) in sg.successors(s) {
                if stg.label(t) == Label::Edge(edge) {
                    next.insert(succ);
                }
            }
        }
        closure(next)
    };
    let spec_enables = |set: &BTreeSet<SgStateId>, edge: Edge| -> bool {
        set.iter().any(|&s| {
            sg.successors(s)
                .iter()
                .any(|&(t, _)| stg.label(t) == Label::Edge(edge))
        })
    };

    let edge_name = |e: Edge| -> String {
        format!("{}{}", stg.signal(e.signal).name, e.polarity.suffix())
    };

    // Joint BFS. Keys live once, in the `keys` arena; the interner maps
    // fx-hash → index with equality resolved against the arena.
    type Key = (u64, BTreeSet<SgStateId>);
    let key_hash = |key: &Key| -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(key.0);
        h.write_usize(key.1.len());
        for &s in &key.1 {
            h.write_u32(s.index() as u32);
        }
        h.finish()
    };
    let initial: Key = (stg.initial_code(), closure(BTreeSet::from([SgStateId::INITIAL])));
    let mut table = IdTable::new();
    let mut keys: Vec<Key> = Vec::new();
    let mut parents: Vec<Option<(usize, Edge)>> = Vec::new();
    table.insert(key_hash(&initial), 0);
    keys.push(initial);
    parents.push(None);

    let trace_of = |parents: &[Option<(usize, Edge)>], mut idx: usize| -> Vec<String> {
        let mut out = Vec::new();
        while let Some((prev, e)) = parents[idx] {
            out.push(edge_name(e));
            idx = prev;
        }
        out.reverse();
        out
    };

    let mut report = SiReport::default();
    const MAX_VIOLATIONS: usize = 16;

    let mut frontier = 0usize;
    while frontier < keys.len() {
        let (code, spec) = keys[frontier].clone();

        // Moves available in this joint state.
        let mut moves: Vec<Edge> = Vec::new();
        // Environment: input edges enabled by the spec.
        for s in stg.signal_ids() {
            if stg.signal(s).kind != SignalKind::Input {
                continue;
            }
            let cur = code & s.mask() != 0;
            let edge = Edge {
                signal: s,
                polarity: if cur { Polarity::Falling } else { Polarity::Rising },
            };
            if spec_enables(&spec, edge) {
                moves.push(edge);
            }
        }
        // Circuit: excited implemented signals.
        let excited: Vec<SignalId> = implemented
            .iter()
            .copied()
            .filter(|&s| eval_signal(s, code) != (code & s.mask() != 0))
            .collect();
        for &s in &excited {
            let cur = code & s.mask() != 0;
            let edge = Edge {
                signal: s,
                polarity: if cur { Polarity::Falling } else { Polarity::Rising },
            };
            if !spec_enables(&spec, edge) {
                if report.violations.len() < MAX_VIOLATIONS {
                    let mut trace = trace_of(&parents, frontier);
                    trace.push(edge_name(edge));
                    report.violations.push(SiViolation::Unexpected {
                        edge: edge_name(edge),
                        trace,
                    });
                }
                continue;
            }
            moves.push(edge);
        }

        for &edge in &moves {
            let new_code = code ^ edge.signal.mask();
            // Semi-modularity: every other excited signal stays excited.
            for &s in &excited {
                if s == edge.signal {
                    continue;
                }
                let still = eval_signal(s, new_code) != (new_code & s.mask() != 0);
                if !still && report.violations.len() < MAX_VIOLATIONS {
                    let mut trace = trace_of(&parents, frontier);
                    trace.push(edge_name(edge));
                    report.violations.push(SiViolation::Disabled {
                        signal: stg.signal(s).name.clone(),
                        by: edge_name(edge),
                        trace,
                    });
                }
            }
            let new_spec = advance(&spec, edge);
            if new_spec.is_empty() {
                // Only possible for circuit moves rejected above or for
                // input moves the spec cannot take; both already handled.
                continue;
            }
            let key: Key = (new_code, new_spec);
            let hash = key_hash(&key);
            if table.get(hash, |id| keys[id as usize] == key).is_none() {
                if keys.len() >= max_states {
                    return Err(SynthError::StateLimit { limit: max_states });
                }
                table.insert(hash, keys.len() as u32);
                keys.push(key);
                parents.push(Some((frontier, edge)));
            }
        }
        frontier += 1;
    }

    report.states = keys.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthOptions, SynthStyle};
    use a4a_boolmin::Expr;
    use a4a_netlist::{GateKind, GateLib, NetlistBuilder};

    const CELEM: &str = "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
";

    #[test]
    fn synthesised_c_element_is_clean() {
        let stg = a4a_stg::Stg::parse_g(CELEM).unwrap();
        for style in [SynthStyle::ComplexGate, SynthStyle::GeneralizedC] {
            let synth = synthesize(&stg, &SynthOptions::new(style)).unwrap();
            let report = verify_si(&stg, synth.netlist(), 100_000).unwrap();
            assert!(report.is_clean(), "{style:?}: {:?}", report.violations);
            assert!(report.states >= 4);
        }
    }

    #[test]
    fn wrong_gate_caught_as_unexpected() {
        // Implement c = a (ignores b): fires c+ after a+ even when the
        // spec still waits for b+.
        let stg = a4a_stg::Stg::parse_g(CELEM).unwrap();
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("wrong");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.net("c");
        let _ = bb;
        b.complex(c, &[a], Expr::var(0), &lib);
        let netlist = b.build().unwrap();
        let report = verify_si(&stg, &netlist, 100_000).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, SiViolation::Unexpected { edge, .. } if edge == "c+")));
    }

    #[test]
    fn hazardous_gate_caught_as_disabled() {
        // Implement c as pure AND: after c+ with a=b=1, dropping a
        // excites c to fall... that conforms? In the spec c- only fires
        // after both a- and b-. AND fires c- after just a-: unexpected.
        // To get a Disabled violation instead, use OR for set-like
        // behaviour: c = a | b. From a=1,b=0,c=1 (not reachable here)...
        // Simpler: two-input spec where OR over-approximates. Keep this
        // test on the AND case and assert any violation is found.
        let stg = a4a_stg::Stg::parse_g(CELEM).unwrap();
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("and_impl");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.net("c");
        b.complex(
            c,
            &[a, bb],
            Expr::and(vec![Expr::var(0), Expr::var(1)]),
            &lib,
        );
        let netlist = b.build().unwrap();
        let report = verify_si(&stg, &netlist, 100_000).unwrap();
        assert!(!report.is_clean());
    }

    #[test]
    fn disabled_excitation_detected() {
        // Spec: inputs a, b concurrent; output o = a AND b is wrong when
        // the spec says o+ after a+ alone. Build spec: a+ -> o+ -> a- ->
        // o- with a free-running b toggling concurrently. Implement
        // o = a & b: b- while o excited disables it.
        let mut bld = a4a_stg::StgBuilder::new("dis");
        let a = bld.input("a", false);
        let bsig = bld.input("b", false);
        let o = bld.output("o", false);
        let ap = bld.rise(a);
        let op = bld.rise(o);
        let am = bld.fall(a);
        let om = bld.fall(o);
        bld.connect_marked(om, ap);
        bld.connect(ap, op);
        bld.connect(op, am);
        bld.connect(am, om);
        // b toggles freely.
        let bp = bld.rise(bsig);
        let bm = bld.fall(bsig);
        bld.connect_marked(bm, bp);
        bld.connect(bp, bm);
        let stg = bld.build();

        let lib = GateLib::tsmc90();
        let mut nb = NetlistBuilder::new("dis_impl");
        let an = nb.input("a");
        let bn = nb.input("b");
        let on = nb.net("o");
        nb.gate(
            on,
            &[an, bn],
            GateKind::Complex(Expr::and(vec![Expr::var(0), Expr::var(1)])),
            &lib,
        );
        let netlist = nb.build().unwrap();
        let report = verify_si(&stg, &netlist, 100_000).unwrap();
        assert!(report.violations.iter().any(|v| matches!(
            v,
            SiViolation::Disabled { signal, .. } if signal == "o"
        )), "{:?}", report.violations);
    }

    #[test]
    fn unmapped_net_rejected() {
        let stg = a4a_stg::Stg::parse_g(CELEM).unwrap();
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("extra");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.net("c");
        let extra = b.net("helper");
        b.buf(extra, a, &lib);
        b.complex(
            c,
            &[extra, bb],
            Expr::and(vec![Expr::var(0), Expr::var(1)]),
            &lib,
        );
        let netlist = b.build().unwrap();
        let err = verify_si(&stg, &netlist, 100_000).unwrap_err();
        assert!(matches!(err, SynthError::SignalMapping { net } if net == "helper"));
    }

    #[test]
    fn traces_lead_to_violation() {
        let stg = a4a_stg::Stg::parse_g(CELEM).unwrap();
        let lib = GateLib::tsmc90();
        let mut b = NetlistBuilder::new("wrong");
        let a = b.input("a");
        let _bb = b.input("b");
        let c = b.net("c");
        b.complex(c, &[a], Expr::var(0), &lib);
        let netlist = b.build().unwrap();
        let report = verify_si(&stg, &netlist, 100_000).unwrap();
        let v = report
            .violations
            .iter()
            .find_map(|v| match v {
                SiViolation::Unexpected { edge, trace } if edge == "c+" => Some(trace.clone()),
                _ => None,
            })
            .expect("violation with trace");
        assert_eq!(v.last().map(String::as_str), Some("c+"));
        assert!(v.len() >= 2, "needs at least one input move first: {v:?}");
    }
}
