//! Property-based tests: A2A elements keep their protocol promises
//! under arbitrary (monotone-timed) input sequences.

use a4a_a2a::{HandshakeMonitor, RWait, Wait, Wait2, WaitX};
use a4a_rt::prop::{self, Gen, PropResult};
use a4a_rt::{prop_assert, prop_assert_eq};
use a4a_sim::Time;

/// A random interleaving of sig/req toggles at increasing times.
#[derive(Debug, Clone, Copy)]
enum Stimulus {
    Sig(bool),
    Req(bool),
    Cancel,
    Poll,
}

fn arb_stimuli(g: &mut Gen, len: usize) -> Vec<(u64, Stimulus)> {
    let steps = g.vec(1..len, |g| {
        let dt = g.u64(1..50);
        let s = match g.choice(4) {
            0 => Stimulus::Sig(g.bool()),
            1 => Stimulus::Req(g.bool()),
            2 => Stimulus::Cancel,
            _ => Stimulus::Poll,
        };
        (dt, s)
    });
    // Convert deltas to absolute, strictly increasing times.
    let mut t = 0u64;
    steps
        .into_iter()
        .map(|(dt, s)| {
            t += dt;
            (t, s)
        })
        .collect()
}

/// WAIT never acknowledges without an active request, and its output
/// sequence is always a legal 4-phase handshake against the request
/// stream it actually saw.
#[test]
fn wait_protocol_compliance() {
    prop::check("wait_protocol_compliance", |g: &mut Gen| -> PropResult {
        let stimuli = arb_stimuli(g, 60);
        let mut w = Wait::new(Time::from_ns(0.5));
        let mut monitor = HandshakeMonitor::new("wait");
        let mut req = false;
        let deliver = |mon: &mut HandshakeMonitor, ev: Option<a4a_a2a::AckEvent>| {
            if let Some(ev) = ev {
                mon.ack(ev.time, ev.value).expect("element acks legally");
            }
        };
        for (t_ns, s) in stimuli {
            let t = Time::from_fs(t_ns * 1_000_000);
            // Flush any due output first.
            if let Some(d) = w.next_deadline() {
                if d <= t {
                    deliver(&mut monitor, w.poll(d));
                }
            }
            match s {
                Stimulus::Sig(v) => {
                    deliver(&mut monitor, w.set_sig(t, v));
                }
                Stimulus::Req(v) => {
                    // Drive req only at protocol-legal instants (the
                    // controller side of a 4-phase handshake).
                    let legal = if v {
                        !monitor.req_level() && !monitor.ack_level()
                    } else {
                        monitor.req_level() && monitor.ack_level()
                    };
                    if v != req && legal {
                        req = v;
                        monitor.req(t, v).expect("gated to be legal");
                        deliver(&mut monitor, w.set_req(t, v));
                    }
                }
                Stimulus::Cancel => {}
                Stimulus::Poll => {
                    deliver(&mut monitor, w.poll(t));
                }
            }
            // Invariant: ack implies the request phase it belongs to.
            if w.ack() {
                prop_assert!(monitor.ack_level());
            }
        }
        Ok(())
    });
}

/// RWAIT after a cancel stays silent until re-armed.
#[test]
fn rwait_cancel_is_persistent() {
    prop::check("rwait_cancel_is_persistent", |g: &mut Gen| -> PropResult {
        let pulses = g.vec(1..20, |g| g.u64(1..20));
        let mut w = RWait::new(Time::from_ns(0.5));
        w.set_req(Time::from_ns(1.0), true);
        w.cancel(Time::from_ns(2.0));
        let mut t = Time::from_ns(3.0);
        for dt in pulses {
            t += Time::from_ns(dt as f64);
            w.set_sig(t, true);
            prop_assert_eq!(w.next_deadline(), None, "cancelled wait must not latch");
            t += Time::from_ns(0.1);
            w.set_sig(t, false);
        }
        prop_assert!(!w.ack());
        Ok(())
    });
}

/// WAITX grants are always mutually exclusive and only under an
/// active request.
#[test]
fn waitx_mutual_exclusion() {
    prop::check("waitx_mutual_exclusion", |g: &mut Gen| -> PropResult {
        let stimuli = arb_stimuli(g, 80);
        let channel_bits = g.any_u64();
        let mut x = WaitX::new(Time::from_ns(0.4));
        let mut req = false;
        for (i, (t_ns, s)) in stimuli.into_iter().enumerate() {
            let t = Time::from_fs(t_ns * 1_000_000);
            if let Some(d) = x.next_deadline() {
                if d <= t {
                    x.poll(d);
                }
            }
            match s {
                Stimulus::Sig(v) => {
                    let ch = ((channel_bits >> (i % 64)) & 1) as usize;
                    x.set_sig(t, ch, v);
                }
                Stimulus::Req(v) => {
                    if v != req {
                        req = v;
                        x.set_req(t, v);
                    }
                }
                _ => {
                    x.poll(t);
                }
            }
            prop_assert!(
                !(x.grant(0) && x.grant(1)),
                "both grants high"
            );
            if !req && x.winner().is_none() {
                // Fully released: eventually both grants drop.
                if let Some(d) = x.next_deadline() {
                    x.poll(d);
                }
            }
        }
        Ok(())
    });
}

/// WAIT2 acknowledges at most once per request phase, and the ack
/// only falls after the input has been seen low.
#[test]
fn wait2_full_cycle_discipline() {
    prop::check("wait2_full_cycle_discipline", |g: &mut Gen| -> PropResult {
        let cycles = g.usize(1..10);
        let gap = g.u64(1..10);
        let mut w = Wait2::new(Time::from_ns(0.3));
        let mut t = Time::ZERO;
        let step = |t: &mut Time, d: f64| {
            *t += Time::from_ns(d);
            *t
        };
        for _ in 0..cycles {
            w.set_req(step(&mut t, gap as f64), true);
            prop_assert!(!w.ack());
            w.set_sig(step(&mut t, 1.0), true);
            let ev = w.poll(step(&mut t, 1.0)).expect("latched high");
            prop_assert!(ev.value);
            // Request release alone is not enough.
            w.set_req(step(&mut t, 1.0), false);
            prop_assert_eq!(w.next_deadline(), None);
            prop_assert!(w.ack());
            w.set_sig(step(&mut t, 1.0), false);
            let ev = w.poll(step(&mut t, 1.0)).expect("released low");
            prop_assert!(!ev.value);
        }
        Ok(())
    });
}
