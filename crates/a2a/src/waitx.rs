//! WAITX / WAITX2: arbitration between two non-persistent inputs.

use a4a_sim::Time;

use crate::meta::{MetaParams, MetaState};

/// A grant-output change produced by an arbitrating element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantEvent {
    /// When the output changed.
    pub time: Time,
    /// Which grant rail changed (0 or 1).
    pub channel: usize,
    /// The new output value.
    pub value: bool,
}

/// Common machinery of WAITX and WAITX2.
#[derive(Debug, Clone)]
struct XCore {
    /// WAITX2 holds its grant until the winning input goes low.
    hold_until_low: bool,
    delay: Time,
    sigs: [bool; 2],
    req: bool,
    grants: [bool; 2],
    winner: Option<usize>,
    pending: Option<(Time, usize, bool)>,
    meta: MetaState,
    filtered: u64,
    contentions: u64,
    last_t: Time,
}

impl XCore {
    fn new(hold_until_low: bool, delay: Time, meta: MetaParams) -> XCore {
        XCore {
            hold_until_low,
            delay,
            sigs: [false; 2],
            req: false,
            grants: [false; 2],
            winner: None,
            pending: None,
            meta: meta.into_state(),
            filtered: 0,
            contentions: 0,
            last_t: Time::ZERO,
        }
    }

    fn flush(&mut self, t: Time) -> Option<GrantEvent> {
        assert!(t >= self.last_t, "time went backwards: {t} < {}", self.last_t);
        self.last_t = t;
        if let Some((at, channel, value)) = self.pending {
            if at <= t {
                self.pending = None;
                self.grants[channel] = value;
                return Some(GrantEvent {
                    time: at,
                    channel,
                    value,
                });
            }
        }
        None
    }

    fn try_grant(&mut self, t: Time) {
        if !self.req || self.winner.is_some() || self.pending.is_some() {
            return;
        }
        let candidate = match (self.sigs[0], self.sigs[1]) {
            (true, true) => {
                // Simultaneous contention: the internal mutex resolves it;
                // possibly through a metastability tail. Channel 0 wins
                // ties deterministically (the tail models the cost).
                self.contentions += 1;
                Some(0)
            }
            (true, false) => Some(0),
            (false, true) => Some(1),
            (false, false) => None,
        };
        if let Some(ch) = candidate {
            let extra = if self.sigs[0] && self.sigs[1] {
                self.meta.resolution_delay()
            } else {
                Time::ZERO
            };
            self.winner = Some(ch);
            self.pending = Some((t + self.delay + extra, ch, true));
        }
    }

    fn set_sig(&mut self, t: Time, channel: usize, v: bool) -> Option<GrantEvent> {
        assert!(channel < 2, "channel must be 0 or 1");
        let ev = self.flush(t);
        self.sigs[channel] = v;
        if !v {
            // Retraction: a pending grant for this channel is filtered.
            if let Some((_, ch, true)) = self.pending {
                if ch == channel {
                    self.pending = None;
                    self.winner = None;
                    self.filtered += 1;
                }
            }
            // WAITX2 release phase: winner's input went low.
            if self.hold_until_low {
                self.maybe_release(t);
            }
        }
        self.try_grant(t);
        ev
    }

    fn set_req(&mut self, t: Time, v: bool) -> Option<GrantEvent> {
        let ev = self.flush(t);
        self.req = v;
        if v {
            self.try_grant(t);
        } else if self.hold_until_low {
            self.maybe_release(t);
        } else {
            self.release(t);
        }
        ev
    }

    fn maybe_release(&mut self, t: Time) {
        if let Some(w) = self.winner {
            if !self.req && !self.sigs[w] {
                self.release(t);
            }
        }
    }

    fn release(&mut self, t: Time) {
        if let Some(w) = self.winner {
            if self.grants[w] || matches!(self.pending, Some((_, _, true))) {
                self.pending = Some((t + self.delay, w, false));
            }
            self.winner = None;
        }
    }

    fn poll(&mut self, t: Time) -> Option<GrantEvent> {
        let ev = self.flush(t);
        if ev.is_some() {
            self.try_grant(t);
        }
        ev
    }
}

macro_rules! waitx_element {
    ($(#[$doc:meta])* $name:ident, hold = $hold:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            core: XCore,
        }

        impl $name {
            /// Creates the element with the given decision delay and no
            /// metastability.
            pub fn new(delay: Time) -> Self {
                Self::with_meta(delay, MetaParams::disabled())
            }

            /// Creates the element with a metastability model for
            /// contended arbitrations.
            pub fn with_meta(delay: Time, meta: MetaParams) -> Self {
                $name {
                    core: XCore::new($hold, delay, meta),
                }
            }

            /// Drives one of the two non-persistent inputs.
            ///
            /// # Panics
            ///
            /// Panics if `channel` is not 0 or 1, or time goes backwards.
            pub fn set_sig(&mut self, t: Time, channel: usize, v: bool) -> Option<GrantEvent> {
                self.core.set_sig(t, channel, v)
            }

            /// Drives the handshake request.
            pub fn set_req(&mut self, t: Time, v: bool) -> Option<GrantEvent> {
                self.core.set_req(t, v)
            }

            /// The dual-rail grant outputs.
            pub fn grant(&self, channel: usize) -> bool {
                self.core.grants[channel]
            }

            /// The winning channel, if a grant is active or in flight.
            pub fn winner(&self) -> Option<usize> {
                self.core.winner
            }

            /// Applies a due output transition, if any.
            pub fn poll(&mut self, t: Time) -> Option<GrantEvent> {
                self.core.poll(t)
            }

            /// The time of the next scheduled output change.
            pub fn next_deadline(&self) -> Option<Time> {
                self.core.pending.map(|(at, _, _)| at)
            }

            /// Number of input pulses filtered while deciding.
            pub fn filtered_pulses(&self) -> u64 {
                self.core.filtered
            }

            /// Number of contended (simultaneous) arbitrations.
            pub fn contentions(&self) -> u64 {
                self.core.contentions
            }
        }
    };
}

waitx_element!(
    /// WAITX: arbitrates which of two non-persistent inputs goes high
    /// first, isolating the controller both from input metastability and
    /// from the arbitration decision itself; the result is a clean
    /// dual-rail grant (§III). Used by the phase controller to
    /// distinguish UV from OV mode entry.
    WaitX, hold = false
);

waitx_element!(
    /// WAITX2: behaves as [`WaitX`] in the rising phase and as
    /// [`crate::Wait0`] in the falling phase — the grant is not released
    /// until the winning input goes low again.
    WaitX2, hold = true
);

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    #[test]
    fn first_input_wins() {
        let mut x = WaitX::new(ns(0.1));
        x.set_req(ns(1.0), true);
        x.set_sig(ns(2.0), 1, true);
        let ev = x.poll(ns(2.1)).unwrap();
        assert_eq!((ev.channel, ev.value), (1, true));
        assert!(x.grant(1));
        assert!(!x.grant(0));
        // The loser arriving later changes nothing.
        x.set_sig(ns(3.0), 0, true);
        assert_eq!(x.next_deadline(), None);
        assert!(!x.grant(0));
    }

    #[test]
    fn contention_resolved_to_exactly_one() {
        let mut x = WaitX::new(ns(0.1));
        x.set_sig(ns(0.5), 0, true);
        x.set_sig(ns(0.6), 1, true);
        x.set_req(ns(1.0), true);
        assert_eq!(x.contentions(), 1);
        let ev = x.poll(ns(5.0)).unwrap();
        assert!(ev.value);
        assert_eq!(
            [x.grant(0), x.grant(1)].iter().filter(|g| **g).count(),
            1
        );
    }

    #[test]
    fn release_on_req_low() {
        let mut x = WaitX::new(ns(0.1));
        x.set_req(ns(1.0), true);
        x.set_sig(ns(2.0), 0, true);
        x.poll(ns(2.1));
        x.set_req(ns(3.0), false);
        let ev = x.poll(ns(3.1)).unwrap();
        assert_eq!((ev.channel, ev.value), (0, false));
        assert_eq!(x.winner(), None);
    }

    #[test]
    fn retracted_pulse_lets_other_win() {
        let mut x = WaitX::new(ns(1.0));
        x.set_req(ns(0.0), true);
        x.set_sig(ns(1.0), 0, true); // decision due at 2.0
        x.set_sig(ns(1.5), 0, false); // retracted
        assert_eq!(x.filtered_pulses(), 1);
        x.set_sig(ns(2.0), 1, true);
        let ev = x.poll(ns(3.0)).unwrap();
        assert_eq!(ev.channel, 1);
    }

    #[test]
    fn waitx2_holds_grant_until_input_low() {
        let mut x = WaitX2::new(ns(0.1));
        x.set_req(ns(1.0), true);
        x.set_sig(ns(2.0), 0, true);
        x.poll(ns(2.1));
        assert!(x.grant(0));
        // Request drops but the input is still high: grant held.
        x.set_req(ns(3.0), false);
        assert_eq!(x.next_deadline(), None);
        assert!(x.grant(0));
        // Input drops: grant releases.
        x.set_sig(ns(4.0), 0, false);
        let ev = x.poll(ns(4.1)).unwrap();
        assert_eq!((ev.channel, ev.value), (0, false));
    }

    #[test]
    fn waitx2_input_low_first_then_req() {
        let mut x = WaitX2::new(ns(0.1));
        x.set_req(ns(1.0), true);
        x.set_sig(ns(2.0), 1, true);
        x.poll(ns(2.1));
        // Input drops first, then the request: releases on the request.
        x.set_sig(ns(3.0), 1, false);
        assert!(x.grant(1), "still requested");
        x.set_req(ns(4.0), false);
        let ev = x.poll(ns(4.1)).unwrap();
        assert!(!ev.value);
    }

    #[test]
    fn winner_reported_while_in_flight() {
        let mut x = WaitX::new(ns(1.0));
        x.set_req(ns(0.0), true);
        assert_eq!(x.winner(), None);
        x.set_sig(ns(1.0), 1, true);
        assert_eq!(x.winner(), Some(1), "winner chosen before the grant fires");
        assert!(!x.grant(1), "grant still in flight");
        x.poll(ns(2.5));
        assert!(x.grant(1));
    }

    #[test]
    fn metastable_contention_takes_longer() {
        let meta = MetaParams::with_seed(1.0, ns(5.0), 3);
        let mut x = WaitX::with_meta(ns(0.1), meta);
        x.set_sig(ns(0.1), 0, true);
        x.set_sig(ns(0.2), 1, true);
        x.set_req(ns(1.0), true);
        let deadline = x.next_deadline().unwrap();
        assert!(deadline > ns(1.1), "contention tail: {deadline}");
    }

    #[test]
    fn grant_after_release_can_rearm() {
        let mut x = WaitX::new(ns(0.1));
        x.set_req(ns(1.0), true);
        x.set_sig(ns(2.0), 0, true);
        x.poll(ns(2.1));
        x.set_req(ns(3.0), false);
        x.poll(ns(3.1));
        x.set_req(ns(4.0), true);
        // sig0 never dropped: wins again immediately.
        let ev = x.poll(ns(4.2)).unwrap();
        assert_eq!((ev.channel, ev.value), (0, true));
    }
}
