//! The WAIT element family: latching interfaces from level- and
//! edge-sensitive non-persistent inputs to 4-phase handshakes.

use a4a_sim::Time;

use crate::meta::{MetaParams, MetaState};

/// An acknowledge-output change produced by an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckEvent {
    /// When the output changed.
    pub time: Time,
    /// The new output value.
    pub value: bool,
}

/// Shared machinery of the level-sensitive WAIT variants.
#[derive(Debug, Clone)]
struct WaitCore {
    /// The input level being waited for.
    target: bool,
    /// Whether the element supports cancellation (RWAIT variants).
    cancellable: bool,
    delay: Time,
    sig: bool,
    req: bool,
    ack: bool,
    latched: bool,
    cancelled: bool,
    pending: Option<(Time, bool)>,
    meta: MetaState,
    filtered: u64,
    last_t: Time,
}

impl WaitCore {
    fn new(target: bool, cancellable: bool, delay: Time, meta: MetaParams) -> WaitCore {
        WaitCore {
            target,
            cancellable,
            delay,
            sig: false,
            req: false,
            ack: false,
            latched: false,
            cancelled: false,
            pending: None,
            meta: meta.into_state(),
            filtered: 0,
            last_t: Time::ZERO,
        }
    }

    fn advance_clock(&mut self, t: Time) -> Option<AckEvent> {
        assert!(t >= self.last_t, "time went backwards: {t} < {}", self.last_t);
        self.last_t = t;
        self.flush(t)
    }

    /// Applies a due pending transition.
    fn flush(&mut self, t: Time) -> Option<AckEvent> {
        if let Some((at, value)) = self.pending {
            if at <= t {
                self.pending = None;
                self.ack = value;
                return Some(AckEvent { time: at, value });
            }
        }
        None
    }

    fn set_sig(&mut self, t: Time, v: bool) -> Option<AckEvent> {
        let ev = self.advance_clock(t);
        self.sig = v;
        if v != self.target {
            // Input retracted: if the latch decision is still pending,
            // the pulse is filtered.
            if let Some((_, true)) = self.pending {
                self.pending = None;
                self.latched = false;
                self.filtered += 1;
            }
        }
        self.update(t);
        ev
    }

    fn set_req(&mut self, t: Time, v: bool) -> Option<AckEvent> {
        let ev = self.advance_clock(t);
        self.req = v;
        if !v {
            // Handshake release: drop the ack (if high or pending) and
            // clear latch/cancel state.
            self.latched = false;
            self.cancelled = false;
            if self.ack || matches!(self.pending, Some((_, true))) {
                self.pending = Some((t + self.delay, false));
            }
        }
        self.update(t);
        ev
    }

    fn set_cancel(&mut self, t: Time, v: bool) -> Option<AckEvent> {
        assert!(self.cancellable, "this element has no cancel input");
        let ev = self.advance_clock(t);
        if v && self.req && !self.ack && !matches!(self.pending, Some((_, true))) {
            self.cancelled = true;
        }
        ev
    }

    fn update(&mut self, t: Time) {
        if self.req
            && !self.ack
            && !self.latched
            && !self.cancelled
            && self.pending.is_none()
            && self.sig == self.target
        {
            self.latched = true;
            let extra = self.meta.resolution_delay();
            self.pending = Some((t + self.delay + extra, true));
        }
    }

    fn poll(&mut self, t: Time) -> Option<AckEvent> {
        let ev = self.advance_clock(t);
        if ev.is_some() {
            // A released ack may immediately re-arm on a still-active sig.
            self.update(t);
        }
        ev
    }

    fn next_deadline(&self) -> Option<Time> {
        self.pending.map(|(at, _)| at)
    }
}

macro_rules! level_wait {
    ($(#[$doc:meta])* $name:ident, target = $target:expr, cancellable = $canc:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            core: WaitCore,
        }

        impl $name {
            /// Creates the element with the given decision delay and no
            /// metastability.
            pub fn new(delay: Time) -> Self {
                Self::with_meta(delay, MetaParams::disabled())
            }

            /// Creates the element with a metastability model.
            pub fn with_meta(delay: Time, meta: MetaParams) -> Self {
                $name {
                    core: WaitCore::new($target, $canc, delay, meta),
                }
            }

            /// Drives the non-persistent analog input.
            pub fn set_sig(&mut self, t: Time, v: bool) -> Option<AckEvent> {
                self.core.set_sig(t, v)
            }

            /// Drives the handshake request.
            pub fn set_req(&mut self, t: Time, v: bool) -> Option<AckEvent> {
                self.core.set_req(t, v)
            }

            /// The handshake acknowledge output.
            pub fn ack(&self) -> bool {
                self.core.ack
            }

            /// Applies a due output transition, if any.
            pub fn poll(&mut self, t: Time) -> Option<AckEvent> {
                self.core.poll(t)
            }

            /// The time of the next scheduled output change.
            pub fn next_deadline(&self) -> Option<Time> {
                self.core.next_deadline()
            }

            /// Number of input pulses filtered while deciding.
            pub fn filtered_pulses(&self) -> u64 {
                self.core.filtered
            }
        }
    };
}

level_wait!(
    /// WAIT: waits for the non-persistent input to become **high**, then
    /// latches it until the handshake is released (§III).
    ///
    /// Protocol: the controller raises `req`; once the input is high the
    /// element raises `ack` (the latch decision takes `delay`, plus a
    /// metastability tail for marginal pulses); lowering `req` releases
    /// `ack`. Input pulses shorter than the decision window are filtered
    /// and counted — the metastability is contained inside the element.
    Wait, target = true, cancellable = false
);

level_wait!(
    /// WAIT0: the symmetric element waiting for the input to become
    /// **low**.
    Wait0, target = false, cancellable = false
);

level_wait!(
    /// RWAIT: [`Wait`] with a persistent cancel input — used when the
    /// input is no longer expected to change (e.g. the ZC wait cancelled
    /// by a timeout) and the handshake must be released.
    RWait, target = true, cancellable = true
);

level_wait!(
    /// RWAIT0: [`Wait0`] with a persistent cancel input.
    RWait0, target = false, cancellable = true
);

impl RWait {
    /// Persistently cancels the wait: once cancelled, the element will
    /// not acknowledge until the request is released and re-issued. A
    /// latch decision already in flight still completes (the cancel
    /// arrived too late to win the race).
    pub fn cancel(&mut self, t: Time) -> Option<AckEvent> {
        self.core.set_cancel(t, true)
    }
}

impl RWait0 {
    /// Persistently cancels the wait (see [`RWait::cancel`]).
    pub fn cancel(&mut self, t: Time) -> Option<AckEvent> {
        self.core.set_cancel(t, true)
    }
}

/// WAIT2: a combination of [`Wait`] and [`Wait0`] — waits for the input
/// high in the request phase and for the input low in the release
/// phase, so one full handshake observes one full input cycle.
#[derive(Debug, Clone)]
pub struct Wait2 {
    high: WaitCore,
}

impl Wait2 {
    /// Creates the element with the given decision delay and no
    /// metastability.
    pub fn new(delay: Time) -> Self {
        Self::with_meta(delay, MetaParams::disabled())
    }

    /// Creates the element with a metastability model.
    pub fn with_meta(delay: Time, meta: MetaParams) -> Self {
        Wait2 {
            high: WaitCore::new(true, false, delay, meta),
        }
    }

    /// Drives the non-persistent analog input.
    pub fn set_sig(&mut self, t: Time, v: bool) -> Option<AckEvent> {
        let ev = self.high.set_sig(t, v);
        self.maybe_release(t).or(ev)
    }

    /// Drives the handshake request.
    pub fn set_req(&mut self, t: Time, v: bool) -> Option<AckEvent> {
        let ev = self.high.advance_clock(t);
        self.high.req = v;
        if v {
            self.high.update(t);
        } else {
            self.high.latched = false;
        }
        self.maybe_release(t).or(ev)
    }

    fn maybe_release(&mut self, t: Time) -> Option<AckEvent> {
        // Release phase: req low AND sig back low.
        if !self.high.req
            && !self.high.sig
            && (self.high.ack || matches!(self.high.pending, Some((_, true))))
            && !matches!(self.high.pending, Some((_, false)))
        {
            self.high.pending = Some((t + self.high.delay, false));
        }
        None
    }

    /// The handshake acknowledge output.
    pub fn ack(&self) -> bool {
        self.high.ack
    }

    /// Applies a due output transition, if any.
    pub fn poll(&mut self, t: Time) -> Option<AckEvent> {
        self.high.poll(t)
    }

    /// The time of the next scheduled output change.
    pub fn next_deadline(&self) -> Option<Time> {
        self.high.next_deadline()
    }
}

/// Which phase an edge-sensitive wait is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgePhase {
    Idle,
    NeedFirst,
    NeedSecond,
    Done,
}

/// Shared machinery of WAIT01 / WAIT10.
#[derive(Debug, Clone)]
struct EdgeCore {
    /// Value of the first observed level (the edge starts here).
    first_level: bool,
    delay: Time,
    sig: bool,
    req: bool,
    ack: bool,
    phase: EdgePhase,
    pending: Option<(Time, bool)>,
    meta: MetaState,
    last_t: Time,
}

impl EdgeCore {
    fn new(first_level: bool, delay: Time, meta: MetaParams) -> EdgeCore {
        EdgeCore {
            first_level,
            delay,
            sig: false,
            req: false,
            ack: false,
            phase: EdgePhase::Idle,
            pending: None,
            meta: meta.into_state(),
            last_t: Time::ZERO,
        }
    }

    fn flush(&mut self, t: Time) -> Option<AckEvent> {
        assert!(t >= self.last_t, "time went backwards");
        self.last_t = t;
        if let Some((at, value)) = self.pending {
            if at <= t {
                self.pending = None;
                self.ack = value;
                return Some(AckEvent { time: at, value });
            }
        }
        None
    }

    fn arm(&mut self, t: Time) {
        self.phase = if self.sig == self.first_level {
            EdgePhase::NeedSecond
        } else {
            EdgePhase::NeedFirst
        };
        self.step_phase(t);
    }

    fn step_phase(&mut self, t: Time) {
        match self.phase {
            EdgePhase::NeedFirst if self.sig == self.first_level => {
                self.phase = EdgePhase::NeedSecond;
            }
            EdgePhase::NeedSecond if self.sig != self.first_level => {
                self.phase = EdgePhase::Done;
                let extra = self.meta.resolution_delay();
                self.pending = Some((t + self.delay + extra, true));
            }
            _ => {}
        }
    }

    fn set_sig(&mut self, t: Time, v: bool) -> Option<AckEvent> {
        let ev = self.flush(t);
        self.sig = v;
        if self.req && self.phase != EdgePhase::Done {
            self.step_phase(t);
        }
        ev
    }

    fn set_req(&mut self, t: Time, v: bool) -> Option<AckEvent> {
        let ev = self.flush(t);
        self.req = v;
        if v {
            self.arm(t);
        } else {
            self.phase = EdgePhase::Idle;
            if self.ack || matches!(self.pending, Some((_, true))) {
                self.pending = Some((t + self.delay, false));
            }
        }
        ev
    }
}

macro_rules! edge_wait {
    ($(#[$doc:meta])* $name:ident, first = $first:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            core: EdgeCore,
        }

        impl $name {
            /// Creates the element with the given decision delay and no
            /// metastability.
            pub fn new(delay: Time) -> Self {
                Self::with_meta(delay, MetaParams::disabled())
            }

            /// Creates the element with a metastability model.
            pub fn with_meta(delay: Time, meta: MetaParams) -> Self {
                $name {
                    core: EdgeCore::new($first, delay, meta),
                }
            }

            /// Drives the non-persistent analog input.
            pub fn set_sig(&mut self, t: Time, v: bool) -> Option<AckEvent> {
                self.core.set_sig(t, v)
            }

            /// Drives the handshake request.
            pub fn set_req(&mut self, t: Time, v: bool) -> Option<AckEvent> {
                self.core.set_req(t, v)
            }

            /// The handshake acknowledge output.
            pub fn ack(&self) -> bool {
                self.core.ack
            }

            /// Applies a due output transition, if any.
            pub fn poll(&mut self, t: Time) -> Option<AckEvent> {
                self.core.flush(t)
            }

            /// The time of the next scheduled output change.
            pub fn next_deadline(&self) -> Option<Time> {
                self.core.pending.map(|(at, _)| at)
            }
        }
    };
}

edge_wait!(
    /// WAIT01: waits for a **rising edge** of the input. Subtly
    /// different from [`Wait`]: a signal that is already high must first
    /// go low before a new rising edge counts (§III).
    Wait01, first = false
);

edge_wait!(
    /// WAIT10: waits for a **falling edge** of the input.
    Wait10, first = true
);

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    #[test]
    fn wait_basic_handshake() {
        let mut w = Wait::new(ns(0.1));
        assert_eq!(w.set_req(ns(1.0), true), None);
        assert!(!w.ack());
        w.set_sig(ns(2.0), true);
        assert_eq!(w.next_deadline(), Some(ns(2.1)));
        let ev = w.poll(ns(2.1)).unwrap();
        assert_eq!(ev, AckEvent { time: ns(2.1), value: true });
        assert!(w.ack());
        // Input retracts after latching: contained, ack stays.
        w.set_sig(ns(3.0), false);
        assert!(w.ack());
        // Release.
        w.set_req(ns(4.0), false);
        let ev = w.poll(ns(4.1)).unwrap();
        assert!(!ev.value);
        assert!(!w.ack());
    }

    #[test]
    fn wait_sig_before_req() {
        let mut w = Wait::new(ns(0.1));
        w.set_sig(ns(1.0), true);
        assert_eq!(w.next_deadline(), None, "not armed yet");
        w.set_req(ns(2.0), true);
        assert_eq!(w.next_deadline(), Some(ns(2.1)));
    }

    #[test]
    fn wait_filters_short_pulse() {
        let mut w = Wait::new(ns(1.0));
        w.set_req(ns(0.0), true);
        w.set_sig(ns(1.0), true);
        w.set_sig(ns(1.5), false); // retracted before the 2.0 decision
        assert_eq!(w.next_deadline(), None);
        assert_eq!(w.filtered_pulses(), 1);
        assert!(!w.ack());
        // A proper pulse still gets through afterwards.
        w.set_sig(ns(3.0), true);
        assert!(w.poll(ns(4.0)).is_some());
    }

    #[test]
    fn wait0_waits_for_low() {
        let mut w = Wait0::new(ns(0.1));
        w.set_sig(ns(0.5), true);
        w.set_req(ns(1.0), true);
        assert_eq!(w.next_deadline(), None, "sig is high");
        w.set_sig(ns(2.0), false);
        let ev = w.poll(ns(2.2)).unwrap();
        assert!(ev.value);
    }

    #[test]
    fn rwait_cancel_blocks_latch() {
        let mut w = RWait::new(ns(0.1));
        w.set_req(ns(1.0), true);
        w.cancel(ns(2.0));
        w.set_sig(ns(3.0), true);
        assert_eq!(w.next_deadline(), None, "cancelled");
        assert!(!w.ack());
        // Release and re-arm: works again.
        w.set_req(ns(4.0), false);
        w.set_req(ns(5.0), true);
        assert!(w.poll(ns(5.2)).is_some(), "sig still high, latches now");
    }

    #[test]
    fn rwait_cancel_too_late_races() {
        let mut w = RWait::new(ns(1.0));
        w.set_req(ns(0.0), true);
        w.set_sig(ns(1.0), true); // decision due at 2.0
        w.cancel(ns(1.5)); // too late: latch in flight
        assert!(w.poll(ns(2.0)).is_some());
        assert!(w.ack());
    }

    #[test]
    fn wait2_full_cycle() {
        let mut w = Wait2::new(ns(0.1));
        w.set_req(ns(1.0), true);
        w.set_sig(ns(2.0), true);
        assert!(w.poll(ns(2.1)).unwrap().value);
        // Releasing the request alone does not drop ack: waits for low.
        w.set_req(ns(3.0), false);
        assert_eq!(w.next_deadline(), None);
        assert!(w.ack());
        w.set_sig(ns(4.0), false);
        let ev = w.poll(ns(4.1)).unwrap();
        assert!(!ev.value);
    }

    #[test]
    fn wait01_needs_a_real_edge() {
        let mut w = Wait01::new(ns(0.1));
        // Signal already high when armed: no ack until low then high.
        w.set_sig(ns(0.5), true);
        w.set_req(ns(1.0), true);
        assert_eq!(w.next_deadline(), None);
        w.set_sig(ns(2.0), false);
        assert_eq!(w.next_deadline(), None);
        w.set_sig(ns(3.0), true);
        assert!(w.poll(ns(3.1)).unwrap().value);
    }

    #[test]
    fn wait01_low_at_arm_needs_only_rise() {
        let mut w = Wait01::new(ns(0.1));
        w.set_req(ns(1.0), true);
        w.set_sig(ns(2.0), true);
        assert!(w.poll(ns(2.1)).unwrap().value);
    }

    #[test]
    fn wait10_waits_for_fall() {
        let mut w = Wait10::new(ns(0.1));
        w.set_req(ns(1.0), true);
        w.set_sig(ns(2.0), true);
        assert_eq!(w.next_deadline(), None, "rise is not a fall");
        w.set_sig(ns(3.0), false);
        assert!(w.poll(ns(3.1)).unwrap().value);
    }

    #[test]
    fn re_arm_immediately_after_release() {
        let mut w = Wait::new(ns(0.1));
        w.set_req(ns(1.0), true);
        w.set_sig(ns(1.5), true);
        w.poll(ns(1.6));
        w.set_req(ns(2.0), false);
        w.poll(ns(2.1));
        // Sig still high; re-request latches straight away.
        w.set_req(ns(3.0), true);
        let ev = w.poll(ns(3.1)).unwrap();
        assert!(ev.value);
    }

    #[test]
    fn rwait0_cancel_blocks_low_latch() {
        let mut w = RWait0::new(ns(0.1));
        w.set_sig(ns(0.5), true); // condition currently high
        w.set_req(ns(1.0), true);
        w.cancel(ns(2.0));
        w.set_sig(ns(3.0), false); // goes low after the cancel
        assert_eq!(w.next_deadline(), None, "cancelled");
        w.set_req(ns(4.0), false);
        w.set_req(ns(5.0), true);
        assert!(w.poll(ns(5.2)).is_some(), "re-armed, sig is low");
    }

    #[test]
    fn wait10_ignores_low_level_without_edge() {
        // Signal already low when armed: WAIT10 needs high-then-low.
        let mut w = Wait10::new(ns(0.1));
        w.set_req(ns(1.0), true);
        assert_eq!(w.next_deadline(), None, "no falling edge yet");
        w.set_sig(ns(2.0), true);
        w.set_sig(ns(3.0), false);
        assert!(w.poll(ns(3.2)).unwrap().value);
    }

    #[test]
    fn metastability_extends_decision() {
        let meta = MetaParams::with_seed(1.0, Time::from_ns(5.0), 11);
        let mut w = Wait::with_meta(ns(0.1), meta);
        w.set_req(ns(1.0), true);
        w.set_sig(ns(2.0), true);
        let deadline = w.next_deadline().unwrap();
        assert!(deadline > ns(2.1), "tail added: {deadline}");
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn non_monotone_time_rejected() {
        let mut w = Wait::new(ns(0.1));
        w.set_req(ns(2.0), true);
        w.set_sig(ns(1.0), true);
    }
}
