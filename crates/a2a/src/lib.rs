//! The A2A (analog-to-asynchronous) interface library — §III of the
//! paper.
//!
//! Analog comparator outputs are *non-persistent*: they can glitch,
//! chatter near a threshold, or retract just as the digital side samples
//! them. A2A elements sit between those signals and the
//! speed-independent controller, containing the resulting metastability
//! and exporting clean handshakes:
//!
//! | element | behaviour |
//! |---------|-----------|
//! | [`Wait`] | wait for the input to be high, latch it, release via handshake |
//! | [`Wait0`] | dual: wait for low |
//! | [`Wait2`] | wait for high then low, one per handshake phase |
//! | [`RWait`] / [`RWait0`] | [`Wait`]/[`Wait0`] with a persistent cancel |
//! | [`Wait01`] / [`Wait10`] | wait for a rising / falling *edge* |
//! | [`WaitX`] | arbitrate which of two inputs goes high first (dual-rail grant) |
//! | [`WaitX2`] | [`WaitX`] that holds its grant until the winner goes low |
//!
//! All elements are deterministic discrete-time models with a
//! configurable decision delay and an optional seeded stochastic
//! metastability tail ([`MetaParams`]) — short input pulses are filtered
//! (and counted), exactly the hazard the elements exist to contain.
//!
//! The matching STG specifications live in [`spec`] and are verified
//! consistent, deadlock-free and output-persistent by this crate's
//! tests; [`HandshakeMonitor`] checks 4-phase protocol compliance of
//! event traces at run time.
//!
//! # Examples
//!
//! ```
//! use a4a_a2a::Wait;
//! use a4a_sim::Time;
//!
//! let mut w = Wait::new(Time::from_ps(80.0));
//! w.set_req(Time::ZERO, true);               // controller arms the wait
//! w.set_sig(Time::from_ns(5.0), true);       // comparator fires
//! let ev = w.poll(Time::from_ns(6.0)).expect("latched");
//! assert!(ev.value);                          // ack is now high
//! assert!(w.ack());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod meta;
mod monitor;
pub mod spec;
mod wait;
mod waitx;

pub use meta::{MetaParams, MetaState};
pub use monitor::{HandshakeMonitor, ProtocolError};
pub use wait::{AckEvent, RWait, RWait0, Wait, Wait0, Wait01, Wait10, Wait2};
pub use waitx::{GrantEvent, WaitX, WaitX2};
