//! STG specifications of the A2A elements.
//!
//! These are the formal counterparts of the behavioural models in this
//! crate, written against an *idealised* environment: the non-persistent
//! input is represented as an ordinary input signal whose edges the
//! environment produces at protocol-legal moments. The element
//! implementations exist precisely to make the real, non-idealised
//! analog signals look like this to the controller.
//!
//! Each spec is consistent, deadlock-free, and output-persistent (see
//! the tests), and synthesisable with `a4a-synth` (exercised by the
//! workspace integration tests).

use a4a_stg::{Stg, StgBuilder};

/// STG of the WAIT element: `ri+ → sig+ → ao+ → ri- → ao-`, with the
/// input free to fall any time after the latch.
pub fn wait_stg() -> Stg {
    let mut b = StgBuilder::new("wait");
    let sig = b.input("sig", false);
    let ri = b.input("ri", false);
    let ao = b.output("ao", false);
    let rip = b.rise(ri);
    let sigp = b.rise(sig);
    let aop = b.rise(ao);
    let rim = b.fall(ri);
    let aom = b.fall(ao);
    let sigm = b.fall(sig);
    b.connect_marked(aom, rip);
    b.connect(rip, sigp);
    b.connect(sigp, aop);
    b.connect(aop, rim);
    b.connect(rim, aom);
    // The non-persistent input falls after the latch and is released
    // before the next request (the idealised environment re-arms only
    // once the condition cleared).
    b.connect(aop, sigm);
    b.connect_marked(sigm, rip);
    b.build()
}

/// STG of the WAIT0 element (waits for the input **low**; the input is
/// initially high).
pub fn wait0_stg() -> Stg {
    let mut b = StgBuilder::new("wait0");
    let sig = b.input("sig", true);
    let ri = b.input("ri", false);
    let ao = b.output("ao", false);
    let rip = b.rise(ri);
    let sigm = b.fall(sig);
    let aop = b.rise(ao);
    let rim = b.fall(ri);
    let aom = b.fall(ao);
    let sigp = b.rise(sig);
    b.connect_marked(aom, rip);
    b.connect(rip, sigm);
    b.connect(sigm, aop);
    b.connect(aop, rim);
    b.connect(rim, aom);
    b.connect(aop, sigp);
    b.connect_marked(sigp, rip);
    b.build()
}

/// STG of the WAIT2 element: one full handshake observes one full input
/// cycle (`sig+` before `ao+`, `sig-` before `ao-`).
pub fn wait2_stg() -> Stg {
    let mut b = StgBuilder::new("wait2");
    let sig = b.input("sig", false);
    let ri = b.input("ri", false);
    let ao = b.output("ao", false);
    let rip = b.rise(ri);
    let sigp = b.rise(sig);
    let aop = b.rise(ao);
    let rim = b.fall(ri);
    let sigm = b.fall(sig);
    let aom = b.fall(ao);
    b.connect_marked(aom, rip);
    b.connect(rip, sigp);
    b.connect(sigp, aop);
    b.connect(aop, rim);
    b.connect(rim, sigm);
    b.connect(sigm, aom);
    b.build()
}

/// STG of the RWAIT element: after `ri+` the environment either produces
/// the input (`sig+ → ao+ → ri- → ao-`) or cancels the wait
/// (`kill+ → ri- → kill-`), releasing the handshake without an
/// acknowledge.
pub fn rwait_stg() -> Stg {
    let mut b = StgBuilder::new("rwait");
    let sig = b.input("sig", false);
    let kill = b.input("kill", false);
    let ri = b.input("ri", false);
    let ao = b.output("ao", false);

    let rip = b.rise(ri);
    let sigp = b.rise(sig);
    let aop = b.rise(ao);
    let rim = b.fall(ri);
    let aom = b.fall(ao);
    let sigm = b.fall(sig);
    let killp = b.rise(kill);
    let rim2 = b.fall(ri);
    let killm = b.fall(kill);

    // Entry and free-choice between the signal and the cancel.
    let choice = b.place("choice");
    b.arc_tp(rip, choice);
    b.arc_pt(choice, sigp);
    b.arc_pt(choice, killp);
    // Acknowledged path: the input also clears before the next request.
    b.connect(sigp, aop);
    b.connect(aop, rim);
    b.connect(rim, aom);
    b.connect(aop, sigm);
    let sig_clear = b.place_with_tokens("sig_clear", 1);
    b.arc_tp(sigm, sig_clear);
    b.arc_pt(sig_clear, rip);
    // Cancelled path (no ack; sig never rose, so nothing to clear).
    b.connect(killp, rim2);
    b.connect(rim2, killm);
    b.arc_tp(killm, sig_clear);
    // Merge back to the entry.
    let done = b.place_with_tokens("done", 1);
    b.arc_tp(aom, done);
    b.arc_tp(killm, done);
    b.arc_pt(done, rip);
    b.build()
}

/// STG of the WAIT01 element with the input initially low — in that case
/// the edge wait coincides with the level wait, so the protocol equals
/// [`wait_stg`] (the behavioural difference appears only when the input
/// is high at arming, which the idealised environment excludes).
pub fn wait01_stg() -> Stg {
    let mut stg = wait_stg();
    stg = Stg::parse_g(&stg.to_g().replace(".model wait", ".model wait01"))
        .expect("round trip of a known-good spec");
    stg
}

/// STG of the WAIT10 element with the input initially high — the edge
/// wait coincides with the level wait for low, so the protocol equals
/// [`wait0_stg`].
pub fn wait10_stg() -> Stg {
    Stg::parse_g(&wait0_stg().to_g().replace(".model wait0", ".model wait10"))
        .expect("round trip of a known-good spec")
}

/// STG of the RWAIT0 element: [`rwait_stg`]'s protocol with the input
/// polarity flipped (waits for low; cancel releases the handshake).
pub fn rwait0_stg() -> Stg {
    let mut b = StgBuilder::new("rwait0");
    let sig = b.input("sig", true);
    let kill = b.input("kill", false);
    let ri = b.input("ri", false);
    let ao = b.output("ao", false);

    let rip = b.rise(ri);
    let sigm = b.fall(sig);
    let aop = b.rise(ao);
    let rim = b.fall(ri);
    let aom = b.fall(ao);
    let sigp = b.rise(sig);
    let killp = b.rise(kill);
    let rim2 = b.fall(ri);
    let killm = b.fall(kill);

    let choice = b.place("choice");
    b.arc_tp(rip, choice);
    b.arc_pt(choice, sigm);
    b.arc_pt(choice, killp);
    // Acknowledged path: the input returns high before the next request.
    b.connect(sigm, aop);
    b.connect(aop, rim);
    b.connect(rim, aom);
    b.connect(aop, sigp);
    let sig_clear = b.place_with_tokens("sig_clear", 1);
    b.arc_tp(sigp, sig_clear);
    b.arc_pt(sig_clear, rip);
    // Cancelled path.
    b.connect(killp, rim2);
    b.connect(rim2, killm);
    b.arc_tp(killm, sig_clear);
    let done = b.place_with_tokens("done", 1);
    b.arc_tp(aom, done);
    b.arc_tp(killm, done);
    b.arc_pt(done, rip);
    b.build()
}

/// STG of the WAITX element: after `ri+` the environment raises one of
/// the two inputs; the element answers on the matching dual-rail grant.
pub fn waitx_stg() -> Stg {
    let mut b = StgBuilder::new("waitx");
    let sig1 = b.input("sig1", false);
    let sig2 = b.input("sig2", false);
    let ri = b.input("ri", false);
    let g1 = b.output("g1", false);
    let g2 = b.output("g2", false);

    let rip = b.rise(ri);
    let s1p = b.rise(sig1);
    let g1p = b.rise(g1);
    let rim1 = b.fall(ri);
    let g1m = b.fall(g1);
    let s1m = b.fall(sig1);
    let s2p = b.rise(sig2);
    let g2p = b.rise(g2);
    let rim2 = b.fall(ri);
    let g2m = b.fall(g2);
    let s2m = b.fall(sig2);

    let choice = b.place("choice");
    b.arc_tp(rip, choice);
    b.arc_pt(choice, s1p);
    b.arc_pt(choice, s2p);
    // Winner 1: grant, release, and the input clears before re-request.
    b.connect(s1p, g1p);
    b.connect(g1p, rim1);
    b.connect(rim1, g1m);
    b.connect(g1p, s1m);
    // Winner 2.
    b.connect(s2p, g2p);
    b.connect(g2p, rim2);
    b.connect(rim2, g2m);
    b.connect(g2p, s2m);
    // Merge: the next request needs the handshake closed and the
    // winner's input cleared.
    let done = b.place_with_tokens("done", 1);
    b.arc_tp(g1m, done);
    b.arc_tp(g2m, done);
    b.arc_pt(done, rip);
    let clear = b.place_with_tokens("clear", 1);
    b.arc_tp(s1m, clear);
    b.arc_tp(s2m, clear);
    b.arc_pt(clear, rip);
    b.build()
}

/// Every element spec in this module, with its name.
pub fn all_specs() -> Vec<(&'static str, Stg)> {
    vec![
        ("wait", wait_stg()),
        ("wait0", wait0_stg()),
        ("wait2", wait2_stg()),
        ("rwait", rwait_stg()),
        ("wait01", wait01_stg()),
        ("wait10", wait10_stg()),
        ("rwait0", rwait0_stg()),
        ("waitx", waitx_stg()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_clean() {
        for (name, stg) in all_specs() {
            let sg = stg
                .state_graph(100_000)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let report = stg.verify(&sg);
            assert!(
                report.is_clean(),
                "{name} spec not clean:\n{}",
                report.summary()
            );
            assert!(report.deadlocks.is_empty(), "{name} deadlocks");
        }
    }

    #[test]
    fn wait_state_count() {
        let stg = wait_stg();
        let sg = stg.state_graph(1000).unwrap();
        // ri/ao handshake (4 phases) with the sig cycle interleaved.
        assert!(sg.state_count() >= 6, "got {}", sg.state_count());
    }

    #[test]
    fn rwait_has_two_completion_paths() {
        let stg = rwait_stg();
        let sg = stg.state_graph(1000).unwrap();
        let kill = stg.signal_by_name("kill").unwrap();
        let ao = stg.signal_by_name("ao").unwrap();
        // There are reachable states with kill high and others with ao
        // high, but never both.
        let mut saw_kill = false;
        let mut saw_ao = false;
        for s in sg.state_ids() {
            let code = sg.code(s);
            let k = code & kill.mask() != 0;
            let a = code & ao.mask() != 0;
            saw_kill |= k;
            saw_ao |= a;
            assert!(!(k && a), "cancel and ack are exclusive");
        }
        assert!(saw_kill && saw_ao);
    }

    #[test]
    fn waitx_grants_are_mutually_exclusive() {
        let stg = waitx_stg();
        let sg = stg.state_graph(1000).unwrap();
        let g1 = stg.signal_by_name("g1").unwrap();
        let g2 = stg.signal_by_name("g2").unwrap();
        assert!(stg.check_mutual_exclusion(&sg, g1, g2).is_empty());
    }

    #[test]
    fn wait01_round_trips() {
        let stg = wait01_stg();
        assert_eq!(stg.name(), "wait01");
        assert!(stg.verify(&stg.state_graph(1000).unwrap()).is_clean());
    }
}
