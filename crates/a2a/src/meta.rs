use a4a_sim::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stochastic metastability model for A2A elements and synchronisers.
///
/// When a latch decision races with its input, resolution time follows an
/// exponential tail. `probability` is the chance that a given marginal
/// decision goes metastable at all; `tau` is the tail's time constant.
/// The default disables the model (fully deterministic elements); the
/// ablation benches enable it with a fixed seed, so runs stay
/// reproducible.
///
/// # Examples
///
/// ```
/// use a4a_a2a::MetaParams;
/// use a4a_sim::Time;
///
/// let mut m = MetaParams::with_seed(0.5, Time::from_ps(50.0), 42).into_state();
/// let extra = m.resolution_delay();
/// // Either resolved instantly or took an exponential tail.
/// assert!(extra == Time::ZERO || extra > Time::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MetaParams {
    /// Probability that a marginal decision goes metastable.
    pub probability: f64,
    /// Exponential tail time constant.
    pub tau: Time,
    /// RNG seed (model is deterministic per seed).
    pub seed: u64,
}

impl MetaParams {
    /// A disabled model: decisions always resolve in zero extra time.
    pub fn disabled() -> MetaParams {
        MetaParams {
            probability: 0.0,
            tau: Time::ZERO,
            seed: 0,
        }
    }

    /// An enabled model with the given parameters.
    pub fn with_seed(probability: f64, tau: Time, seed: u64) -> MetaParams {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        MetaParams {
            probability,
            tau,
            seed,
        }
    }

    /// Instantiates the runtime state (owning the seeded RNG).
    pub fn into_state(self) -> MetaState {
        MetaState {
            rng: StdRng::seed_from_u64(self.seed),
            params: self,
        }
    }
}

impl Default for MetaParams {
    fn default() -> Self {
        MetaParams::disabled()
    }
}

/// Runtime state of the metastability model.
#[derive(Debug, Clone)]
pub struct MetaState {
    params: MetaParams,
    rng: StdRng,
}

impl MetaState {
    /// Extra resolution delay for one marginal decision: zero when the
    /// decision resolves cleanly, an exponential sample otherwise.
    pub fn resolution_delay(&mut self) -> Time {
        if self.params.probability <= 0.0 {
            return Time::ZERO;
        }
        if self.rng.gen::<f64>() >= self.params.probability {
            return Time::ZERO;
        }
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        let factor = -u.ln();
        Time::from_secs(self.params.tau.as_secs() * factor)
    }

    /// The configured parameters.
    pub fn params(&self) -> &MetaParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_model_is_zero() {
        let mut m = MetaParams::disabled().into_state();
        for _ in 0..100 {
            assert_eq!(m.resolution_delay(), Time::ZERO);
        }
    }

    #[test]
    fn enabled_model_produces_tails() {
        let mut m = MetaParams::with_seed(1.0, Time::from_ps(100.0), 7).into_state();
        let delays: Vec<Time> = (0..100).map(|_| m.resolution_delay()).collect();
        assert!(delays.iter().any(|&d| d > Time::ZERO));
        // Mean of an exponential with tau=100ps is ~100ps.
        let mean_ps: f64 =
            delays.iter().map(|d| d.as_ns() * 1e3).sum::<f64>() / delays.len() as f64;
        assert!(mean_ps > 30.0 && mean_ps < 300.0, "mean {mean_ps}ps");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Time> {
            let mut m = MetaParams::with_seed(0.5, Time::from_ps(50.0), seed).into_state();
            (0..50).map(|_| m.resolution_delay()).collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let _ = MetaParams::with_seed(1.5, Time::ZERO, 0);
    }
}
