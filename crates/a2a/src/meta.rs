use a4a_rt::Rng;
use a4a_sim::Time;

/// Stochastic metastability model for A2A elements and synchronisers.
///
/// When a latch decision races with its input, resolution time follows an
/// exponential tail. `probability` is the chance that a given marginal
/// decision goes metastable at all; `tau` is the tail's time constant.
/// The default disables the model (fully deterministic elements); the
/// ablation benches enable it with a fixed seed, so runs stay
/// reproducible.
///
/// # Examples
///
/// ```
/// use a4a_a2a::MetaParams;
/// use a4a_sim::Time;
///
/// let mut m = MetaParams::with_seed(0.5, Time::from_ps(50.0), 42).into_state();
/// let extra = m.resolution_delay();
/// // Either resolved instantly or took an exponential tail.
/// assert!(extra == Time::ZERO || extra > Time::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MetaParams {
    /// Probability that a marginal decision goes metastable.
    pub probability: f64,
    /// Exponential tail time constant.
    pub tau: Time,
    /// RNG seed (model is deterministic per seed).
    pub seed: u64,
}

impl MetaParams {
    /// A disabled model: decisions always resolve in zero extra time.
    pub fn disabled() -> MetaParams {
        MetaParams {
            probability: 0.0,
            tau: Time::ZERO,
            seed: 0,
        }
    }

    /// An enabled model with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics when `probability` is NaN or outside `[0, 1]`; see
    /// [`MetaParams::try_with_seed`] for the fallible variant.
    pub fn with_seed(probability: f64, tau: Time, seed: u64) -> MetaParams {
        match Self::try_with_seed(probability, tau, seed) {
            Ok(p) => p,
            Err(e) => panic!("{e} (probability must be in [0, 1])"),
        }
    }

    /// Fallible [`MetaParams::with_seed`]: a NaN or out-of-range
    /// probability is reported as
    /// [`SimError::InvalidParameter`](a4a_sim::SimError::InvalidParameter).
    pub fn try_with_seed(
        probability: f64,
        tau: Time,
        seed: u64,
    ) -> Result<MetaParams, a4a_sim::SimError> {
        if !(0.0..=1.0).contains(&probability) {
            return Err(a4a_sim::SimError::InvalidParameter {
                what: "metastability probability",
                value: probability,
            });
        }
        Ok(MetaParams {
            probability,
            tau,
            seed,
        })
    }

    /// Instantiates the runtime state (owning the seeded RNG).
    pub fn into_state(self) -> MetaState {
        MetaState {
            rng: Rng::from_seed(self.seed),
            params: self,
        }
    }
}

impl Default for MetaParams {
    fn default() -> Self {
        MetaParams::disabled()
    }
}

/// Runtime state of the metastability model.
///
/// The delay stream is a pure function of the seed: `a4a_rt::Rng` is
/// golden-pinned (see this module's tests and `crates/rt`), so ablation
/// runs replay bit-identically on every platform and across releases —
/// unlike the previous `rand::StdRng`, whose stream is only stable
/// within one `rand` major version.
#[derive(Debug, Clone)]
pub struct MetaState {
    params: MetaParams,
    rng: Rng,
}

impl MetaState {
    /// Extra resolution delay for one marginal decision: zero when the
    /// decision resolves cleanly, an exponential sample otherwise.
    pub fn resolution_delay(&mut self) -> Time {
        if self.params.probability <= 0.0 {
            return Time::ZERO;
        }
        if self.rng.next_f64() >= self.params.probability {
            return Time::ZERO;
        }
        let factor = self.rng.exponential(1.0);
        Time::from_secs(self.params.tau.as_secs() * factor)
    }

    /// The configured parameters.
    pub fn params(&self) -> &MetaParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_with_seed_rejects_nan_and_out_of_range() {
        use a4a_sim::SimError;
        for bad in [f64::NAN, -0.1, 1.1, f64::INFINITY] {
            assert!(
                matches!(
                    MetaParams::try_with_seed(bad, Time::from_ps(50.0), 1),
                    Err(SimError::InvalidParameter {
                        what: "metastability probability",
                        ..
                    })
                ),
                "{bad} accepted"
            );
        }
        let p = MetaParams::try_with_seed(0.5, Time::from_ps(50.0), 7).unwrap();
        assert_eq!(p, MetaParams::with_seed(0.5, Time::from_ps(50.0), 7));
    }

    #[test]
    fn disabled_model_is_zero() {
        let mut m = MetaParams::disabled().into_state();
        for _ in 0..100 {
            assert_eq!(m.resolution_delay(), Time::ZERO);
        }
    }

    #[test]
    fn enabled_model_produces_tails() {
        let mut m = MetaParams::with_seed(1.0, Time::from_ps(100.0), 7).into_state();
        let delays: Vec<Time> = (0..100).map(|_| m.resolution_delay()).collect();
        assert!(delays.iter().any(|&d| d > Time::ZERO));
        // Mean of an exponential with tau=100ps is ~100ps.
        let mean_ps: f64 =
            delays.iter().map(|d| d.as_ns() * 1e3).sum::<f64>() / delays.len() as f64;
        assert!(mean_ps > 30.0 && mean_ps < 300.0, "mean {mean_ps}ps");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Time> {
            let mut m = MetaParams::with_seed(0.5, Time::from_ps(50.0), seed).into_state();
            (0..50).map(|_| m.resolution_delay()).collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_rejected() {
        let _ = MetaParams::with_seed(1.5, Time::ZERO, 0);
    }

    /// Golden delay sequence: pins the exact metastability stream (in
    /// femtoseconds) for a reference seed, so ablation results replay
    /// bit-identically on every platform and across future PRs. If this
    /// test breaks, the PRNG stream changed — that invalidates recorded
    /// experiments; fix the code, never the vector.
    #[test]
    fn resolution_delay_stream_is_pinned() {
        let mut m = MetaParams::with_seed(0.5, Time::from_ps(50.0), 0xA4A).into_state();
        let got: Vec<u64> = (0..12).map(|_| m.resolution_delay().as_fs()).collect();
        assert_eq!(
            got,
            [12343, 0, 0, 47404, 46989, 0, 14105, 23502, 4636, 34421, 148849, 4883]
        );
    }

    /// Repeated runs (and cloned states) replay the identical delay
    /// sequence for a fixed `MetaParams` seed.
    #[test]
    fn resolution_delay_replays_identically() {
        let run = || -> Vec<Time> {
            let mut m = MetaParams::with_seed(0.3, Time::from_ps(80.0), 2017).into_state();
            (0..200).map(|_| m.resolution_delay()).collect()
        };
        let first = run();
        for _ in 0..5 {
            assert_eq!(first, run());
        }
        let mut a = MetaParams::with_seed(0.3, Time::from_ps(80.0), 2017).into_state();
        let mut b = a.clone();
        let xs: Vec<Time> = (0..100).map(|_| a.resolution_delay()).collect();
        let ys: Vec<Time> = (0..100).map(|_| b.resolution_delay()).collect();
        assert_eq!(xs, ys, "cloned state must continue the same stream");
    }
}
