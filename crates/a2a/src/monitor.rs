use std::error::Error;
use std::fmt;

use a4a_sim::Time;

/// Violation of the 4-phase handshake protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// When the violating event happened.
    pub time: Time,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "handshake protocol violated at {}: {}", self.time, self.message)
    }
}

impl Error for ProtocolError {}

/// Runtime checker for 4-phase request/acknowledge handshakes.
///
/// Feed it every observed edge of one `req`/`ack` pair; it enforces the
/// cyclic order `req+ ack+ req- ack-` and monotone timestamps. Used by
/// the controller tests to assert that A2A elements and sub-module
/// interfaces stay protocol-clean during mixed-signal runs.
///
/// # Examples
///
/// ```
/// use a4a_a2a::HandshakeMonitor;
/// use a4a_sim::Time;
///
/// let mut m = HandshakeMonitor::new("ctrl.zc");
/// m.req(Time::from_ns(1.0), true)?;
/// m.ack(Time::from_ns(2.0), true)?;
/// m.req(Time::from_ns(3.0), false)?;
/// m.ack(Time::from_ns(4.0), false)?;
/// assert_eq!(m.cycles(), 1);
/// # Ok::<(), a4a_a2a::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HandshakeMonitor {
    name: String,
    req: bool,
    ack: bool,
    cycles: u64,
    last_t: Time,
}

impl HandshakeMonitor {
    /// Creates a monitor for a named channel (the name appears in
    /// violation messages).
    pub fn new(name: impl Into<String>) -> Self {
        HandshakeMonitor {
            name: name.into(),
            req: false,
            ack: false,
            cycles: 0,
            last_t: Time::ZERO,
        }
    }

    /// Completed handshake cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Current request level.
    pub fn req_level(&self) -> bool {
        self.req
    }

    /// Current acknowledge level.
    pub fn ack_level(&self) -> bool {
        self.ack
    }

    fn check_time(&mut self, t: Time) -> Result<(), ProtocolError> {
        if t < self.last_t {
            return Err(ProtocolError {
                time: t,
                message: format!("{}: time went backwards", self.name),
            });
        }
        self.last_t = t;
        Ok(())
    }

    /// Observes a request edge.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when the edge violates the 4-phase
    /// order (e.g. `req-` before `ack+`, or a repeated level).
    pub fn req(&mut self, t: Time, value: bool) -> Result<(), ProtocolError> {
        self.check_time(t)?;
        if self.req == value {
            return Err(ProtocolError {
                time: t,
                message: format!("{}: req repeated level {value}", self.name),
            });
        }
        let legal = if value {
            !self.req && !self.ack
        } else {
            self.req && self.ack
        };
        if !legal {
            return Err(ProtocolError {
                time: t,
                message: format!(
                    "{}: req{} out of order (req={}, ack={})",
                    self.name,
                    if value { "+" } else { "-" },
                    self.req,
                    self.ack
                ),
            });
        }
        self.req = value;
        Ok(())
    }

    /// Observes an acknowledge edge.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] when the edge violates the 4-phase
    /// order (e.g. `ack+` without a pending `req+`).
    pub fn ack(&mut self, t: Time, value: bool) -> Result<(), ProtocolError> {
        self.check_time(t)?;
        if self.ack == value {
            return Err(ProtocolError {
                time: t,
                message: format!("{}: ack repeated level {value}", self.name),
            });
        }
        // ack may only follow req to the same level.
        if value != self.req {
            return Err(ProtocolError {
                time: t,
                message: format!(
                    "{}: ack{} out of order (req={}, ack={})",
                    self.name,
                    if value { "+" } else { "-" },
                    self.req,
                    self.ack
                ),
            });
        }
        self.ack = value;
        if !value {
            self.cycles += 1;
        }
        Ok(())
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> Time {
        Time::from_ns(x)
    }

    #[test]
    fn clean_cycles_count() {
        let mut m = HandshakeMonitor::new("ch");
        for k in 0..3 {
            let base = k as f64 * 10.0;
            m.req(t(base + 1.0), true).unwrap();
            m.ack(t(base + 2.0), true).unwrap();
            m.req(t(base + 3.0), false).unwrap();
            m.ack(t(base + 4.0), false).unwrap();
        }
        assert_eq!(m.cycles(), 3);
    }

    #[test]
    fn early_req_release_rejected() {
        let mut m = HandshakeMonitor::new("ch");
        m.req(t(1.0), true).unwrap();
        let err = m.req(t(2.0), false).unwrap_err();
        assert!(err.to_string().contains("out of order"));
    }

    #[test]
    fn spurious_ack_rejected() {
        let mut m = HandshakeMonitor::new("ch");
        let err = m.ack(t(1.0), true).unwrap_err();
        assert!(err.to_string().contains("out of order"));
    }

    #[test]
    fn repeated_level_rejected() {
        let mut m = HandshakeMonitor::new("ch");
        m.req(t(1.0), true).unwrap();
        let err = m.req(t(2.0), true).unwrap_err();
        assert!(err.to_string().contains("repeated"));
    }

    #[test]
    fn backwards_time_rejected() {
        let mut m = HandshakeMonitor::new("ch");
        m.req(t(5.0), true).unwrap();
        let err = m.ack(t(1.0), true).unwrap_err();
        assert!(err.to_string().contains("backwards"));
    }

    #[test]
    fn levels_exposed() {
        let mut m = HandshakeMonitor::new("ch");
        m.req(t(1.0), true).unwrap();
        assert!(m.req_level());
        assert!(!m.ack_level());
    }
}
