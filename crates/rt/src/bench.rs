//! A lightweight wall-clock benchmark timer replacing `criterion`.
//!
//! Each benchmark runs a warmup, then N timed samples, and reports the
//! median (plus min/max/mean) as one JSON line on stdout — easy to
//! append to the repo's `BENCH_*.json` perf-trajectory files:
//!
//! ```text
//! {"name":"minimize/8var","median_ns":412337,"min_ns":...,"samples":11}
//! ```
//!
//! Medians over a modest sample count are robust to scheduler noise
//! without criterion's statistical machinery; the goal here is a stable
//! trend line, not microsecond-exact confidence intervals.

use std::time::Instant;

/// One benchmark's aggregated timings (nanoseconds per iteration).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name (slash-separated group/case, criterion-style).
    pub name: String,
    /// Median over the samples.
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Arithmetic mean.
    pub mean_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

impl BenchResult {
    /// The result as one JSON object on a single line.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"name\":{:?},\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\"samples\":{}}}",
            self.name, self.median_ns, self.min_ns, self.max_ns, self.mean_ns, self.samples
        )
    }
}

/// Times one call of `f`, prints the JSON line, and returns the result
/// of `f` plus the measurement — the per-task wall-time hook the sweep
/// binaries use (no warmup: the task *is* the workload, e.g. a full
/// Figure 7 sweep at the configured thread count).
pub fn time_once<R>(name: &str, f: impl FnOnce() -> R) -> (R, BenchResult) {
    let t0 = Instant::now();
    let out = f();
    let ns = t0.elapsed().as_nanos();
    let result = BenchResult {
        name: name.to_string(),
        median_ns: ns,
        min_ns: ns,
        max_ns: ns,
        mean_ns: ns,
        samples: 1,
    };
    println!("{}", result.json_line());
    (out, result)
}

/// Runs benchmarks with a fixed warmup/sample policy.
#[derive(Debug, Clone)]
pub struct Bencher {
    warmup: usize,
    samples: usize,
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher::new()
    }
}

impl Bencher {
    /// Default policy: 3 warmup iterations, 11 timed samples (env
    /// `A4A_BENCH_SAMPLES` overrides the sample count, e.g. for quick
    /// smoke runs).
    pub fn new() -> Bencher {
        let samples = std::env::var("A4A_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(11);
        Bencher { warmup: 3, samples }
    }

    /// A policy with an explicit sample count (for slow benchmarks).
    pub fn with_samples(samples: usize) -> Bencher {
        Bencher {
            samples: samples.max(1),
            ..Bencher::new()
        }
    }

    /// Times `f`, prints the JSON line, and returns the result.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> BenchResult {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut ns: Vec<u128> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed().as_nanos()
            })
            .collect();
        ns.sort_unstable();
        let result = BenchResult {
            name: name.to_string(),
            median_ns: ns[ns.len() / 2],
            min_ns: ns[0],
            max_ns: ns[ns.len() - 1],
            mean_ns: ns.iter().sum::<u128>() / ns.len() as u128,
            samples: ns.len(),
        };
        println!("{}", result.json_line());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_sane_timings() {
        let r = Bencher::with_samples(5).bench("selftest/spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            acc
        });
        assert_eq!(r.samples, 5);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.median_ns > 0);
    }

    #[test]
    fn json_line_is_well_formed() {
        let r = BenchResult {
            name: "group/case".into(),
            median_ns: 1,
            min_ns: 1,
            max_ns: 2,
            mean_ns: 1,
            samples: 3,
        };
        let j = r.json_line();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\":\"group/case\""));
        assert!(j.contains("\"median_ns\":1"));
    }
}
