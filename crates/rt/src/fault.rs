//! Seeded adversarial fault plans for the fault-injection tier.
//!
//! The module is deliberately generic: it knows nothing about the
//! simulator. It hands out [`FaultPlan`]s — a fault *kind* plus a child
//! seed split off a master seed with SplitMix64 — and adversarial value
//! samplers. The harness (`tests/fault_injection.rs` at the workspace
//! root) interprets each plan against the discrete-event scheduler, the
//! analog buck, and the mixed-signal testbench, asserting that every
//! injected fault either surfaces as a typed `SimError` or leaves the
//! component's invariants intact.
//!
//! Determinism contract: `plans(seed, n)` is a pure function, and each
//! plan's [`FaultPlan::rng`] stream depends only on the master seed and
//! the plan index. Re-running with the same `A4A_PROP_SEED` replays
//! every scenario bit-identically.

use crate::rng::{splitmix64, Rng};

/// The adversarial scenario families of the fault-injection tier.
///
/// The first group attacks the discrete-event scheduler's contract
/// (FIFO delivery, monotone time, exact `len()`, stale-key rejection);
/// the second attacks the analog stack's parameter validation and
/// numerical robustness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Cancel keys whose events were already delivered.
    CancelAfterPop,
    /// Cancel the same key repeatedly.
    DoubleCancel,
    /// Cancel keys minted by a different scheduler instance.
    ForeignKey,
    /// Many events at one timestamp, randomly cancelled, FIFO checked.
    EqualTimestampFlood,
    /// Schedule and advance within a few femtoseconds of `Time::MAX`.
    NearMaxArithmetic,
    /// Attempt to schedule events before the current time.
    PastEvent,
    /// Random interleaving of schedule/cancel/pop against a model.
    InterleavedChurn,
    /// NaN injected into one analog parameter.
    NanAnalogParam,
    /// Negative or zero value injected into one analog parameter.
    NegativeAnalogParam,
    /// Absurdly large magnitude injected into one analog parameter.
    HugeAnalogParam,
    /// NaN/zero/negative/huge integration steps against a valid buck.
    BadStep,
    /// Adversarial testbench configuration (load steps, dt, phases).
    AdversarialTestbench,
}

impl FaultKind {
    /// Every fault family, in the fixed order [`plans`] cycles through.
    pub const ALL: [FaultKind; 12] = [
        FaultKind::CancelAfterPop,
        FaultKind::DoubleCancel,
        FaultKind::ForeignKey,
        FaultKind::EqualTimestampFlood,
        FaultKind::NearMaxArithmetic,
        FaultKind::PastEvent,
        FaultKind::InterleavedChurn,
        FaultKind::NanAnalogParam,
        FaultKind::NegativeAnalogParam,
        FaultKind::HugeAnalogParam,
        FaultKind::BadStep,
        FaultKind::AdversarialTestbench,
    ];
}

/// One seeded adversarial scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Position in the generated batch (stable across reruns).
    pub index: usize,
    /// The scenario family to run.
    pub kind: FaultKind,
    /// Child seed for every random decision inside the scenario.
    pub seed: u64,
}

impl FaultPlan {
    /// The plan's deterministic random stream.
    pub fn rng(&self) -> Rng {
        Rng::from_seed(self.seed)
    }
}

/// Generates `count` fault plans from `master_seed`, cycling through
/// every [`FaultKind`] so any batch of at least `FaultKind::ALL.len()`
/// scenarios covers every family.
pub fn plans(master_seed: u64, count: usize) -> Vec<FaultPlan> {
    let mut sm = master_seed;
    (0..count)
        .map(|index| FaultPlan {
            index,
            kind: FaultKind::ALL[index % FaultKind::ALL.len()],
            seed: splitmix64(&mut sm),
        })
        .collect()
}

/// An adversarial `f64`: cycles NaN, infinities, signed zeros, negative,
/// denormal, huge, and tiny-but-normal values, falling back to a random
/// magnitude. Roughly half the draws are invalid as a physical
/// parameter, so validators see both accept and reject paths.
pub fn adversarial_f64(rng: &mut Rng) -> f64 {
    match rng.u64_below(10) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 0.0,
        5 => -rng.f64_range(1e-12, 1e3),
        6 => f64::MIN_POSITIVE / 2.0, // denormal
        7 => rng.f64_range(1e15, 1e300),
        8 => rng.f64_range(1e-300, 1e-15),
        _ => rng.f64_range(1e-9, 1e3),
    }
}

/// A `u64` within `margin` of `u64::MAX` — for near-sentinel time
/// arithmetic that must saturate or error, never wrap.
pub fn near_max_u64(rng: &mut Rng, margin: u64) -> u64 {
    u64::MAX - rng.u64_below(margin.saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        assert_eq!(plans(42, 60), plans(42, 60));
        assert_ne!(plans(42, 60), plans(43, 60));
        // A longer batch extends, not reshuffles, a shorter one.
        assert_eq!(plans(42, 60)[..30], plans(42, 30)[..]);
    }

    #[test]
    fn batch_covers_every_kind() {
        let batch = plans(7, FaultKind::ALL.len());
        for kind in FaultKind::ALL {
            assert!(
                batch.iter().any(|p| p.kind == kind),
                "{kind:?} missing from a full-cycle batch"
            );
        }
    }

    #[test]
    fn plan_rng_streams_are_independent() {
        let batch = plans(1, 3);
        let a: Vec<u64> = {
            let mut r = batch[0].rng();
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = batch[1].rng();
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b, "sibling plans must not share a stream");
        let a2: Vec<u64> = {
            let mut r = batch[0].rng();
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2, "a plan's stream is replayable");
    }

    #[test]
    fn adversarial_f64_hits_the_nasty_classes() {
        let mut rng = Rng::from_seed(0);
        let draws: Vec<f64> = (0..200).map(|_| adversarial_f64(&mut rng)).collect();
        assert!(draws.iter().any(|v| v.is_nan()));
        assert!(draws.iter().any(|v| v.is_infinite()));
        assert!(draws.iter().any(|v| *v < 0.0));
        assert!(draws.iter().any(|v| *v == 0.0));
        assert!(draws.iter().any(|v| v.is_finite() && *v > 1e15));
    }

    #[test]
    fn near_max_stays_in_margin() {
        let mut rng = Rng::from_seed(9);
        for _ in 0..100 {
            let v = near_max_u64(&mut rng, 16);
            assert!(v >= u64::MAX - 16);
        }
        assert_eq!(near_max_u64(&mut rng, 0), u64::MAX);
    }
}
