//! A minimal, deterministic property-testing harness replacing
//! `proptest` for this workspace.
//!
//! Design: a property is a closure over a [`Gen`], which hands out
//! values drawn from a seeded [`Rng`](crate::Rng). Every primitive draw
//! is recorded as a *choice* (one `u64` per draw); a failing case is
//! shrunk by mutating the recorded choice sequence (zeroing, halving,
//! decrementing, truncating) and replaying the property — the
//! "internal shrinking" approach of Hypothesis. Because range mapping
//! sends choice 0 to the range minimum, shrinking drives every drawn
//! value toward its simplest form without any per-type shrinker code.
//!
//! Reproducibility:
//! - Case seeds derive deterministically from the property name, so a
//!   plain `cargo test` replays the identical corpus on every platform.
//! - `A4A_PROP_CASES=N` overrides the case count (like
//!   `PROPTEST_CASES`).
//! - On failure the harness panics with a `A4A_PROP_SEED=0x…` line;
//!   setting that variable reruns exactly the failing case (then
//!   shrinks it again), regardless of the case count.
//!
//! ```
//! a4a_rt::prop::check("doc_example", |g| {
//!     let xs = g.vec(1..20, |g| g.u64(0..100));
//!     let mut sorted = xs.clone();
//!     sorted.sort_unstable();
//!     a4a_rt::prop_assert_eq!(sorted.len(), xs.len());
//!     Ok(())
//! });
//! ```

use crate::rng::{splitmix64, Rng};

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropError {
    /// The property's assertion failed (message explains how).
    Fail(String),
    /// The generated inputs don't satisfy the property's precondition;
    /// the case is retried with fresh inputs and not counted.
    Discard,
}

/// Alias kept so helper functions can use the familiar `proptest` name
/// in their signatures (`Result<(), TestCaseError>`).
pub type TestCaseError = PropError;

/// Result type of a property body.
pub type PropResult = Result<(), PropError>;

/// Asserts a condition inside a property body, returning
/// [`PropError::Fail`] (with optional formatted context) instead of
/// panicking, so the harness can shrink the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::PropError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::PropError::Fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Equality assertion for property bodies (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::prop::PropError::Fail(format!(
                "{} == {} failed: {:?} vs {:?} at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                file!(),
                line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::prop::PropError::Fail(format!(
                "{} == {} failed: {:?} vs {:?} ({}) at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                b,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Inequality assertion for property bodies (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::prop::PropError::Fail(format!(
                "{} != {} failed: both {:?} at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                file!(),
                line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::prop::PropError::Fail(format!(
                "{} != {} failed: both {:?} ({}) at {}:{}",
                stringify!($a),
                stringify!($b),
                a,
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    }};
}

/// Discards the current case (precondition unmet); the harness retries
/// with fresh inputs without counting the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::PropError::Discard);
        }
    };
}

/// How the harness runs a property.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required (default 256; env
    /// `A4A_PROP_CASES` overrides).
    pub cases: u32,
    /// Cap on replays spent shrinking a failure.
    pub shrink_budget: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            shrink_budget: 2048,
        }
    }
}

impl Config {
    /// A config asking for `cases` passing cases (env still overrides).
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("A4A_PROP_CASES") {
            Ok(v) => v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("A4A_PROP_CASES={v:?} is not a number")),
            Err(_) => self.cases,
        }
    }
}

enum Source {
    /// Fresh generation: draw from the RNG, record every choice.
    Random(Rng),
    /// Replay of a recorded (possibly mutated) choice sequence; reads
    /// past the end yield 0, i.e. every range's minimum.
    Replay(usize),
}

/// The value source handed to a property body: draws primitives,
/// collections, and choices from a deterministic stream.
pub struct Gen {
    source: Source,
    choices: Vec<u64>,
}

impl Gen {
    fn random(seed: u64) -> Gen {
        Gen {
            source: Source::Random(Rng::from_seed(seed)),
            choices: Vec::new(),
        }
    }

    fn replay(choices: Vec<u64>) -> Gen {
        Gen {
            source: Source::Replay(0),
            choices,
        }
    }

    /// One raw choice in `[0, u64::MAX]`. Everything funnels through
    /// here so shrinking sees a flat `u64` sequence.
    fn draw(&mut self) -> u64 {
        match &mut self.source {
            Source::Random(rng) => {
                let x = rng.next_u64();
                self.choices.push(x);
                x
            }
            Source::Replay(i) => {
                let x = self.choices.get(*i).copied().unwrap_or(0);
                *i += 1;
                x
            }
        }
    }

    /// Uniform `u64` in the half-open range (choice 0 maps to `lo`).
    pub fn u64(&mut self, r: std::ops::Range<u64>) -> u64 {
        assert!(r.start < r.end, "empty range");
        let span = r.end - r.start;
        r.start + ((u128::from(self.draw()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform `usize` in the half-open range.
    pub fn usize(&mut self, r: std::ops::Range<usize>) -> usize {
        self.u64(r.start as u64..r.end as u64) as usize
    }

    /// Uniform `i64` in the half-open range.
    pub fn i64(&mut self, r: std::ops::Range<i64>) -> i64 {
        let span = r.end.wrapping_sub(r.start) as u64;
        let off = ((u128::from(self.draw()) * u128::from(span)) >> 64) as u64;
        r.start.wrapping_add(off as i64)
    }

    /// Uniform `f64` in `[lo, hi)` (choice 0 maps to `lo`).
    pub fn f64(&mut self, r: std::ops::Range<f64>) -> f64 {
        assert!(r.start < r.end, "empty range");
        let unit = (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        r.start + unit * (r.end - r.start)
    }

    /// A boolean (choice 0 maps to `false`).
    pub fn bool(&mut self) -> bool {
        self.draw() & 1 == 1
    }

    /// Any `u64` whatsoever (the raw choice).
    pub fn any_u64(&mut self) -> u64 {
        self.draw()
    }

    /// A vector with length drawn from `len`, elements from `f`.
    pub fn vec<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// An index in `[0, n)` for dispatching between alternatives (the
    /// replacement for `prop_oneof!`).
    pub fn choice(&mut self, n: usize) -> usize {
        assert!(n > 0, "choice over nothing");
        self.usize(0..n)
    }

    /// A reference to a uniformly-picked element.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.choice(items.len())]
    }

    /// Fisher–Yates shuffle (in place) — the replacement for
    /// `prop_shuffle`.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize(0..i + 1);
            items.swap(i, j);
        }
    }

    /// A string of length drawn from `len` over the given alphabet.
    pub fn string_of(&mut self, alphabet: &str, len: std::ops::Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        let n = self.usize(len);
        (0..n).map(|_| *self.pick(&chars)).collect()
    }

    /// A string of printable characters (ASCII plus a sprinkling of
    /// multi-byte code points) — the replacement for the `\PC{..}`
    /// regex strategy used to fuzz parsers.
    pub fn printable_string(&mut self, len: std::ops::Range<usize>) -> String {
        let n = self.usize(len);
        (0..n)
            .map(|_| match self.choice(8) {
                // Bias toward ASCII so structured parsers see realistic
                // input, but keep genuine multi-byte coverage.
                0 => char::from_u32(0xA1 + self.u64(0..0x100) as u32).unwrap_or('¡'),
                1 => *self.pick(&['é', 'λ', '→', '±', '∀', '中', '🦀', '\u{2028}']),
                _ => char::from(0x20 + self.u64(0..0x5F) as u8),
            })
            .collect()
    }
}

/// Runs `prop` under the default [`Config`]. Panics (with a reproducing
/// seed) if any case fails after shrinking.
pub fn check(name: &str, prop: impl Fn(&mut Gen) -> PropResult) {
    check_with(&Config::default(), name, prop);
}

/// Runs `prop` under an explicit config.
pub fn check_with(config: &Config, name: &str, prop: impl Fn(&mut Gen) -> PropResult) {
    // The corpus is a pure function of the property name: stable across
    // runs, platforms, and unrelated edits to other tests.
    let mut h = 0xA4A0_5EED_0000_0001u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    let base = h;

    if let Ok(v) = std::env::var("A4A_PROP_SEED") {
        let v = v.trim().trim_start_matches("0x");
        let seed = u64::from_str_radix(v, 16)
            .unwrap_or_else(|_| panic!("A4A_PROP_SEED={v:?} is not a hex u64"));
        run_one(config, name, seed, 0, &prop);
        return;
    }

    let cases = config.effective_cases();
    let mut passed = 0u32;
    let mut discarded = 0u32;
    let mut stream = base;
    while passed < cases {
        let seed = splitmix64(&mut stream);
        match run_case(seed, &prop) {
            Ok(()) => passed += 1,
            Err(PropError::Discard) => {
                discarded += 1;
                assert!(
                    discarded < cases.saturating_mul(16).max(1024),
                    "property {name:?}: too many discarded cases \
                     ({discarded} discards for {passed} passes) — \
                     loosen the generator instead of prop_assume!"
                );
            }
            Err(PropError::Fail(_)) => {
                run_one(config, name, seed, passed, &prop);
                unreachable!("run_one panics on failure");
            }
        }
    }
}

fn run_case(seed: u64, prop: &impl Fn(&mut Gen) -> PropResult) -> PropResult {
    let mut g = Gen::random(seed);
    prop(&mut g)
}

/// Reruns one seed; on failure, shrinks and panics with the report.
fn run_one(config: &Config, name: &str, seed: u64, case_index: u32, prop: &impl Fn(&mut Gen) -> PropResult) {
    let mut g = Gen::random(seed);
    match prop(&mut g) {
        Ok(()) | Err(PropError::Discard) => (),
        Err(PropError::Fail(first_msg)) => {
            let (choices, msg, replays) = shrink(config, g.choices, first_msg, prop);
            panic!(
                "property {name:?} failed (case {case_index}): {msg}\n\
                 shrunk to {n} choices after {replays} replays\n\
                 reproduce with: A4A_PROP_SEED={seed:#018x} \
                 (env var, then rerun this test)",
                n = choices.len(),
            );
        }
    }
}

/// Hypothesis-style choice-sequence shrinking: try simpler sequences
/// (shorter, then element-wise smaller) and keep any that still fail.
fn shrink(
    config: &Config,
    mut choices: Vec<u64>,
    mut msg: String,
    prop: &impl Fn(&mut Gen) -> PropResult,
) -> (Vec<u64>, String, u32) {
    let mut replays = 0u32;
    let try_candidate = |cand: Vec<u64>, replays: &mut u32| -> Option<(Vec<u64>, String)> {
        if *replays >= config.shrink_budget {
            return None;
        }
        *replays += 1;
        let mut g = Gen::replay(cand);
        match prop(&mut g) {
            Err(PropError::Fail(m)) => Some((g.choices, m)),
            _ => None,
        }
    };

    let mut progress = true;
    while progress && replays < config.shrink_budget {
        progress = false;

        // Pass 1: drop trailing halves / quarters of the sequence.
        let mut cut = choices.len() / 2;
        while cut > 0 && replays < config.shrink_budget {
            let cand: Vec<u64> = choices[..choices.len() - cut].to_vec();
            if let Some((c, m)) = try_candidate(cand, &mut replays) {
                choices = c;
                msg = m;
                progress = true;
            } else {
                cut /= 2;
            }
        }

        // Pass 2: zero each nonzero choice (range minimum).
        for i in 0..choices.len() {
            if choices[i] == 0 || replays >= config.shrink_budget {
                continue;
            }
            let mut cand = choices.clone();
            cand[i] = 0;
            if let Some((c, m)) = try_candidate(cand, &mut replays) {
                choices = c;
                msg = m;
                progress = true;
            }
        }

        // Pass 3: halve each remaining nonzero choice.
        for i in 0..choices.len() {
            if replays >= config.shrink_budget {
                break;
            }
            while choices[i] > 0 {
                let mut cand = choices.clone();
                cand[i] /= 2;
                if let Some((c, m)) = try_candidate(cand, &mut replays) {
                    choices = c;
                    msg = m;
                    progress = true;
                } else {
                    break;
                }
            }
        }
    }
    (choices, msg, replays)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check("sort_is_idempotent", |g| {
            let mut xs = g.vec(0..50, |g| g.u64(0..1000));
            xs.sort_unstable();
            let once = xs.clone();
            xs.sort_unstable();
            crate::prop_assert_eq!(once, xs);
            Ok(())
        });
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let err = std::panic::catch_unwind(|| {
            check("has_no_big_element", |g| {
                let xs = g.vec(0..50, |g| g.u64(0..1000));
                crate::prop_assert!(xs.iter().all(|&x| x < 900), "found {:?}", xs);
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("A4A_PROP_SEED="), "{msg}");
        assert!(msg.contains("has_no_big_element"), "{msg}");
    }

    #[test]
    fn shrinking_minimises_a_counterexample() {
        // The minimal failing input for "sum < 100" with elements in
        // 0..10 needs at least 11 elements; shrinking should get the
        // choice count at least below the worst case of 50 draws.
        let err = std::panic::catch_unwind(|| {
            check("sum_is_small", |g| {
                let xs = g.vec(0..50, |g| g.u64(0..10));
                crate::prop_assert!(xs.iter().sum::<u64>() < 100);
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        let n: usize = msg
            .split("shrunk to ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("parse choice count");
        assert!(n <= 30, "shrinking made no progress: {msg}");
    }

    #[test]
    fn discard_retries_without_counting() {
        let hits = std::cell::Cell::new(0u32);
        check_with(&Config::with_cases(16), "assume_filters", |g| {
            let x = g.u64(0..10);
            crate::prop_assume!(x % 2 == 0);
            hits.set(hits.get() + 1);
            crate::prop_assert!(x % 2 == 0);
            Ok(())
        });
        assert!(hits.get() >= 16, "only {} counted cases", hits.get());
    }

    #[test]
    fn corpus_is_deterministic() {
        let collect = || {
            let out = std::cell::RefCell::new(Vec::new());
            check_with(&Config::with_cases(8), "corpus_probe", |g| {
                out.borrow_mut()
                    .push((g.u64(0..1_000_000), g.bool(), g.f64(0.0..1.0).to_bits()));
                Ok(())
            });
            out.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        check("shuffle_permutes", |g| {
            let mut xs: Vec<usize> = (0..10).collect();
            g.shuffle(&mut xs);
            let mut back = xs.clone();
            back.sort_unstable();
            crate::prop_assert_eq!(back, (0..10).collect::<Vec<_>>());
            Ok(())
        });
    }

    #[test]
    fn string_generators_respect_alphabet_and_length() {
        check("strings_well_formed", |g| {
            let s = g.string_of("abc", 1..7);
            crate::prop_assert!((1..7).contains(&s.chars().count()));
            crate::prop_assert!(s.chars().all(|c| "abc".contains(c)));
            let p = g.printable_string(0..40);
            crate::prop_assert!(p.chars().count() < 40);
            Ok(())
        });
    }
}
