//! A zero-dependency scoped thread pool with deterministic parallel
//! mapping.
//!
//! The evaluation loop of the paper — state-graph construction for STG
//! verification and the Figure 7 parameter sweeps — is embarrassingly
//! parallel, but the repo's determinism contract (every artefact replays
//! bit-identically) rules out any parallelism whose *observable results*
//! depend on scheduling. This module provides the substrate that squares
//! the two:
//!
//! * [`Pool`]: a fixed set of worker threads sized by `A4A_THREADS` (or
//!   [`std::thread::available_parallelism`]), shared process-wide via
//!   [`Pool::global`] or constructed explicitly for tests that compare
//!   thread counts in one process.
//! * [`Pool::scope`] / [`Scope::spawn`]: structured parallelism over
//!   borrowed data. The calling thread *helps* drain the queue while it
//!   waits, so nested scopes make progress even on a pool of one worker.
//!   A panic in any spawned job poisons the scope and re-panics at the
//!   `scope` call site.
//! * [`Pool::par_map`]: an order-preserving parallel map. Workers claim
//!   *chunks* of indices from a shared cursor (a chunked self-scheduling
//!   deque: idle workers steal the next chunk as soon as they finish, so
//!   irregular per-item loads balance), but every result lands in the
//!   slot of its input index — the output is `items.map(f)` exactly,
//!   independent of worker count and scheduling.
//!
//! Determinism contract: for a pure `f`, `pool.par_map(items, f)` equals
//! `items.into_iter().map(f).collect()` for every pool size, and with
//! `A4A_THREADS=1` every entry point falls back to the plain sequential
//! loop on the calling thread (no workers are consulted at all).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A heap job with the `'static` lifetime the queue requires; scoped
/// spawns transmute their `'scope` closures to this (safe because
/// [`Pool::scope`] joins every job before returning).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct Shared {
    /// FIFO injector queue; workers and helping callers pop from the
    /// front.
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed or shutdown begins.
    work: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn push(&self, job: Job) {
        self.queue.lock().unwrap().push_back(job);
        self.work.notify_one();
    }

    /// Non-blocking pop, used by threads that help while waiting.
    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// Per-scope completion state.
struct ScopeState {
    /// Jobs spawned and not yet finished.
    pending: AtomicUsize,
    /// Set when any job of this scope panicked.
    panicked: AtomicBool,
    /// Signalled on every job completion (any scope); waiters re-check.
    done: Mutex<()>,
    done_cv: Condvar,
}

/// A fixed-size worker pool. See the module docs for the determinism
/// contract.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.threads).finish()
    }
}

/// The worker count the environment asks for: `A4A_THREADS` when set
/// (minimum 1), otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    match std::env::var("A4A_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("A4A_THREADS={v:?} is not a thread count"))
            .max(1),
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

impl Pool {
    /// Creates a pool with exactly `threads` workers (`threads == 1`
    /// spawns no OS threads: every entry point then runs inline on the
    /// caller).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = if threads == 1 {
            Vec::new()
        } else {
            (0..threads)
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("a4a-pool-{i}"))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn pool worker")
                })
                .collect()
        };
        Pool {
            shared,
            workers,
            threads,
        }
    }

    /// The process-wide pool, created on first use with
    /// [`default_threads`] workers. Library hot paths (reachability,
    /// state graphs, sweeps) run on this pool unless handed an explicit
    /// one, so `A4A_THREADS` controls the whole binary.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(default_threads()))
    }

    /// The worker count this pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which jobs borrowing the caller's
    /// stack can be spawned. Returns once every spawned job has
    /// finished.
    ///
    /// The calling thread executes queued jobs while it waits, so a job
    /// that itself opens a scope cannot deadlock the pool — even with a
    /// single worker, somebody is always running something.
    ///
    /// # Panics
    ///
    /// Panics if any spawned job panicked (the scope is *poisoned*: all
    /// sibling jobs still run to completion first, then the panic
    /// surfaces here). A panic inside `f` itself also waits for spawned
    /// jobs before unwinding further.
    pub fn scope<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _marker: std::marker::PhantomData,
        };
        // The guard drains the scope even if `f` unwinds, so no job can
        // outlive the borrows it captured.
        let guard = ScopeGuard {
            shared: &self.shared,
            state: &state,
        };
        let result = f(&scope);
        drop(guard);
        if state.panicked.load(Ordering::Acquire) {
            panic!("a4a_rt::pool: a job spawned in this scope panicked");
        }
        result
    }

    /// Order-preserving parallel map with automatic chunking: the
    /// deterministic replacement for `items.into_iter().map(f)`.
    ///
    /// See [`Pool::par_map_chunked`] for the guarantees.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.par_map_chunked(0, items, f)
    }

    /// [`Pool::par_map`] with an explicit chunk size (`0` picks one
    /// automatically: enough chunks that stragglers rebalance, large
    /// enough that cursor traffic stays cold).
    ///
    /// Workers repeatedly claim the next `chunk` indices from a shared
    /// cursor and write each `f(item)` into the result slot of the
    /// item's input index, so the output order is the input order
    /// regardless of scheduling. With one thread (or one item) this runs
    /// the plain sequential loop on the caller.
    ///
    /// # Panics
    ///
    /// Panics if `f` panicked on any item (after all in-flight items
    /// finish).
    pub fn par_map_chunked<T, R, F>(&self, chunk: usize, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = if chunk == 0 {
            // ~4 chunks per worker balances irregular loads without
            // hammering the cursor; at least 1.
            (n / (4 * self.threads)).max(1)
        } else {
            chunk
        };
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
        let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let (slots_ref, out_ref, cursor, f) = (&slots, &out, &cursor, &f);
        self.scope(|s| {
            // One claiming loop per worker; the caller runs one too
            // (inside the scope wait, via help), so `threads` loops keep
            // `threads` threads busy.
            for _ in 0..self.threads.min(n) {
                s.spawn(move || loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        let item = slots_ref[i]
                            .lock()
                            .unwrap()
                            .take()
                            .expect("par_map slot claimed twice");
                        *out_ref[i].lock().unwrap() = Some(f(item));
                    }
                });
            }
        });
        out.into_iter()
            .map(|m| m.into_inner().unwrap().expect("par_map slot not filled"))
            .collect()
    }

    /// Order-preserving parallel map over an index range: the borrowing
    /// variant of [`Pool::par_map`] for frontiers that already live in
    /// an arena. `f(i)` typically reads `&arena[i]` — nothing is cloned
    /// or moved into the pool, which is what keeps BFS levels
    /// allocation-free on the input side.
    ///
    /// Same determinism contract as [`Pool::par_map`]: the output is
    /// `range.map(f).collect()` exactly, for every pool size, and with
    /// one thread (or one index) the plain sequential loop runs on the
    /// caller.
    ///
    /// # Panics
    ///
    /// Panics if `f` panicked on any index (after all in-flight indices
    /// finish).
    pub fn par_map_range<R, F>(&self, range: std::ops::Range<usize>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let n = range.len();
        if self.threads <= 1 || n <= 1 {
            return range.map(f).collect();
        }
        let chunk = (n / (4 * self.threads)).max(1);
        let start0 = range.start;
        let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let (out_ref, cursor, f) = (&out, &cursor, &f);
        self.scope(|s| {
            for _ in 0..self.threads.min(n) {
                s.spawn(move || loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        *out_ref[i].lock().unwrap() = Some(f(start0 + i));
                    }
                });
            }
        });
        out.into_iter()
            .map(|m| m.into_inner().unwrap().expect("par_map_range slot not filled"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = shared.work.wait(q).unwrap();
            }
        };
        job();
    }
}

/// Handle for spawning jobs that may borrow data outside the closure
/// (anything alive for the duration of the [`Pool::scope`] call).
pub struct Scope<'pool, 'scope> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    /// Invariant in `'scope`, like [`std::thread::Scope`].
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues `f` on the pool. With a single-thread pool the job runs
    /// immediately on the calling thread instead.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        if self.pool.threads <= 1 {
            // Sequential fallback: run inline, but keep the panic
            // contract (poison, surface at the scope call site).
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                self.state.panicked.store(true, Ordering::Release);
            }
            return;
        }
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                state.panicked.store(true, Ordering::Release);
            }
            state.pending.fetch_sub(1, Ordering::AcqRel);
            let _lock = state.done.lock().unwrap();
            state.done_cv.notify_all();
        });
        // SAFETY: the job only borrows data outliving 'scope, and the
        // ScopeGuard in Pool::scope blocks (even during unwinding) until
        // `pending` hits zero, so the job never outlives its borrows.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job)
        };
        self.pool.shared.push(job);
    }
}

/// Blocks until the scope's jobs are done; helps run queued work while
/// waiting. Runs in `Drop` so an unwinding scope body still joins.
struct ScopeGuard<'a> {
    shared: &'a Shared,
    state: &'a ScopeState,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        while self.state.pending.load(Ordering::Acquire) > 0 {
            // Help: run whatever is queued (this scope's jobs or a
            // nested scope's) on this thread.
            if let Some(job) = self.shared.try_pop() {
                job();
                continue;
            }
            // Nothing queued: our jobs are in flight on workers. Sleep
            // until some job, somewhere, completes.
            let lock = self.state.done.lock().unwrap();
            if self.state.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            // Timed wait: a job of a *different* scope finishing does
            // not signal our condvar, and its completion may be what
            // frees a worker for our jobs.
            let (_lock, _timeout) = self
                .state
                .done_cv
                .wait_timeout(lock, std::time::Duration::from_millis(1))
                .unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn par_map_matches_map_small() {
        let pool = Pool::new(4);
        let items: Vec<u64> = (0..100).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let par = pool.par_map(items, |x| x * x + 1);
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_single_thread_is_inline() {
        let pool = Pool::new(1);
        let tid = std::thread::current().id();
        let ids = pool.par_map(vec![0u8; 8], move |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == tid));
    }

    #[test]
    fn scope_joins_before_returning() {
        let pool = Pool::new(3);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = Pool::new(2);
        let out: Vec<u32> = pool.par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
