//! Seedable deterministic PRNG: SplitMix64 seed expansion feeding a
//! xoshiro256++ stream.
//!
//! Both algorithms are public-domain reference designs (Vigna /
//! Blackman). They are implemented here rather than pulled from crates.io
//! so that (a) the workspace builds with zero registry access and (b) the
//! exact stream is owned by this repo and pinned by golden-value tests —
//! the metastability ablations of the paper reproduction must replay
//! bit-identically per seed on every platform and across every future PR.

/// SplitMix64 step: the standard seed-expansion generator.
///
/// Used to derive the four xoshiro256++ state words from a single `u64`
/// seed (the construction recommended by the xoshiro authors), and
/// exposed for deriving independent child seeds from a parent seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ generator. Deterministic per seed; `Clone` gives an
/// identical, independent continuation of the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator by expanding `seed` through SplitMix64.
    pub fn from_seed(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0
            .wrapping_add(s3)
            .rotate_left(23)
            .wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// The next `u32` (upper bits of the stream, which are the
    /// highest-quality ones).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty f64 range");
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform `u64` in `[0, n)` via the widening-multiply reduction
    /// (Lemire). One stream draw per call — the mapping is fixed and
    /// golden-pinned, so never "improve" it to a rejection loop.
    #[inline]
    pub fn u64_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "u64_below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `u64` in `[lo, hi)`.
    #[inline]
    pub fn u64_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty u64 range");
        lo + self.u64_below(hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// A fair coin.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// An exponential sample with mean `tau` (inverse-CDF method on a
    /// uniform clamped away from 0 so the tail stays finite).
    #[inline]
    pub fn exponential(&mut self, tau: f64) -> f64 {
        let u = self.f64_range(1e-12, 1.0);
        -u.ln() * tau
    }

    /// A fresh generator seeded from this one's stream (for spawning
    /// independent deterministic substreams).
    pub fn fork(&mut self) -> Rng {
        Rng::from_seed(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published SplitMix64 reference vectors (seed 0), as used by the
    /// Java `SplittableRandom` test suite.
    #[test]
    fn splitmix64_reference_vectors() {
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
        assert_eq!(splitmix64(&mut s), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::from_seed(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::from_seed(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::from_seed(43);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = Rng::from_seed(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn u64_below_is_in_range_and_covers() {
        let mut r = Rng::from_seed(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.u64_below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues reached");
    }

    #[test]
    fn exponential_has_right_mean() {
        let mut r = Rng::from_seed(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = Rng::from_seed(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = a.clone();
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
