//! Deterministic runtime substrate for the A4A reproduction.
//!
//! The build environment is hermetic: no crates.io access. This crate
//! replaces the three registry dependencies the workspace used to pull —
//! `rand`, `proptest`, and `criterion` — with small, fully-deterministic
//! in-workspace equivalents:
//!
//! - [`rng`]: a seedable PRNG ([`Rng`], SplitMix64 seeding feeding a
//!   xoshiro256++ stream) with uniform `f64` and exponential sampling.
//!   The stream is pinned by golden-value tests, so ablation results
//!   replay bit-identically across platforms and future PRs — a stronger
//!   guarantee than `rand` gives (`StdRng` is explicitly *not*
//!   stream-stable across versions).
//! - [`prop`]: a seeded property-testing harness with failure-case
//!   shrinking, an env-overridable case count (`A4A_PROP_CASES`), and a
//!   reproducing seed printed on every failure (`A4A_PROP_SEED`).
//! - [`bench`]: a warmup + median-of-N wall-clock timer emitting JSON
//!   lines, replacing `criterion` for the kernel benchmarks.
//! - [`pool`]: a scoped thread pool (`A4A_THREADS`-sized) whose
//!   order-preserving [`pool::Pool::par_map`] keeps parallel results
//!   bit-identical to the sequential loop — the substrate under the
//!   parallel reachability engine and the Figure 7 sweeps.
//! - [`fault`]: seeded adversarial fault plans (SplitMix64 child seeds)
//!   and hostile-value samplers for the fault-injection tier
//!   (`tests/fault_injection.rs`), which drives them against the
//!   scheduler and analog stack asserting typed-error-or-invariant.
//! - [`hash`]: a fixed-function FxHash hasher, `FxHashMap`/`FxHashSet`
//!   aliases, and the [`hash::IdTable`] id-interner under the
//!   state-space engines (markings stored once in the arena, never
//!   cloned into the index).

pub mod bench;
pub mod fault;
pub mod hash;
pub mod pool;
pub mod prop;
pub mod rng;

pub use bench::{BenchResult, Bencher};
pub use hash::{fx_hash_one, FxBuildHasher, FxHashMap, FxHashSet, FxHasher, IdTable};
pub use pool::Pool;
pub use prop::{Config, Gen, PropError, TestCaseError};
pub use rng::Rng;
