//! Zero-dependency fast hashing for the formal-side hot paths.
//!
//! `std`'s default `SipHash` is keyed per `HashMap` instance and costs
//! tens of nanoseconds per small key — both properties the state-space
//! engines cannot afford: reachability interns millions of markings, and
//! the determinism contract wants the same hashes in every process. This
//! module provides:
//!
//! * [`FxHasher`]: the rustc `FxHash` multiply-rotate hasher — a fixed
//!   (unkeyed) 64-bit function, ~1 ns per word, deterministic across
//!   processes and platforms;
//! * [`FxHashMap`] / [`FxHashSet`]: drop-in aliases for `std`
//!   collections built on it;
//! * [`IdTable`]: an id-interner — an open-addressed table storing only
//!   `(hash, id)` pairs, where `id` indexes the caller's arena. Keys
//!   live **once** (in the arena), not cloned into the map; lookups
//!   compare against the arena through a caller-supplied closure. This
//!   is the raw-table pattern `hashbrown` exposes on nightly, sized down
//!   to exactly what BFS interning needs.
//!
//! None of this is for adversarial input: these are fixed-function
//! hashes for trusted, in-process state exploration.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplier from rustc's `FxHash` (a Fibonacci-style odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, fixed-function (unkeyed) 64-bit hasher.
///
/// The same input hashes to the same value in every process on every
/// platform, which the golden interner tests pin. Not DoS-resistant by
/// design — see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value with [`FxHasher`] (deterministic across processes).
pub fn fx_hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Vacant-slot sentinel: ids must stay below `u32::MAX`, which every
/// explorer guarantees by rejecting `max_states > u32::MAX` up front.
const EMPTY: u32 = u32::MAX;

/// An id-interner: hash → arena-index table that never stores keys.
///
/// The caller keeps the keys in an arena (`Vec<K>`) and registers each
/// key's arena index here under its hash. Lookups re-derive equality by
/// comparing the candidate against `arena[id]` via a closure, so keys
/// exist exactly once in memory — the pattern that de-duplicates the
/// `HashMap<Marking, StateId>` + `Vec<Marking>` double storage of the
/// pre-interner explorers.
///
/// ```
/// use a4a_rt::hash::{fx_hash_one, IdTable};
///
/// let mut arena: Vec<String> = Vec::new();
/// let mut table = IdTable::new();
/// for word in ["a", "b", "a"] {
///     let h = fx_hash_one(word);
///     let id = match table.get(h, |id| arena[id as usize] == word) {
///         Some(id) => id,
///         None => {
///             let id = arena.len() as u32;
///             arena.push(word.to_string());
///             table.insert(h, id);
///             id
///         }
///     };
///     let _ = id;
/// }
/// assert_eq!(arena, vec!["a".to_string(), "b".to_string()]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IdTable {
    /// Power-of-two slot array of `(hash, id)`; `id == EMPTY` is vacant.
    entries: Vec<(u64, u32)>,
    len: usize,
}

impl IdTable {
    /// An empty table (allocates on first insert).
    pub fn new() -> IdTable {
        IdTable::default()
    }

    /// An empty table pre-sized for about `capacity` ids.
    pub fn with_capacity(capacity: usize) -> IdTable {
        let mut t = IdTable::default();
        if capacity > 0 {
            t.grow_to(slots_for(capacity));
        }
        t
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up the id registered under `hash` whose arena entry matches,
    /// probing with `eq(id)` for each same-hash candidate.
    #[inline]
    pub fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        if self.entries.is_empty() {
            return None;
        }
        let mask = self.entries.len() - 1;
        let mut idx = hash as usize & mask;
        loop {
            let (h, id) = self.entries[idx];
            if id == EMPTY {
                return None;
            }
            if h == hash && eq(id) {
                return Some(id);
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Registers `id` under `hash`. The caller must have checked with
    /// [`IdTable::get`] that no equal key is present (double insertion
    /// leaves both ids reachable, first-inserted wins on lookup).
    ///
    /// # Panics
    ///
    /// Panics if `id` is `u32::MAX` (reserved as the vacant sentinel).
    pub fn insert(&mut self, hash: u64, id: u32) {
        assert!(id != EMPTY, "id u32::MAX is reserved");
        // Keep load below 7/8.
        if self.entries.is_empty() || (self.len + 1) * 8 > self.entries.len() * 7 {
            let want = (self.entries.len() * 2).max(8);
            self.grow_to(want);
        }
        let mask = self.entries.len() - 1;
        let mut idx = hash as usize & mask;
        while self.entries[idx].1 != EMPTY {
            idx = (idx + 1) & mask;
        }
        self.entries[idx] = (hash, id);
        self.len += 1;
    }

    /// Drops every id but keeps the allocation — the per-call reuse hook
    /// for benchmark loops and repeated explorations.
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            *e = (0, EMPTY);
        }
        self.len = 0;
    }

    fn grow_to(&mut self, slots: usize) {
        debug_assert!(slots.is_power_of_two());
        let old = std::mem::replace(&mut self.entries, vec![(0, EMPTY); slots]);
        let mask = slots - 1;
        for (h, id) in old {
            if id == EMPTY {
                continue;
            }
            let mut idx = h as usize & mask;
            while self.entries[idx].1 != EMPTY {
                idx = (idx + 1) & mask;
            }
            self.entries[idx] = (h, id);
        }
    }
}

/// Smallest power-of-two slot count keeping `ids` below 7/8 load.
fn slots_for(ids: usize) -> usize {
    let min = ids * 8 / 7 + 1;
    min.next_power_of_two().max(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_hash_is_stable() {
        // Golden values: the function is fixed across processes and
        // platforms, so these must never change.
        assert_eq!(fx_hash_one(&0u64), 0);
        assert_eq!(fx_hash_one(&1u64), 0x51_7c_c1_b7_27_22_0a_95);
        assert_eq!(fx_hash_one("abc"), fx_hash_one("abc"));
        assert_ne!(fx_hash_one("abc"), fx_hash_one("abd"));
    }

    #[test]
    fn fx_write_bytes_matches_words() {
        let mut a = FxHasher::default();
        a.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0x0102_0304_0506_0708);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fx_map_round_trips() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert(format!("k{i}"), i);
        }
        assert_eq!(m["k42"], 42);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn id_table_interns() {
        let mut arena: Vec<u64> = Vec::new();
        let mut table = IdTable::new();
        let keys = [5u64, 9, 5, 13, 9, 5];
        let mut ids = Vec::new();
        for k in keys {
            let h = fx_hash_one(&k);
            let id = match table.get(h, |id| arena[id as usize] == k) {
                Some(id) => id,
                None => {
                    let id = arena.len() as u32;
                    arena.push(k);
                    table.insert(h, id);
                    id
                }
            };
            ids.push(id);
        }
        assert_eq!(arena, vec![5, 9, 13]);
        assert_eq!(ids, vec![0, 1, 0, 2, 1, 0]);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn id_table_survives_growth() {
        let mut arena: Vec<usize> = Vec::new();
        let mut table = IdTable::with_capacity(4);
        for k in 0..10_000usize {
            let h = fx_hash_one(&k);
            assert!(table.get(h, |id| arena[id as usize] == k).is_none());
            arena.push(k);
            table.insert(h, (arena.len() - 1) as u32);
        }
        for k in 0..10_000usize {
            let h = fx_hash_one(&k);
            assert_eq!(
                table.get(h, |id| arena[id as usize] == k),
                Some(k as u32),
                "lost {k} after growth"
            );
        }
        assert_eq!(table.len(), 10_000);
    }

    #[test]
    fn id_table_clear_keeps_capacity() {
        let mut table = IdTable::new();
        table.insert(fx_hash_one(&1u8), 0);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.get(fx_hash_one(&1u8), |_| true), None);
        table.insert(fx_hash_one(&2u8), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn colliding_hashes_resolved_by_eq() {
        // Force two arena entries under the same hash: `eq` must
        // disambiguate.
        let arena = ["x", "y"];
        let mut table = IdTable::new();
        table.insert(42, 0);
        table.insert(42, 1);
        assert_eq!(table.get(42, |id| arena[id as usize] == "y"), Some(1));
        assert_eq!(table.get(42, |id| arena[id as usize] == "x"), Some(0));
        assert_eq!(table.get(42, |_| false), None);
    }
}
