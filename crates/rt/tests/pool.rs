//! Property and stress tests for the scoped thread pool — the substrate
//! the deterministic parallel engine (reachability, state graphs,
//! sweeps, ablation batches) stands on.
//!
//! The contracts exercised here:
//! * `par_map` / `par_map_chunked` equal `Iterator::map` for every pool
//!   size, input length, and chunk size — order preserved, no items
//!   lost or duplicated;
//! * a panicking job poisons its scope: siblings still run, the panic
//!   surfaces at the `scope`/`par_map` call site, and the pool stays
//!   usable afterwards;
//! * nested scopes never deadlock, even on a pool of size 1, because a
//!   waiting scope helps run queued work.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use a4a_rt::prop::check_with;
use a4a_rt::{Config, Pool};

#[test]
fn par_map_equals_map_for_random_inputs() {
    check_with(&Config::with_cases(64), "par_map_equals_map", |g| {
        let threads = g.usize(1..9);
        let len = g.usize(0..257);
        let pool = Pool::new(threads);
        let items: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(g.any_u64())).collect();
        let expected: Vec<u64> = items
            .iter()
            .map(|x| x.wrapping_mul(2654435761).rotate_left(7))
            .collect();
        let got = pool.par_map(items, |x| x.wrapping_mul(2654435761).rotate_left(7));
        if got != expected {
            return Err(a4a_rt::PropError::Fail(format!(
                "threads={threads} len={len}: par_map differs from map"
            )));
        }
        Ok(())
    });
}

#[test]
fn par_map_chunked_equals_map_for_random_chunk_sizes() {
    check_with(&Config::with_cases(64), "par_map_chunked_equals_map", |g| {
        let threads = g.usize(1..9);
        let len = g.usize(0..129);
        // Chunk sizes from degenerate (1) through larger-than-input.
        let chunk = g.usize(1..(len + 8));
        let pool = Pool::new(threads);
        let items: Vec<usize> = (0..len).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        let got = pool.par_map_chunked(chunk, items, |x| x * 3 + 1);
        if got != expected {
            return Err(a4a_rt::PropError::Fail(format!(
                "threads={threads} len={len} chunk={chunk}: chunked map differs"
            )));
        }
        Ok(())
    });
}

#[test]
fn par_map_range_equals_map_for_random_ranges() {
    check_with(&Config::with_cases(64), "par_map_range_equals_map", |g| {
        let threads = g.usize(1..9);
        let start = g.usize(0..100);
        let len = g.usize(0..257);
        let pool = Pool::new(threads);
        let expected: Vec<usize> = (start..start + len).map(|i| i * 7 + 3).collect();
        let got = pool.par_map_range(start..start + len, |i| i * 7 + 3);
        if got != expected {
            return Err(a4a_rt::PropError::Fail(format!(
                "threads={threads} start={start} len={len}: par_map_range differs"
            )));
        }
        Ok(())
    });
}

#[test]
fn par_map_range_borrows_without_cloning() {
    // The whole point of the range variant: index into shared state
    // instead of cloning the frontier into the pool.
    let arena: Vec<String> = (0..100).map(|i| format!("s{i}")).collect();
    for threads in [1, 2, 8] {
        let got = Pool::new(threads).par_map_range(10..90, |i| arena[i].len());
        let want: Vec<usize> = (10..90).map(|i| arena[i].len()).collect();
        assert_eq!(got, want, "t{threads}");
    }
}

#[test]
fn par_map_panic_propagates_and_pool_survives() {
    for threads in [1, 2, 8] {
        let pool = Pool::new(threads);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map((0..64u32).collect::<Vec<_>>(), |x| {
                if x == 37 {
                    panic!("boom on {x}");
                }
                x
            })
        }));
        assert!(result.is_err(), "t{threads}: panic must reach the caller");
        // The pool is not torn down by a poisoned scope: the next map on
        // the same pool still works and is still ordered.
        let ok = pool.par_map((0..64u32).collect::<Vec<_>>(), |x| x + 1);
        assert_eq!(ok, (1..65).collect::<Vec<u32>>(), "t{threads}: reuse");
    }
}

#[test]
fn scope_panic_runs_siblings_to_completion() {
    for threads in [1, 2, 4] {
        let pool = Pool::new(threads);
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..32 {
                    let done = &done;
                    s.spawn(move || {
                        if i == 5 {
                            panic!("poison");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
        }));
        assert!(result.is_err(), "t{threads}: scope must panic");
        // Poisoning is deferred: every sibling job ran before the scope
        // surfaced the panic.
        assert_eq!(done.load(Ordering::Relaxed), 31, "t{threads}: siblings");
    }
}

#[test]
fn nested_scopes_do_not_deadlock_on_tiny_pools() {
    for threads in [1, 2] {
        let pool = Pool::new(threads);
        let count = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let count = &count;
                let pool_ref = &pool;
                outer.spawn(move || {
                    pool_ref.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16, "t{threads}");
    }
}

#[test]
fn nested_par_map_is_correct() {
    for threads in [1, 2, 8] {
        let pool = Pool::new(threads);
        let got = pool.par_map((0..16u64).collect::<Vec<_>>(), |i| {
            // Each outer item runs an inner map on the same pool.
            pool.par_map((0..8u64).collect::<Vec<_>>(), |j| i * 100 + j)
                .iter()
                .sum::<u64>()
        });
        let want: Vec<u64> = (0..16u64)
            .map(|i| (0..8u64).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(got, want, "t{threads}");
    }
}

#[test]
fn results_are_identical_across_pool_sizes() {
    // The determinism contract in one line: the same input and closure
    // give byte-identical output on every pool size.
    let items: Vec<u64> = (0..500).collect();
    let baseline = Pool::new(1).par_map(items.clone(), |x| x.wrapping_mul(x) ^ 0xA4A);
    for threads in [2, 3, 8] {
        let got = Pool::new(threads).par_map(items.clone(), |x| x.wrapping_mul(x) ^ 0xA4A);
        assert_eq!(got, baseline, "t{threads}");
    }
}
