//! Golden-value tests pinning the `a4a-rt` random streams.
//!
//! These vectors were captured once from the reference implementation
//! and must never change: the A2A metastability ablations and every
//! seeded experiment in the workspace rely on bit-identical replay of
//! these streams across platforms, Rust versions, and future PRs. If a
//! change to `a4a_rt::rng` breaks one of these tests, the change is
//! wrong — fix the code, not the vectors.

use a4a_rt::Rng;

#[test]
fn u64_stream_seed_zero_is_pinned() {
    let mut r = Rng::from_seed(0);
    let got: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
    assert_eq!(
        got,
        [
            0x53175d61490b23df,
            0x61da6f3dc380d507,
            0x5c0fdf91ec9a7bfc,
            0x02eebf8c3bbe5e1a,
            0x7eca04ebaf4a5eea,
            0x0543c37757f08d9a,
            0xdb7490c75ab5026e,
            0xd87343e6464bc959,
        ]
    );
}

#[test]
fn u64_stream_seed_deadbeef_is_pinned() {
    let mut r = Rng::from_seed(0xDEAD_BEEF);
    let got: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
    assert_eq!(
        got,
        [
            0x0c520eb8fea98ede,
            0x2b74a6338b80e0e2,
            0xbe238770c3795322,
            0x5f235f98a244ea97,
            0xe004f0cc1514d858,
            0x436a209963ff9223,
            0x8302e81b9685b6d4,
            0xa7eec00b77ec3019,
        ]
    );
}

/// `f64` conversion is fixed-point arithmetic on the u64 stream, so the
/// doubles are exactly reproducible (compared bit-for-bit, no epsilon).
#[test]
fn f64_stream_seed_42_is_pinned() {
    let mut r = Rng::from_seed(42);
    let got: Vec<u64> = (0..6).map(|_| r.next_f64().to_bits()).collect();
    let want: Vec<u64> = [
        0.8143051451229099f64,
        0.3188210400616611,
        0.9838941681774888,
        0.7011355981347556,
        0.793504489691729,
        0.5880984664675596,
    ]
    .iter()
    .map(|x| x.to_bits())
    .collect();
    assert_eq!(got, want);
}

/// The exponential sampler (inverse CDF, one uniform per sample) is
/// likewise bit-exact per seed.
#[test]
fn exponential_stream_seed_7_is_pinned() {
    let mut r = Rng::from_seed(7);
    let got: Vec<u64> = (0..6).map(|_| r.exponential(1.0).to_bits()).collect();
    let want: Vec<u64> = [
        2.8938900833237873f64,
        1.759587456539152,
        0.3318762347343781,
        0.8504800063660434,
        0.03701723982818003,
        0.7642057073137526,
    ]
    .iter()
    .map(|x| x.to_bits())
    .collect();
    assert_eq!(got, want);
}

/// Exhaustive determinism sweep over many seeds: two generators from
/// the same seed agree over a long prefix, and different seeds diverge.
#[test]
fn seeds_replay_and_distinguish() {
    for seed in (0..2000u64).step_by(97) {
        let mut a = Rng::from_seed(seed);
        let mut b = Rng::from_seed(seed);
        let mut c = Rng::from_seed(seed + 1);
        let mut diverged = false;
        for _ in 0..256 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64(), "seed {seed} failed to replay");
            diverged |= x != c.next_u64();
        }
        assert!(diverged, "seeds {seed} and {} collided", seed + 1);
    }
}
