//! Regenerates Figure 7a: inductor peak current for 1–10 µH coils at a
//! 6 Ω load, one series per controller.

use a4a::scenario::ControllerKind;
use a4a_bench::experiments::fig7a;
use a4a_bench::report;
use a4a_rt::Pool;

fn main() {
    let labels: Vec<String> = ControllerKind::paper_series()
        .iter()
        .map(ControllerKind::label)
        .collect();
    let threads = Pool::global().threads();
    let (points, _) = a4a_rt::bench::time_once(&format!("fig7a/sweep/t{threads}"), fig7a);
    println!("Figure 7a: inductor peak current (mA) for 1-10uH coils at 6 Ohm load\n");
    println!("{}", report::sweep_table("L (uH)", &labels, &points));

    // The paper's trade-off: the coil each controller needs to keep the
    // peak under a budget. The paper uses 300 mA with its wider spread;
    // our calibrated spread is narrower, so the discriminating budget
    // sits at ~320 mA (the faster the controller, the smaller the coil).
    for budget in [300.0, 320.0] {
        println!("smallest coil keeping peak <= {budget:.0} mA per controller:");
        for (i, label) in labels.iter().enumerate() {
            let smallest = points
                .iter()
                .find(|p| p.y[i] <= budget)
                .map(|p| format!("{:.2} uH", p.x))
                .unwrap_or_else(|| "none in range".to_string());
            println!("  {label:>7}: {smallest}");
        }
    }
    println!("paper reference: ASYNC 1.8uH vs 10/6.8/3.1 uH at 100/333/666 MHz (300 mA budget)");

    let csv = report::sweep_csv("l_uh", &labels, &points);
    let path = report::write_artifact("fig7a.csv", &csv).expect("write results");
    println!("\nwrote {}", path.display());
}
