//! Tracked wall-time benchmarks for the mixed-signal co-simulation hot
//! path — the loop every experiment bin (Table I cross-check, Figure 6
//! waveforms, the Figure 7 sweeps) spends nearly all of its time in.
//!
//! Four metrics, median-of-N via [`a4a_rt::bench::Bencher`]:
//!
//! * `cosim/buck_step_10us` — the bare [`Buck`] RK2 integration kernel:
//!   20 000 steps of 0.5 ns (a 10 µs run with no digital activity);
//! * `cosim/testbench_async_10us` — the full Figure 6 scenario under
//!   the asynchronous token-ring controller;
//! * `cosim/testbench_sync333_10us` — the same scenario at 333 MHz
//!   synchronous;
//! * `cosim/fig7a_cell_async` — one Figure 7a grid cell (4.7 µH, 6 Ω,
//!   async, 8 µs), the unit of work every sweep multiplies.
//!
//! Results go to stdout as JSON lines and to `BENCH_cosim.json` at the
//! repo root (override with `A4A_BENCH_OUT`), the tracked single-thread
//! baseline subsequent PRs regress against. `A4A_BENCH_SAMPLES` trims
//! the sample count for quick CI smoke runs.

use std::fs;
use std::path::{Path, PathBuf};

use a4a::scenario::{self, ControllerKind};
use a4a_analog::{metrics, Buck, BuckParams};
use a4a_rt::bench::Bencher;

fn main() {
    let bencher = Bencher::new();
    let mut results = Vec::new();

    results.push(bencher.bench("cosim/buck_step_10us", || {
        let mut b = Buck::new(BuckParams::default());
        b.set_switch(0, true, false);
        for _ in 0..20_000 {
            b.step(0.5e-9);
        }
        b.output_voltage()
    }));

    results.push(bencher.bench("cosim/testbench_async_10us", || {
        let ctrl = scenario::controller(ControllerKind::Async, 4);
        let mut tb = scenario::fig6().try_build(ctrl).expect("fig6 config valid");
        tb.try_run_until(scenario::FIG6_T_END)
            .expect("fig6 co-simulation must not diverge");
        tb.buck().output_voltage()
    }));

    results.push(bencher.bench("cosim/testbench_sync333_10us", || {
        let ctrl = scenario::controller(ControllerKind::Sync(333.0), 4);
        let mut tb = scenario::fig6().try_build(ctrl).expect("fig6 config valid");
        tb.try_run_until(scenario::FIG6_T_END)
            .expect("fig6 co-simulation must not diverge");
        tb.buck().output_voltage()
    }));

    results.push(bencher.bench("cosim/fig7a_cell_async", || {
        let ctrl = scenario::controller(ControllerKind::Async, 4);
        let mut tb = scenario::sweep_coil(4.7, 6.0)
            .try_build(ctrl)
            .expect("sweep config valid");
        tb.try_run_until(8e-6)
            .expect("sweep co-simulation must not diverge");
        metrics::peak_current(tb.waveform())
    }));

    let path = std::env::var_os("A4A_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cosim.json"));
    let mut out = String::new();
    for r in &results {
        out.push_str(&r.json_line());
        out.push('\n');
    }
    fs::write(&path, &out).expect("write BENCH_cosim.json");
    eprintln!("wrote {}", path.display());
}
