//! Regenerates Figure 6: 10 µs simulation waveforms (startup → normal
//! load → high load → normal load) for the synchronous and asynchronous
//! controllers, with the paper's headline metrics (voltage ripple and
//! peak coil current over the normal-load window).

use a4a::scenario;
use a4a_bench::experiments::fig6_all;
use a4a_bench::report;

fn main() {
    let runs = fig6_all();

    let header: Vec<String> = [
        "Controller",
        "Ripple (V)",
        "Peak I (A)",
        "Efficiency",
        "OV events",
        "Shorts",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.3}", r.ripple),
                format!("{:.3}", r.peak),
                format!("{:.1}%", r.efficiency * 100.0),
                r.ov_events.to_string(),
                r.short_circuits.to_string(),
            ]
        })
        .collect();
    println!(
        "Figure 6: waveform metrics over the normal-load window {:?} us\n",
        (
            scenario::FIG6_NORMAL_WINDOW.0 * 1e6,
            scenario::FIG6_NORMAL_WINDOW.1 * 1e6
        )
    );
    println!("{}", report::table(&header, &body));
    println!(
        "paper reference (333MHz vs ASYNC): ripple 0.43 V vs 0.36 V, peak 0.24 A vs 0.21 A"
    );

    // Waveform CSVs for the two series the paper plots.
    for r in &runs {
        if r.label == "333MHz" || r.label == "ASYNC" {
            let tag = r.label.to_lowercase();
            let p1 = report::write_artifact(&format!("fig6_{tag}_analog.csv"), &r.waveform.csv())
                .expect("write");
            let p2 = report::write_artifact(
                &format!("fig6_{tag}_events.csv"),
                &r.waveform.events_csv(),
            )
            .expect("write");
            println!("wrote {} and {}", p1.display(), p2.display());
        }
    }
}
