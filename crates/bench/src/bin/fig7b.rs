//! Regenerates Figure 7b: inductor peak current for 3–15 Ω loads with
//! 4.7 µH coils, one series per controller.

use a4a::scenario::ControllerKind;
use a4a_bench::experiments::fig7b;
use a4a_bench::report;
use a4a_rt::Pool;

fn main() {
    let labels: Vec<String> = ControllerKind::paper_series()
        .iter()
        .map(ControllerKind::label)
        .collect();
    let threads = Pool::global().threads();
    let (points, _) = a4a_rt::bench::time_once(&format!("fig7b/sweep/t{threads}"), fig7b);
    println!("Figure 7b: inductor peak current (mA) for 3-15 Ohm loads at 4.7uH\n");
    println!("{}", report::sweep_table("R (Ohm)", &labels, &points));
    println!(
        "paper reference: the ordering persists over the load range covering\n\
         typical mobile-microprocessor computational loads"
    );

    let csv = report::sweep_csv("r_ohm", &labels, &points);
    let path = report::write_artifact("fig7b.csv", &csv).expect("write results");
    println!("\nwrote {}", path.display());
}
