//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. early acknowledgement in MODE_CTRL (token decoupled from charging)
//!    vs serialised token hand-off;
//! 2. PEXT first-cycle extension on vs off (startup undershoot);
//! 3. complex-gate vs generalized-C implementations of every module
//!    (area/verification cost);
//! 4. A2A front-end pulse filtering vs naive direct sampling
//!    (filtered-glitch counts on chattering comparator inputs);
//! 5. synchroniser metastability tail sensitivity.

use a4a::scenario;
use a4a_a2a::Wait;
use a4a_analog::metrics;
use a4a_bench::ablation::{
    batch_stats, root_seed, sync_metastability_batch, wait_metastability_batch,
};
use a4a_bench::report;
use a4a_ctrl::{AsyncController, AsyncTiming};
use a4a_rt::Pool;
use a4a_sim::Time;
use a4a_synth::{synthesize, SynthOptions, SynthStyle};

fn main() {
    a4a_rt::bench::time_once(
        &format!("ablation/all/t{}", Pool::global().threads()),
        || {
            ablate_token_decoupling();
            ablate_pext();
            ablate_synth_style();
            ablate_a2a_filtering();
            ablate_metastability();
            ablate_sync_metastability();
        },
    );
}

/// 1. Token decoupling: the early acknowledge lets the token move after
///    its dwell even though charging continues. Serialising it (token
///    dwell ≥ a full charge cycle, modelled by a long activation period)
///    slows help recruitment under load.
fn ablate_token_decoupling() {
    println!("== Ablation 1: token decoupling (early ack) ==");
    // Recruiting help is what the dwell gates. Use a *moderate* load
    // step (UV but no HL, so the all-phase HL draft cannot mask the
    // token) and measure the undershoot.
    let run = |activation_ns: f64| -> f64 {
        let mut timing = AsyncTiming::default();
        timing.policy.activation_period = Time::from_ns(activation_ns);
        let ctrl = AsyncController::new(4, timing);
        let mut tb = scenario::sweep_load(9.0)
            .load_step(5e-6, 4.4)
            .build(ctrl);
        tb.run_until(8e-6);
        let w = tb.into_waveform().window(5e-6, 7e-6);
        w.v.iter().fold(f64::INFINITY, |a, &b| a.min(b))
    };
    let fast = run(250.0);
    // A serialised hand-off corresponds to the token dwelling for a full
    // charging cycle (~1 us).
    let slow = run(1000.0);
    println!(
        "  decoupled (250ns dwell): high-load undershoot to {fast:.3}V\n  \
         serialised (1us dwell):  high-load undershoot to {slow:.3}V\n"
    );
}

/// 2. PEXT on/off: the first-cycle extension trades peak current for a
///    faster first recovery.
fn ablate_pext() {
    println!("== Ablation 2: PEXT first-cycle extension ==");
    let run = |pext_ns: f64| -> (f64, f64) {
        let mut timing = AsyncTiming::default();
        timing.policy.pext = Time::from_ns(pext_ns);
        let ctrl = AsyncController::new(4, timing);
        let mut tb = scenario::sweep_coil(1.0, 6.0).build(ctrl);
        tb.run_until(4e-6);
        let w = tb.into_waveform();
        // Time for the output to first reach the regulation target.
        let t_reg = w
            .t
            .iter()
            .zip(&w.v)
            .find(|(_, &v)| v >= 3.29)
            .map(|(&t, _)| t * 1e6)
            .unwrap_or(f64::NAN);
        (metrics::peak_current(&w) * 1e3, t_reg)
    };
    for pext in [0.0, 40.0, 150.0] {
        let (peak, t_reg) = run(pext);
        println!("  PEXT={pext:>5.0}ns: startup peak={peak:.0}mA first-regulation at {t_reg:.2}us");
    }
    println!();
}

/// 3. Complex-gate vs gC synthesis over every controller module.
fn ablate_synth_style() {
    println!("== Ablation 3: complex-gate vs generalized-C synthesis ==");
    let header: Vec<String> = ["module", "cg literals", "gC literals", "cg gates", "gC gates"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut specs = a4a_ctrl::stgs::all_module_stgs();
    specs.extend(a4a_a2a::spec::all_specs());
    for (name, stg) in specs {
        let cg = synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate));
        let gc = synthesize(&stg, &SynthOptions::new(SynthStyle::GeneralizedC));
        match (cg, gc) {
            (Ok(cg), Ok(gc)) => rows.push(vec![
                name.to_string(),
                cg.literal_count().to_string(),
                gc.literal_count().to_string(),
                cg.netlist().gate_count().to_string(),
                gc.netlist().gate_count().to_string(),
            ]),
            (a, b) => rows.push(vec![
                name.to_string(),
                a.map(|_| "ok".into()).unwrap_or_else(|e| format!("{e}")),
                b.map(|_| "ok".into()).unwrap_or_else(|e| format!("{e}")),
                "-".to_string(),
                "-".to_string(),
            ]),
        }
    }
    println!("{}", report::table(&header, &rows));
}

/// 4. A2A pulse filtering: a chattering comparator output produces
///    glitch pulses shorter than the latch window; the WAIT element
///    filters and counts them instead of passing hazards to the
///    controller.
fn ablate_a2a_filtering() {
    println!("== Ablation 4: A2A non-persistent input filtering ==");
    let mut wait = Wait::new(Time::from_ns(1.0));
    wait.set_req(Time::ZERO, true);
    let mut acks = 0u32;
    // 100 chatter pulses of 0.4 ns followed by one real assertion.
    for k in 0..100u64 {
        let t0 = Time::from_ns(10.0 + 3.0 * k as f64);
        if wait.set_sig(t0, true).is_some() {
            acks += 1;
        }
        if wait.set_sig(t0 + Time::from_ps(400.0), false).is_some() {
            acks += 1;
        }
    }
    let t_real = Time::from_ns(400.0);
    wait.set_sig(t_real, true);
    let ev = wait.poll(Time::from_ns(402.0));
    if ev.map(|e| e.value).unwrap_or(false) {
        acks += 1;
    }
    println!(
        "  chatter pulses filtered: {} / 100; spurious acks: {}; \
         real assertion latched: {}\n",
        wait.filtered_pulses(),
        acks.saturating_sub(1),
        ev.is_some()
    );
}

/// 6. Synchroniser metastability: the synchronous controller's UV
///    reaction with marginal captures resolving the wrong way (footnote 1
///    of the paper: "the latency may increase by another clock period").
///    Each scenario's RNG seed is a SplitMix64 split of the root seed
///    (`A4A_PROP_SEED` overrides), so the batch parallelises on the
///    global pool without changing a single bit of the output.
fn ablate_sync_metastability() {
    println!("== Ablation 6: synchroniser metastability (333 MHz) ==");
    let root = root_seed();
    for (p, label) in [(0.0, "disabled"), (0.2, "p=0.2"), (0.8, "p=0.8")] {
        let latencies = sync_metastability_batch(Pool::global(), p, root, 40);
        let (mean, worst) = batch_stats(&latencies);
        println!("  {label:>9}: mean UV latency {mean:.2}ns, worst {worst:.2}ns");
    }
    println!();
}

/// 5. Metastability tail: independent WAIT elements with an enabled
///    resolution-time model show the latency distribution a marginal
///    input produces (fully contained in the element). One fresh,
///    seed-split element per scenario — see ablation 6 for the batch
///    determinism contract.
fn ablate_metastability() {
    println!("== Ablation 5: metastability resolution tail ==");
    let root = root_seed();
    for (p, tau_ns) in [(0.0, 0.0), (0.3, 2.0), (0.9, 5.0)] {
        let tau = Time::from_ns(if tau_ns == 0.0 { 1.0 } else { tau_ns });
        let latencies = wait_metastability_batch(Pool::global(), p, tau, root, 200);
        let (mean, worst) = batch_stats(&latencies);
        println!(
            "  p={p:.1} tau={tau_ns:.0}ns: mean latch latency {mean:.3}ns, worst {worst:.3}ns"
        );
    }
    println!();
}
