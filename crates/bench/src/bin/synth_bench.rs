//! Tracked wall-time benchmarks for the formal-side hot path — the
//! STG → state-graph → Quine–McCluskey → speed-independence pipeline
//! that backs every verification claim in the repo (DESIGN.md §2's
//! exact-reachability substitution).
//!
//! Six metrics, median-of-N via [`a4a_rt::bench::Bencher`]:
//!
//! * `synth/state_graph_token_ring_x1000` — 1000 state-graph builds of
//!   the composed token ring (the widest shipped net, 20 places);
//! * `synth/state_graph_mode_ctrl_x1000` — 1000 builds of the largest
//!   shipped module STG by state count (`mode_ctrl`, 22 states);
//! * `synth/reach_mode_ctrl_x1000` — 1000 raw Petri-net reachability
//!   explorations of the same net;
//! * `synth/state_graph_composed_pipelines` — one build of a 3-way
//!   composed handshake-pipeline product (the widest state space the
//!   repo constructs, thousands of states — where packed markings and
//!   the id-interner dominate);
//! * `synth/minimize_qm10` — a representative 10-variable
//!   Quine–McCluskey minimisation with a seeded ON/OFF/DC partition;
//! * `synth/verify_si_celem` — conformance + hazard verification of the
//!   synthesised C-element against its specification.
//!
//! Results go to stdout as JSON lines and to `BENCH_synth.json` at the
//! repo root (override with `A4A_BENCH_OUT`), the tracked single-thread
//! baseline subsequent PRs regress against. `A4A_BENCH_SAMPLES` trims
//! the sample count for quick CI smoke runs.

use std::fs;
use std::path::{Path, PathBuf};

use a4a_boolmin::Minimize;
use a4a_rt::bench::Bencher;
use a4a_rt::Rng;
use a4a_stg::prop_support;
use a4a_synth::{synthesize, verify_si, SynthOptions, SynthStyle};

const CELEM: &str = "\
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
";

fn main() {
    let bencher = Bencher::new();
    let mut results = Vec::new();

    let ring = a4a_ctrl::stgs::token_ring_stg();
    results.push(bencher.bench("synth/state_graph_token_ring_x1000", || {
        let mut states = 0usize;
        for _ in 0..1000 {
            let sg = ring.state_graph(500_000).expect("token ring is consistent");
            states += sg.state_count();
        }
        states
    }));

    let mode = a4a_ctrl::stgs::mode_ctrl_stg();
    results.push(bencher.bench("synth/state_graph_mode_ctrl_x1000", || {
        let mut states = 0usize;
        for _ in 0..1000 {
            let sg = mode.state_graph(500_000).expect("mode_ctrl is consistent");
            states += sg.state_count();
        }
        states
    }));

    results.push(bencher.bench("synth/reach_mode_ctrl_x1000", || {
        let mut states = 0usize;
        for _ in 0..1000 {
            let g = mode.net().explore(500_000).expect("mode_ctrl net is bounded");
            states += g.state_count();
        }
        states
    }));

    // A wide product state space: three independent 6-stage handshake
    // pipelines composed into one STG. Exercises the per-level parallel
    // fan-out and the interner at thousands of states.
    let a = prop_support::pipeline_stg_with_prefix(6, 0b101010, "a");
    let b = prop_support::pipeline_stg_with_prefix(6, 0b010101, "b");
    let c = prop_support::pipeline_stg_with_prefix(6, 0b110011, "c");
    let wide = a
        .compose(&b)
        .and_then(|ab| ab.compose(&c))
        .expect("prefixed pipelines compose");
    results.push(bencher.bench("synth/state_graph_composed_pipelines", || {
        let sg = wide.state_graph(500_000).expect("composed pipelines are consistent");
        sg.state_count()
    }));

    // Representative QM instance: a seeded ON/OFF/DC partition of the
    // 10-variable minterm space (~1/8 ON, ~5/8 OFF, rest don't-care).
    let mut rng = Rng::from_seed(0x5e_ed_a4_a5);
    let mut on = Vec::new();
    let mut off = Vec::new();
    for m in 0..(1u64 << 10) {
        match rng.next_u64() % 8 {
            0 => on.push(m),
            1..=5 => off.push(m),
            _ => {}
        }
    }
    results.push(bencher.bench("synth/minimize_qm10", || {
        let cover = a4a_boolmin::minimize(&Minimize::new(10).on(&on).off(&off))
            .expect("no contradiction by construction");
        cover.cube_count()
    }));

    let stg = a4a_stg::Stg::parse_g(CELEM).expect("C-element spec parses");
    let synth =
        synthesize(&stg, &SynthOptions::new(SynthStyle::ComplexGate)).expect("C-element synthesises");
    results.push(bencher.bench("synth/verify_si_celem", || {
        let report = verify_si(&stg, synth.netlist(), 100_000).expect("verification completes");
        assert!(report.is_clean());
        report.states
    }));

    let path = std::env::var_os("A4A_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_synth.json"));
    let mut out = String::new();
    for r in &results {
        out.push_str(&r.json_line());
        out.push('\n');
    }
    fs::write(&path, &out).expect("write BENCH_synth.json");
    eprintln!("wrote {}", path.display());
}
