//! Regenerates Table I: reaction time of the controllers per condition.
//!
//! Synchronous rows are the paper's constant 2.5-clock-period latency;
//! the ASYNC row is measured on the behavioural token-ring controller by
//! stimulus-response. A gate-level cross-check synthesises the basic
//! buck controller STG and measures its `uv+ → gp+` path with the
//! event-driven gate simulator.

use a4a_bench::experiments::{table1, table1_improvement};
use a4a_bench::report;
use a4a_netlist::sim::GateSim;
use a4a_sim::Time;
use a4a_synth::{synthesize, SynthOptions, SynthStyle};

fn main() {
    let rows = table1();
    let header: Vec<String> = ["Controller", "HL (ns)", "UV (ns)", "OV (ns)", "OC (ns)", "ZC (ns)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.label.clone()];
            row.extend(r.ns.iter().map(|v| format!("{v:.2}")));
            row
        })
        .collect();
    let imp = table1_improvement(&rows);
    let mut imp_row = vec!["Improv. over 333MHz".to_string()];
    imp_row.extend(imp.iter().map(|f| format!("{f:.0}x")));
    body.push(imp_row);

    let rendered = report::table(&header, &body);
    println!("Table I: comparison of the reaction time\n");
    println!("{rendered}");

    // Gate-level cross-check on the synthesised basic buck controller.
    println!("Gate-level cross-check (synthesised basic_buck, 90nm-class library):");
    let stg = a4a_ctrl::stgs::basic_buck_stg();
    let synth =
        synthesize(&stg, &SynthOptions::new(SynthStyle::GeneralizedC)).expect("synthesis");
    let netlist = synth.netlist();
    let mut sim = GateSim::new(netlist);
    // Drive the initial state: uv=1, everything else 0; outputs settle.
    let names = ["uv", "oc", "zc", "gp_ack", "gn_ack"];
    for n in names {
        let net = netlist.net_by_name(n).expect("input");
        sim.set_input(net, n == "uv");
    }
    let gp = netlist.net_by_name("gp").expect("gp");
    let gn = netlist.net_by_name("gn").expect("gn");
    sim.init_net(gp, false);
    sim.init_net(gn, false);
    sim.settle(Time::from_us(1.0));
    // The initial state excites gp+ (UV already detected): replay the
    // cycle up to the wait-for-UV state, then measure uv+ -> gp+.
    let set = |sim: &mut GateSim, netlist: &a4a_netlist::Netlist, name: &str, v: bool| {
        let net = netlist.net_by_name(name).expect("net");
        sim.set_input(net, v);
        sim.settle(Time::from_us(1.0));
    };
    set(&mut sim, netlist, "gp_ack", true);
    set(&mut sim, netlist, "uv", false);
    set(&mut sim, netlist, "oc", true);
    set(&mut sim, netlist, "gp_ack", false);
    set(&mut sim, netlist, "gn_ack", true);
    set(&mut sim, netlist, "oc", false);
    set(&mut sim, netlist, "zc", true);
    set(&mut sim, netlist, "gn_ack", false);
    set(&mut sim, netlist, "zc", false);
    // Both transistors off, waiting for UV: measure the reaction.
    let uv = netlist.net_by_name("uv").expect("uv");
    let reaction = sim.measure_reaction(uv, true, &[gp], Time::from_us(1.0));
    match reaction {
        Some((_, dt)) => println!(
            "  basic_buck uv+ -> gp+ = {:.3} ns ({} gates, {} literals); \
             the full phase controller adds the WAITX2/MODE/CHARGE modules \
             calibrated in AsyncTiming",
            dt.as_ns(),
            netlist.gate_count(),
            netlist.literal_count()
        ),
        None => println!("  basic_buck did not react (unexpected)"),
    }

    let mut csv = String::from("controller,hl_ns,uv_ns,ov_ns,oc_ns,zc_ns\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{:.3},{:.3},{:.3},{:.3},{:.3}\n",
            r.label, r.ns[0], r.ns[1], r.ns[2], r.ns[3], r.ns[4]
        ));
    }
    let path = report::write_artifact("table1.csv", &csv).expect("write results");
    println!("\nwrote {}", path.display());
}
