//! Regenerates Figure 7c: inductor (ripple) losses for 1–10 µH coils at
//! a 6 Ω load — the trend that makes the smaller coil the asynchronous
//! controller affords a power-efficiency win.

use a4a::scenario::{self, ControllerKind};
use a4a_bench::experiments::fig7c;
use a4a_bench::report;
use a4a_rt::Pool;

fn main() {
    let labels: Vec<String> = ControllerKind::paper_series()
        .iter()
        .map(ControllerKind::label)
        .collect();
    let threads = Pool::global().threads();
    let (points, _) = a4a_rt::bench::time_once(&format!("fig7c/sweep/t{threads}"), fig7c);
    println!("Figure 7c: inductor ripple losses (uW) for 1-10uH coils at 6 Ohm load\n");
    println!("{}", report::sweep_table("L (uH)", &labels, &points));
    println!(
        "paper reference: losses grow with inductance, so the smaller coil\n\
         enabled by the faster controller reduces inductor losses"
    );

    // The end-to-end efficiency consequence: each controller runs on the
    // smallest coil its peak-current behaviour qualifies (Fig. 7a at the
    // 320 mA budget), and the faster controller's smaller coil wins.
    println!("\nend-to-end efficiency at each controller's qualifying coil:");
    for (kind, l) in [
        (ControllerKind::Sync(100.0), 1.8),
        (ControllerKind::Sync(333.0), 1.8),
        (ControllerKind::Async, 1.0),
    ] {
        let ctrl = scenario::controller(kind, 4);
        let mut tb = scenario::sweep_coil(l, 6.0).build(ctrl);
        tb.run_until(8e-6);
        println!(
            "  {:>7} @ {:.1} uH: efficiency {:.2}%",
            kind.label(),
            l,
            tb.buck().efficiency() * 100.0
        );
    }

    let csv = report::sweep_csv("l_uh", &labels, &points);
    let path = report::write_artifact("fig7c.csv", &csv).expect("write results");
    println!("\nwrote {}", path.display());
}
