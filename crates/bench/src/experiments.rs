//! Data producers for every table and figure of the evaluation.

use a4a::scenario::{self, ControllerKind};
use a4a::TestbenchBuilder;
use a4a_analog::{metrics, CoilModel, SensorKind, Waveform};
use a4a_ctrl::{
    AsyncController, AsyncTiming, BuckController, Command, SyncParams, TimedCommand,
};
use a4a_rt::Pool;
use a4a_sim::Time;

/// One row of Table I: reaction time per condition, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Controller label (`100MHz` … `ASYNC`).
    pub label: String,
    /// Reaction to HL, UV, OV, OC, ZC (ns).
    pub ns: [f64; 5],
}

/// Table I: the sync rows are the paper's constant 2.5-period latency;
/// the ASYNC row is *measured* on the behavioural token-ring controller
/// by stimulus-response (sensor event in, first gate command out).
pub fn table1() -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for mhz in [100.0, 333.0, 666.0, 1000.0] {
        let t = SyncParams::at_mhz(mhz).nominal_latency().as_ns();
        rows.push(Table1Row {
            label: ControllerKind::Sync(mhz).label(),
            ns: [t; 5],
        });
    }
    rows.push(Table1Row {
        label: "ASYNC".to_string(),
        ns: measure_async_reactions(),
    });
    rows
}

/// The Table I improvement row: 333 MHz over ASYNC, per condition.
pub fn table1_improvement(rows: &[Table1Row]) -> [f64; 5] {
    let sync = rows
        .iter()
        .find(|r| r.label == "333MHz")
        .expect("333MHz row");
    let asy = rows.iter().find(|r| r.label == "ASYNC").expect("ASYNC row");
    let mut out = [0.0; 5];
    for (o, (s, a)) in out.iter_mut().zip(sync.ns.iter().zip(asy.ns.iter())) {
        *o = s / a;
    }
    out
}

/// A tiny digital-only harness: drives the async controller with sensor
/// events, acknowledges gate commands after a fixed driver+ack delay,
/// and logs commands.
struct DigitalHarness {
    ctrl: AsyncController,
    acks: Vec<(Time, usize, bool, bool)>,
    log: Vec<TimedCommand>,
    ack_delay: Time,
}

impl DigitalHarness {
    fn new(phases: usize) -> Self {
        DigitalHarness {
            ctrl: AsyncController::new(phases, AsyncTiming::default()),
            acks: Vec::new(),
            log: Vec::new(),
            ack_delay: Time::from_ns(2.5),
        }
    }

    fn collect(&mut self) {
        for cmd in self.ctrl.take_commands() {
            self.log.push(cmd);
            if let Command::Gate { phase, pmos, value } = cmd.command {
                self.acks.push((cmd.time + self.ack_delay, phase, pmos, value));
            }
        }
    }

    fn drain(&mut self, now: Time) {
        loop {
            self.acks.sort_by_key(|a| a.0);
            if let Some(&(t, phase, pmos, value)) = self.acks.first() {
                if t <= now {
                    self.acks.remove(0);
                    self.ctrl.on_gate_ack(t, phase, pmos, value);
                    self.collect();
                    continue;
                }
            }
            match self.ctrl.next_wakeup() {
                Some(w) if w <= now => {
                    self.ctrl.on_wakeup(w);
                    self.collect();
                }
                _ => break,
            }
        }
    }

    fn sensor(&mut self, t: Time, kind: SensorKind, v: bool) {
        self.drain(t);
        self.ctrl.on_sensor(t, kind, v);
        self.collect();
    }

    fn first_gate_after(&self, t: Time, want: Option<(bool, bool)>) -> Option<Time> {
        self.log
            .iter()
            .filter(|c| c.time >= t)
            .find_map(|c| match c.command {
                Command::Gate { pmos, value, .. } => match want {
                    Some((wp, wv)) if (pmos, value) != (wp, wv) => None,
                    _ => Some(c.time),
                },
                _ => None,
            })
    }

    fn first_ovmode_after(&self, t: Time) -> Option<Time> {
        self.log.iter().filter(|c| c.time >= t).find_map(|c| match c.command {
            Command::OvMode(true) => Some(c.time),
            _ => None,
        })
    }
}

/// Measures the async controller's reaction to each condition (ns):
/// HL, UV, OV, OC, ZC.
pub fn measure_async_reactions() -> [f64; 5] {
    let ns = Time::from_ns;

    // UV: armed token holder, fresh UV -> gp+.
    let uv = {
        let mut h = DigitalHarness::new(4);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.drain(ns(20.0));
        h.first_gate_after(ns(10.0), Some((true, true)))
            .map(|t| t.as_ns() - 10.0)
            .unwrap_or(f64::NAN)
    };
    // HL: all stages drafted; measure to the first *other* phase's gp+
    // with UV pre-asserted on a stage that is not the token holder.
    let hl = {
        let mut h = DigitalHarness::new(4);
        h.drain(ns(1.0));
        // Pre-assert UV then immediately HL; the token holder responds
        // via the UV path, the drafted stages via the HL path.
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.sensor(ns(10.0), SensorKind::Hl, true);
        h.drain(ns(30.0));
        // First gate command on a non-holder phase.
        h.log
            .iter()
            .find_map(|c| match c.command {
                Command::Gate {
                    phase,
                    pmos: true,
                    value: true,
                } if phase != 0 => Some(c.time.as_ns() - 10.0),
                _ => None,
            })
            .unwrap_or(f64::NAN)
    };
    // OV: the sinking action (gn+) on the token holder; the reference
    // switch command is dispatched on the way (also checked).
    let ov = {
        let mut h = DigitalHarness::new(4);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Ov, true);
        h.drain(ns(30.0));
        assert!(h.first_ovmode_after(ns(10.0)).is_some());
        h.first_gate_after(ns(10.0), Some((false, true)))
            .map(|t| t.as_ns() - 10.0)
            .unwrap_or(f64::NAN)
    };
    // OC: during a charging cycle (past the PEXT window) -> gp-.
    let oc = {
        let mut h = DigitalHarness::new(1);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.sensor(ns(50.0), SensorKind::Uv, false);
        h.drain(ns(100.0));
        h.sensor(ns(200.0), SensorKind::Oc(0), true);
        h.drain(ns(300.0));
        h.first_gate_after(ns(200.0), Some((true, false)))
            .map(|t| t.as_ns() - 200.0)
            .unwrap_or(f64::NAN)
    };
    // ZC: during the NMOS phase (past NMIN) -> gn-.
    let zc = {
        let mut h = DigitalHarness::new(1);
        h.drain(ns(1.0));
        h.sensor(ns(10.0), SensorKind::Uv, true);
        h.sensor(ns(50.0), SensorKind::Uv, false);
        h.sensor(ns(200.0), SensorKind::Oc(0), true);
        h.drain(ns(300.0));
        h.sensor(ns(300.0), SensorKind::Oc(0), false);
        h.sensor(ns(400.0), SensorKind::Zc(0), true);
        h.drain(ns(500.0));
        h.first_gate_after(ns(400.0), Some((false, false)))
            .map(|t| t.as_ns() - 400.0)
            .unwrap_or(f64::NAN)
    };
    [hl, uv, ov, oc, zc]
}

/// One Figure 6 run: label, waveform, and headline metrics.
#[derive(Debug, Clone)]
pub struct Fig6Run {
    /// Series label.
    pub label: String,
    /// Full 10 µs record.
    pub waveform: Waveform,
    /// Peak-to-peak output ripple over the normal-load window (V).
    pub ripple: f64,
    /// Peak coil current over the whole run (A).
    pub peak: f64,
    /// OV assertions before the high-load step.
    pub ov_events: usize,
    /// Rejected short-circuit commands (must be 0).
    pub short_circuits: usize,
    /// Whole-run power-conversion efficiency (E_out / E_in).
    pub efficiency: f64,
}

/// Runs the Figure 6 scenario for one controller kind.
pub fn fig6_run(kind: ControllerKind) -> Fig6Run {
    let ctrl = scenario::controller(kind, 4);
    let mut tb = scenario::fig6()
        .try_build(ctrl)
        .expect("fig6 scenario must configure a valid testbench");
    tb.try_run_until(scenario::FIG6_T_END)
        .expect("fig6 co-simulation must not diverge");
    let short_circuits = tb.short_circuits();
    let efficiency = tb.buck().efficiency();
    let waveform = tb.into_waveform();
    let (a, b) = scenario::FIG6_NORMAL_WINDOW;
    let normal = waveform.window(a, b);
    let ov_events = waveform
        .events
        .iter()
        .filter(|(t, n, v)| n == "ov" && *v && *t < b)
        .count();
    Fig6Run {
        label: kind.label(),
        ripple: metrics::voltage_ripple(&normal),
        peak: metrics::peak_current(&waveform),
        ov_events,
        short_circuits,
        efficiency,
        waveform,
    }
}

/// Figure 6: both paper series (333 MHz synchronous and asynchronous)
/// plus the other clock rates for context. Runs are independent, so
/// they execute on the global pool; [`Pool::par_map`] preserves series
/// order, keeping the output identical for every thread count.
pub fn fig6_all() -> Vec<Fig6Run> {
    Pool::global().par_map(ControllerKind::paper_series(), fig6_run)
}

/// One grid point of a Figure 7 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// X-axis value (µH for 7a/7c, Ω for 7b).
    pub x: f64,
    /// One value per series, ordered as
    /// [`ControllerKind::paper_series`].
    pub y: Vec<f64>,
}

fn run_sweep_point(builder: TestbenchBuilder, kind: ControllerKind) -> Waveform {
    let ctrl = scenario::controller(kind, 4);
    let mut tb = builder
        .try_build(ctrl)
        .expect("sweep point must configure a valid testbench");
    tb.try_run_until(8e-6)
        .expect("sweep co-simulation must not diverge");
    assert_eq!(tb.short_circuits(), 0, "{}: short circuit", kind.label());
    tb.into_waveform()
}

/// Runs one independent simulation per (grid point, series) pair on
/// `pool` and regroups the results into x-ordered [`SweepPoint`]s.
///
/// Every grid cell is a fresh testbench with no shared state, and
/// [`Pool::par_map`] preserves input order, so the sweep result is
/// bit-identical for every thread count (`A4A_THREADS=1` runs the plain
/// sequential loop).
fn sweep_on(
    pool: &Pool,
    grid: &[f64],
    cell: impl Fn(f64, ControllerKind) -> f64 + Sync,
) -> Vec<SweepPoint> {
    let series = ControllerKind::paper_series();
    let tasks: Vec<(f64, ControllerKind)> = grid
        .iter()
        .flat_map(|&x| series.iter().map(move |&kind| (x, kind)))
        .collect();
    let ys = pool.par_map(tasks, |(x, kind)| cell(x, kind));
    grid.iter()
        .zip(ys.chunks(series.len()))
        .map(|(&x, y)| SweepPoint { x, y: y.to_vec() })
        .collect()
}

/// Figure 7a: peak inductor current (mA) for 1–10 µH coils at 6 Ω.
pub fn fig7a() -> Vec<SweepPoint> {
    fig7a_on(Pool::global(), &scenario::coil_grid())
}

/// [`fig7a`] on an explicit pool and coil grid (µH) — used by the
/// differential/golden tests and the `--quick` CI tier.
pub fn fig7a_on(pool: &Pool, grid: &[f64]) -> Vec<SweepPoint> {
    sweep_on(pool, grid, |l, kind| {
        let w = run_sweep_point(scenario::sweep_coil(l, 6.0), kind);
        metrics::peak_current(&w) * 1e3
    })
}

/// Figure 7b: peak inductor current (mA) for 3–15 Ω loads at 4.7 µH.
pub fn fig7b() -> Vec<SweepPoint> {
    fig7b_on(Pool::global(), &scenario::load_grid())
}

/// [`fig7b`] on an explicit pool and load grid (Ω).
pub fn fig7b_on(pool: &Pool, grid: &[f64]) -> Vec<SweepPoint> {
    sweep_on(pool, grid, |r, kind| {
        let w = run_sweep_point(scenario::sweep_load(r), kind);
        metrics::peak_current(&w) * 1e3
    })
}

/// Figure 7c: inductor ripple (AC) losses (µW) for 1–10 µH coils at
/// 6 Ω, measured over the steady window.
pub fn fig7c() -> Vec<SweepPoint> {
    fig7c_on(Pool::global(), &scenario::coil_grid())
}

/// [`fig7c`] on an explicit pool and coil grid (µH).
pub fn fig7c_on(pool: &Pool, grid: &[f64]) -> Vec<SweepPoint> {
    sweep_on(pool, grid, |l, kind| {
        let coil = CoilModel::coilcraft(l);
        let w = run_sweep_point(scenario::sweep_coil(l, 6.0), kind);
        let steady = w.window(3e-6, 8e-6);
        let ac: f64 = (0..4)
            .map(|k| {
                let a = metrics::ac_rms_current(&steady, k);
                a * a * coil.esr_hf
            })
            .sum();
        ac * 1e6
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        // Sync rows constant per condition, matching 2.5 periods.
        assert!((rows[0].ns[0] - 25.0).abs() < 0.1);
        assert!((rows[1].ns[0] - 7.5).abs() < 0.1);
        // Async row path-dependent and ~the paper's figures.
        let asy = &rows[4].ns;
        assert!((asy[0] - 1.87).abs() < 0.05, "HL {}", asy[0]);
        assert!((asy[1] - 1.02).abs() < 0.05, "UV {}", asy[1]);
        assert!((asy[2] - 1.18).abs() < 0.05, "OV {}", asy[2]);
        assert!((asy[3] - 0.75).abs() < 0.05, "OC {}", asy[3]);
        assert!((asy[4] - 0.31).abs() < 0.05, "ZC {}", asy[4]);
        let imp = table1_improvement(&rows);
        assert!(imp[4] > imp[0], "ZC gains the most, as in the paper");
        assert!(imp.iter().all(|&f| f > 3.0), "{imp:?}");
    }

    #[test]
    fn fig6_async_beats_sync_333() {
        let sync = fig6_run(ControllerKind::Sync(333.0));
        let asy = fig6_run(ControllerKind::Async);
        assert!(asy.ripple < sync.ripple, "{} vs {}", asy.ripple, sync.ripple);
        assert!(asy.peak < sync.peak, "{} vs {}", asy.peak, sync.peak);
        assert_eq!(asy.short_circuits, 0);
        assert_eq!(sync.short_circuits, 0);
    }
}
