//! Seeded scenario batches for the ablation studies, parallel-safe by
//! construction.
//!
//! Every batch derives one independent RNG seed per scenario from a
//! single *root seed* via a SplitMix64 split ([`scenario_seeds`]), so a
//! scenario's result is a pure function of (root seed, scenario index) —
//! never of which worker ran it or in what order. Batches run through
//! [`Pool::par_map`], which preserves input order, so the returned
//! vectors are bit-identical for every thread count. The
//! `tests/determinism.rs` suite locks this down across pools of 1/2/8
//! and across processes.

use a4a_a2a::{MetaParams, Wait};
use a4a_ctrl::{BuckController, Command, SyncController, SyncParams};
use a4a_rt::rng::splitmix64;
use a4a_rt::Pool;
use a4a_sim::Time;

/// The default root seed of the ablation batches.
pub const DEFAULT_ROOT_SEED: u64 = 0xA4A_5EED;

/// The root seed for this process: `A4A_PROP_SEED` (hex, `0x` prefix
/// optional — the same variable the property harness prints on
/// failure) when set, otherwise [`DEFAULT_ROOT_SEED`].
pub fn root_seed() -> u64 {
    match std::env::var("A4A_PROP_SEED") {
        Ok(v) => {
            let v = v.trim().trim_start_matches("0x");
            u64::from_str_radix(v, 16)
                .unwrap_or_else(|_| panic!("A4A_PROP_SEED={v:?} is not a hex u64"))
        }
        Err(_) => DEFAULT_ROOT_SEED,
    }
}

/// Splits `root` into `n` independent scenario seeds (SplitMix64
/// stream — the seed-derivation construction the xoshiro authors
/// recommend, and the one [`a4a_rt::Rng::from_seed`] expands).
pub fn scenario_seeds(root: u64, n: usize) -> Vec<u64> {
    let mut state = root;
    (0..n).map(|_| splitmix64(&mut state)).collect()
}

/// Measures the UV reaction latency (ns) of a synchronous controller at
/// `mhz` whose input synchroniser resolves metastable captures with
/// probability `p` and time constant `tau`; one scenario, one seed.
///
/// This is the paper's footnote-1 effect: a marginal capture can cost
/// another clock period.
pub fn sync_uv_latency(mhz: f64, p: f64, tau: Time, seed: u64) -> f64 {
    use a4a_analog::SensorKind;
    let meta = if p == 0.0 {
        MetaParams::disabled()
    } else {
        MetaParams::with_seed(p, tau, seed)
    };
    let params = SyncParams::at_mhz(mhz).with_meta(meta);
    let mut ctrl = SyncController::new(1, params);
    // Arm phase 0 and raise UV just after an edge.
    while ctrl
        .next_wakeup()
        .map(|w| w < Time::from_ns(30.0))
        .unwrap_or(false)
    {
        let w = ctrl.next_wakeup().expect("clocked");
        ctrl.on_wakeup(w);
        let _ = ctrl.take_commands();
    }
    let t0 = Time::from_ns(30.2);
    ctrl.on_sensor(t0, SensorKind::Uv, true);
    for _ in 0..60 {
        let w = ctrl.next_wakeup().expect("clocked");
        ctrl.on_wakeup(w);
        if let Some(cmd) = ctrl.take_commands().into_iter().find(|c| {
            matches!(
                c.command,
                Command::Gate {
                    value: true,
                    pmos: true,
                    ..
                }
            )
        }) {
            return cmd.time.as_ns() - t0.as_ns();
        }
    }
    f64::NAN
}

/// The synchroniser-metastability batch: `n` independent UV-latency
/// scenarios at 333 MHz, seeds split from `root`, run on `pool`.
/// Returns the per-scenario latencies in scenario order.
pub fn sync_metastability_batch(pool: &Pool, p: f64, root: u64, n: usize) -> Vec<f64> {
    let tau = Time::from_ns(1.0);
    pool.par_map(scenario_seeds(root, n), move |seed| {
        sync_uv_latency(333.0, p, tau, seed)
    })
}

/// One WAIT-element latch scenario: a fresh element with resolution
/// parameters (`p`, `tau`) and its own seed latches a marginal input;
/// returns the latch latency in ns.
pub fn wait_latch_latency(p: f64, tau: Time, seed: u64) -> f64 {
    let meta = if p == 0.0 {
        MetaParams::disabled()
    } else {
        MetaParams::with_seed(p, tau, seed)
    };
    let mut wait = Wait::with_meta(Time::from_ns(0.31), meta);
    let t = Time::from_ns(100.0);
    wait.set_req(t, true);
    wait.set_sig(t + Time::from_ns(1.0), true);
    let deadline = wait.next_deadline().expect("latched");
    (deadline - (t + Time::from_ns(1.0))).as_ns()
}

/// The metastability-tail batch: `n` independent WAIT latch scenarios
/// with seeds split from `root`, run on `pool`. Returns per-scenario
/// latch latencies in scenario order.
pub fn wait_metastability_batch(
    pool: &Pool,
    p: f64,
    tau: Time,
    root: u64,
    n: usize,
) -> Vec<f64> {
    pool.par_map(scenario_seeds(root, n), move |seed| {
        wait_latch_latency(p, tau, seed)
    })
}

/// Mean and worst of a latency batch (NaN-free inputs assumed).
pub fn batch_stats(latencies: &[f64]) -> (f64, f64) {
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let worst = latencies.iter().cloned().fold(f64::MIN, f64::max);
    (mean, worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_independent_of_count() {
        // Prefixes agree: asking for more scenarios never re-seeds the
        // earlier ones.
        let a = scenario_seeds(1, 8);
        let b = scenario_seeds(1, 16);
        assert_eq!(a[..], b[..8]);
        assert_ne!(scenario_seeds(1, 4), scenario_seeds(2, 4));
    }

    #[test]
    fn disabled_metastability_is_deterministic_nominal() {
        // p=0 scenarios ignore the seed entirely: every latency equals
        // the nominal 2.5-period reaction.
        let pool = Pool::new(1);
        let lat = sync_metastability_batch(&pool, 0.0, 42, 8);
        assert!(lat.iter().all(|&l| (l - lat[0]).abs() < 1e-9), "{lat:?}");
    }

    #[test]
    fn batch_is_identical_across_pools() {
        let p1 = Pool::new(1);
        let p4 = Pool::new(4);
        let a = sync_metastability_batch(&p1, 0.8, 7, 12);
        let b = sync_metastability_batch(&p4, 0.8, 7, 12);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        let a = wait_metastability_batch(&p1, 0.9, Time::from_ns(5.0), 7, 12);
        let b = wait_metastability_batch(&p4, 0.9, Time::from_ns(5.0), 7, 12);
        assert_eq!(bits(&a), bits(&b));
    }
}
