//! Plain-text table rendering and CSV emission.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::experiments::SweepPoint;

/// Renders a fixed-width table: header row plus data rows.
pub fn table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < cols {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    emit(&mut out, header);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        emit(&mut out, row);
    }
    out
}

/// Renders a sweep as a table with one series column per label.
pub fn sweep_table(x_name: &str, labels: &[String], points: &[SweepPoint]) -> String {
    let mut header = vec![x_name.to_string()];
    header.extend(labels.iter().cloned());
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![format!("{:.2}", p.x)];
            row.extend(p.y.iter().map(|v| format!("{v:.1}")));
            row
        })
        .collect();
    table(&header, &rows)
}

/// Renders a sweep as CSV.
pub fn sweep_csv(x_name: &str, labels: &[String], points: &[SweepPoint]) -> String {
    let mut out = String::new();
    out.push_str(x_name);
    for l in labels {
        out.push(',');
        out.push_str(l);
    }
    out.push('\n');
    for p in points {
        out.push_str(&format!("{:.4}", p.x));
        for v in &p.y {
            out.push_str(&format!(",{v:.4}"));
        }
        out.push('\n');
    }
    out
}

/// The output directory for regenerated artefacts: `A4A_RESULTS_DIR`
/// when set (the `--quick` CI tier points it at a scratch directory to
/// diff against the checked-in `results/`), otherwise `results/` at the
/// workspace root. Created if needed.
///
/// # Errors
///
/// Returns any I/O error from directory creation.
pub fn results_dir() -> io::Result<PathBuf> {
    let dir = match std::env::var_os("A4A_RESULTS_DIR") {
        Some(d) => PathBuf::from(d),
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    };
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes an artefact into `results/`, returning its path.
///
/// # Errors
///
/// Returns any I/O error from the write.
pub fn write_artifact(name: &str, contents: &str) -> io::Result<PathBuf> {
    let path = results_dir()?.join(name);
    fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let header = vec!["a".to_string(), "long".to_string()];
        let rows = vec![
            vec!["1".to_string(), "2".to_string()],
            vec!["100".to_string(), "x".to_string()],
        ];
        let t = table(&header, &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].ends_with("   2"));
    }

    #[test]
    fn sweep_csv_format() {
        let points = vec![SweepPoint {
            x: 1.0,
            y: vec![2.0, 3.0],
        }];
        let csv = sweep_csv("l", &["a".to_string(), "b".to_string()], &points);
        assert_eq!(csv.lines().next(), Some("l,a,b"));
        assert!(csv.contains("1.0000,2.0000,3.0000"));
    }
}
