//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§V).
//!
//! * [`experiments`] — the data producers: Table I reaction times,
//!   Figure 6 waveforms/metrics, the Figure 7a/7b/7c sweeps, and the
//!   ablation studies listed in DESIGN.md;
//! * [`ablation`] — the seeded scenario batches behind the `ablation`
//!   bin, each scenario's RNG split deterministically from a root seed
//!   so batches parallelise without changing results;
//! * [`report`] — plain-text table rendering and CSV emission into
//!   `results/`.
//!
//! The sweeps and batches run on [`a4a_rt::Pool::global`]: set
//! `A4A_THREADS` to control parallelism (`1` = the plain sequential
//! loops). Results are bit-identical for every thread count.
//!
//! Each `cargo run -p a4a-bench --bin <name>` regenerates one artefact;
//! `cargo bench` runs the engine performance benchmarks (state-graph
//! construction, minimisation, synthesis, SI verification, co-simulation
//! throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod experiments;
pub mod report;
