//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§V).
//!
//! * [`experiments`] — the data producers: Table I reaction times,
//!   Figure 6 waveforms/metrics, the Figure 7a/7b/7c sweeps, and the
//!   ablation studies listed in DESIGN.md;
//! * [`report`] — plain-text table rendering and CSV emission into
//!   `results/`.
//!
//! Each `cargo run -p a4a-bench --bin <name>` regenerates one artefact;
//! `cargo bench` runs the engine performance benchmarks (state-graph
//! construction, minimisation, synthesis, SI verification, co-simulation
//! throughput).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
