//! Golden-result regression suite: regenerates Table I and the Figure
//! 7a/7b/7c sweeps in-process and compares every cell against the
//! checked-in expected values (which mirror `results/*.csv`).
//!
//! The whole pipeline is deterministic, so the tolerances below are
//! tight — they only absorb formatting-level noise, not model drift. A
//! mismatch fails the test *and* prints a ready-to-paste replacement
//! for the expected-value block, so an intentional recalibration is a
//! copy-paste plus a `results/` regeneration away.

use a4a_bench::experiments::{fig7a, fig7b, fig7c, table1, SweepPoint};

/// Per-column absolute tolerances for Table I reaction times (ns),
/// columns HL/UV/OV/OC/ZC. The sync rows are closed-form; ASYNC is a
/// measured stimulus-response but still bit-deterministic.
const TOL_TABLE1: [f64; 5] = [0.005, 0.005, 0.005, 0.005, 0.005];

/// Per-column tolerances for the Figure 7a/7b peak currents (mA),
/// columns 100MHz/333MHz/666MHz/1GHz/ASYNC.
const TOL_PEAK_MA: [f64; 5] = [0.05, 0.05, 0.05, 0.05, 0.05];

/// Per-column tolerances for the Figure 7c ripple losses (µW). Losses
/// integrate i²R over the whole run, so the scale is larger.
const TOL_LOSS_UW: [f64; 5] = [1.0, 1.0, 1.0, 1.0, 1.0];

/// Table I, `results/table1.csv`: reaction time in ns per condition.
const EXPECTED_TABLE1: &[(&str, [f64; 5])] = &[
    ("100MHz", [25.000, 25.000, 25.000, 25.000, 25.000]),
    ("333MHz", [7.508, 7.508, 7.508, 7.508, 7.508]),
    ("666MHz", [3.754, 3.754, 3.754, 3.754, 3.754]),
    ("1GHz", [2.500, 2.500, 2.500, 2.500, 2.500]),
    ("ASYNC", [1.870, 1.020, 1.180, 0.750, 0.310]),
];

/// Figure 7a, `results/fig7a.csv`: peak inductor current (mA) over the
/// 1–10 µH coil grid at a 6 Ω load.
const EXPECTED_7A: &[(f64, [f64; 5])] = &[
    (1.0000, [391.8359, 339.4416, 324.4683, 314.2996, 307.9005]),
    (1.8000, [273.1133, 265.1313, 261.5682, 255.5265, 253.7166]),
    (2.2500, [254.9148, 251.4870, 248.3994, 243.9897, 242.3379]),
    (3.1000, [237.1193, 235.8671, 234.1802, 230.7614, 229.4483]),
    (4.7000, [227.9720, 222.5301, 221.4926, 219.9790, 218.2983]),
    (5.7000, [221.4015, 217.9170, 216.9021, 215.8278, 214.6716]),
    (6.8000, [214.9959, 214.2874, 213.4178, 212.6984, 211.6859]),
    (8.2000, [216.7976, 211.1736, 210.6611, 209.1963, 209.1425]),
    (10.0000, [212.4830, 208.5042, 207.9358, 207.2272, 206.8717]),
];

/// Figure 7b, `results/fig7b.csv`: peak inductor current (mA) over the
/// 3–15 Ω load grid at 4.7 µH.
const EXPECTED_7B: &[(f64, [f64; 5])] = &[
    (3.0000, [228.0970, 222.5685, 221.5694, 220.0656, 218.4936]),
    (6.0000, [227.9720, 222.5301, 221.4926, 219.9790, 218.2983]),
    (9.0000, [227.9291, 222.2424, 221.3022, 218.9711, 218.4320]),
    (12.0000, [227.9074, 222.7858, 221.1866, 219.9369, 218.4394]),
    (15.0000, [227.8944, 222.7005, 221.1166, 219.8798, 218.3727]),
];

/// Figure 7c, `results/fig7c.csv`: inductor ripple losses (µW) over the
/// 1–10 µH coil grid at a 6 Ω load.
const EXPECTED_7C: &[(f64, [f64; 5])] = &[
    (1.0000, [5810.9784, 2637.9108, 2341.8124, 2784.0296, 3181.1913]),
    (1.8000, [4859.7172, 4352.7426, 4483.1511, 5023.1072, 5616.1674]),
    (2.2500, [6431.1606, 5920.4072, 5827.5095, 5668.0288, 7113.7520]),
    (3.1000, [6928.9109, 7215.6552, 6322.9622, 7146.6774, 7599.7846]),
    (4.7000, [12708.2406, 7928.0375, 8692.7252, 6768.6400, 7786.4713]),
    (5.7000, [13541.1941, 9366.4187, 9506.0227, 10540.4216, 9601.9406]),
    (6.8000, [18256.2868, 13551.4669, 10100.4665, 9580.4302, 8992.9293]),
    (8.2000, [14947.4316, 12410.1220, 10422.5213, 10628.7177, 10384.2020]),
    (10.0000, [19100.1000, 13858.7136, 9796.5870, 11121.3410, 9441.2204]),
];

const SERIES: [&str; 5] = ["100MHz", "333MHz", "666MHz", "1GHz", "ASYNC"];

/// Renders a sweep as a ready-to-paste replacement for one of the
/// `EXPECTED_*` blocks above.
fn paste_block(name: &str, points: &[SweepPoint]) -> String {
    let mut s = format!("const {name}: &[(f64, [f64; 5])] = &[\n");
    for p in points {
        let ys: Vec<String> = p.y.iter().map(|v| format!("{v:.4}")).collect();
        s.push_str(&format!("    ({:.4}, [{}]),\n", p.x, ys.join(", ")));
    }
    s.push_str("];");
    s
}

/// Compares a regenerated sweep against its golden block; on any
/// out-of-tolerance cell, prints every offending cell plus the paste
/// block and panics.
fn check_sweep(
    name: &str,
    points: &[SweepPoint],
    expected: &[(f64, [f64; 5])],
    tol: &[f64; 5],
    unit: &str,
) {
    let mut errors = Vec::new();
    if points.len() != expected.len() {
        errors.push(format!(
            "{name}: row count {} != expected {}",
            points.len(),
            expected.len()
        ));
    }
    for (p, (x, ys)) in points.iter().zip(expected) {
        if (p.x - x).abs() > 1e-9 {
            errors.push(format!("{name}: grid point {} != expected {x}", p.x));
            continue;
        }
        for (col, ((got, want), t)) in p.y.iter().zip(ys).zip(tol).enumerate() {
            if !got.is_finite() {
                errors.push(format!("{name} x={x} {}: non-finite {got}", SERIES[col]));
            } else if (got - want).abs() > *t {
                errors.push(format!(
                    "{name} x={x} {}: got {got:.4} want {want:.4} (±{t}) {unit}",
                    SERIES[col]
                ));
            }
        }
    }
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("MISMATCH {e}");
        }
        eprintln!(
            "\nIf this change is intentional, replace the expected block with:\n\n{}\n\n\
             ...and regenerate results/ with `cargo run --release --bin {}`.",
            paste_block(name, points),
            name.trim_start_matches("EXPECTED_").to_lowercase().replace("7", "fig7")
        );
        panic!("{name}: {} golden cell(s) out of tolerance", errors.len());
    }
}

#[test]
fn table1_matches_golden() {
    let rows = table1();
    assert_eq!(rows.len(), EXPECTED_TABLE1.len(), "Table I row count");
    let mut errors = Vec::new();
    for (row, (label, ys)) in rows.iter().zip(EXPECTED_TABLE1) {
        assert_eq!(&row.label, label, "Table I row order");
        for (col, ((got, want), t)) in row.ns.iter().zip(ys).zip(&TOL_TABLE1).enumerate() {
            if !got.is_finite() || (got - want).abs() > *t {
                errors.push(format!(
                    "table1 {label} {}: got {got:.3} want {want:.3} (±{t}) ns",
                    ["HL", "UV", "OV", "OC", "ZC"][col]
                ));
            }
        }
    }
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("MISMATCH {e}");
        }
        let mut s = String::from("const EXPECTED_TABLE1: &[(&str, [f64; 5])] = &[\n");
        for row in &rows {
            let ys: Vec<String> = row.ns.iter().map(|v| format!("{v:.3}")).collect();
            s.push_str(&format!("    (\"{}\", [{}]),\n", row.label, ys.join(", ")));
        }
        s.push_str("];");
        eprintln!(
            "\nIf this change is intentional, replace the expected block with:\n\n{s}\n\n\
             ...and regenerate results/ with `cargo run --release --bin table1`."
        );
        panic!("table1: {} golden cell(s) out of tolerance", errors.len());
    }
}

#[test]
fn fig7a_matches_golden() {
    check_sweep("EXPECTED_7A", &fig7a(), EXPECTED_7A, &TOL_PEAK_MA, "mA");
}

#[test]
fn fig7b_matches_golden() {
    check_sweep("EXPECTED_7B", &fig7b(), EXPECTED_7B, &TOL_PEAK_MA, "mA");
}

#[test]
fn fig7c_matches_golden() {
    check_sweep("EXPECTED_7C", &fig7c(), EXPECTED_7C, &TOL_LOSS_UW, "µW");
}

/// The paper's headline claim, pinned as an invariant rather than a raw
/// number: the ASYNC controller's peak current is at or below every
/// synchronous series at every grid point of Fig. 7a/7b.
#[test]
fn async_dominates_sync_peaks() {
    for (fig, points) in [("fig7a", fig7a()), ("fig7b", fig7b())] {
        for p in &points {
            let async_peak = p.y[4];
            for (i, &sync_peak) in p.y[..4].iter().enumerate() {
                assert!(
                    async_peak <= sync_peak + 1.0,
                    "{fig} x={}: ASYNC {async_peak:.2} mA exceeds {} {sync_peak:.2} mA",
                    p.x,
                    SERIES[i]
                );
            }
        }
    }
}
