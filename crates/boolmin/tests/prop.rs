//! Property-based tests: Quine–McCluskey output is always semantically
//! exact, cube algebra obeys its laws.

use a4a_boolmin::{minimize, Cube, Expr, Minimize};
use a4a_rt::prop::{self, Gen, PropResult};
use a4a_rt::{prop_assert, prop_assert_eq};

/// Random partition of the 2^n minterm space into ON / OFF / DC.
fn partition(nvars: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut on = Vec::new();
    let mut off = Vec::new();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    for m in 0..(1u64 << nvars) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        match (state >> 33) % 3 {
            0 => on.push(m),
            1 => off.push(m),
            _ => {} // don't care
        }
    }
    (on, off)
}

/// The minimised cover is 1 on every ON minterm and 0 on every OFF
/// minterm, for arbitrary incompletely-specified functions.
#[test]
fn qm_is_exact() {
    prop::check("qm_is_exact", |g: &mut Gen| -> PropResult {
        let nvars = g.usize(1..7);
        let seed = g.any_u64();
        let (on, off) = partition(nvars, seed);
        let cover = minimize(&Minimize::new(nvars).on(&on).off(&off)).unwrap();
        prop_assert_eq!(cover.check(&on, &off), None);
        // And the expression form agrees everywhere.
        let expr = Expr::from_cover(&cover);
        for m in 0..(1u64 << nvars) {
            prop_assert_eq!(expr.eval(m), cover.eval(m));
        }
        Ok(())
    });
}

/// Every cube of the result is an implicant of ON ∪ DC (never covers
/// an OFF minterm).
#[test]
fn qm_cubes_avoid_off() {
    prop::check("qm_cubes_avoid_off", |g: &mut Gen| -> PropResult {
        let nvars = g.usize(1..7);
        let seed = g.any_u64();
        let (on, off) = partition(nvars, seed);
        let cover = minimize(&Minimize::new(nvars).on(&on).off(&off)).unwrap();
        for cube in cover.cubes() {
            for &m in &off {
                prop_assert!(!cube.covers_minterm(m));
            }
        }
        Ok(())
    });
}

/// Merging two cubes yields a cube covering exactly their union.
#[test]
fn merge_covers_union() {
    prop::check("merge_covers_union", |g: &mut Gen| -> PropResult {
        let nvars = g.usize(1..6);
        let (a, b) = (g.any_u64(), g.any_u64());
        let mask = (1u64 << nvars) - 1;
        let (a, b) = (a & mask, b & mask);
        let ca = Cube::minterm(nvars, a);
        let cb = Cube::minterm(nvars, b);
        if let Some(merged) = ca.merge(&cb) {
            for m in 0..=mask {
                let expected = m == a || m == b;
                prop_assert_eq!(merged.covers_minterm(m), expected, "m={:#b}", m);
            }
        } else {
            // No merge: the minterms differ in != 1 bit.
            prop_assert!((a ^ b).count_ones() != 1);
        }
        Ok(())
    });
}

/// Containment is consistent with minterm semantics.
#[test]
fn containment_semantics() {
    prop::check("containment_semantics", |g: &mut Gen| -> PropResult {
        let nvars = g.usize(1..5);
        let a = g.any_u64();
        let drop = g.usize(0..5);
        let mask = (1u64 << nvars) - 1;
        let small = Cube::minterm(nvars, a & mask);
        let big = small.with_free(drop % nvars);
        prop_assert!(big.contains(&small));
        for m in 0..=mask {
            if small.covers_minterm(m) {
                prop_assert!(big.covers_minterm(m));
            }
        }
        Ok(())
    });
}

/// from_cover/literal_count agree between Expr and Cover.
#[test]
fn expr_matches_cover() {
    prop::check("expr_matches_cover", |g: &mut Gen| -> PropResult {
        let nvars = g.usize(1..6);
        let seed = g.any_u64();
        let (on, off) = partition(nvars, seed);
        let cover = minimize(&Minimize::new(nvars).on(&on).off(&off)).unwrap();
        let expr = Expr::from_cover(&cover);
        prop_assert_eq!(expr.literal_count(), cover.literal_count());
        Ok(())
    });
}
