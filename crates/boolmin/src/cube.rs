use std::fmt;

/// A product term over up to 64 Boolean variables in positional-cube
/// notation.
///
/// Each variable occupies two bits: `01` = the variable must be 0 (negative
/// literal), `10` = must be 1 (positive literal), `11` = don't care (the
/// variable does not appear). The all-don't-care cube is the constant 1
/// function.
///
/// # Examples
///
/// ```
/// use a4a_boolmin::Cube;
///
/// // a & !c over 3 variables
/// let cube = Cube::full(3).with_positive(0).with_negative(2);
/// assert!(cube.covers_minterm(0b001));  // a=1, b=0, c=0
/// assert!(cube.covers_minterm(0b011));  // b is free
/// assert!(!cube.covers_minterm(0b101)); // c must be 0
/// assert_eq!(cube.literal_count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cube {
    bits: u128,
    nvars: u8,
}

const DC: u128 = 0b11;

impl Cube {
    /// The cube with no literals (covers every minterm): the constant 1.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 64`.
    pub fn full(nvars: usize) -> Cube {
        assert!(nvars <= 64, "at most 64 variables supported");
        let mut bits = 0u128;
        for i in 0..nvars {
            bits |= DC << (2 * i);
        }
        Cube {
            bits,
            nvars: nvars as u8,
        }
    }

    /// The cube covering exactly one minterm (all variables bound).
    ///
    /// Bit `i` of `minterm` gives the value of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 64`.
    pub fn minterm(nvars: usize, minterm: u64) -> Cube {
        assert!(nvars <= 64, "at most 64 variables supported");
        let mut bits = 0u128;
        for i in 0..nvars {
            let field = if (minterm >> i) & 1 == 1 { 0b10 } else { 0b01 };
            bits |= (field as u128) << (2 * i);
        }
        Cube {
            bits,
            nvars: nvars as u8,
        }
    }

    /// Number of variables in the cube's space.
    pub fn nvars(&self) -> usize {
        self.nvars as usize
    }

    fn field(&self, var: usize) -> u128 {
        (self.bits >> (2 * var)) & DC
    }

    fn with_field(mut self, var: usize, field: u128) -> Cube {
        assert!(var < self.nvars(), "variable index out of range");
        self.bits = (self.bits & !(DC << (2 * var))) | (field << (2 * var));
        self
    }

    /// Returns this cube with a positive literal on `var` (`var` must be
    /// 1).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn with_positive(self, var: usize) -> Cube {
        self.with_field(var, 0b10)
    }

    /// Returns this cube with a negative literal on `var` (`var` must be
    /// 0).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn with_negative(self, var: usize) -> Cube {
        self.with_field(var, 0b01)
    }

    /// Returns this cube with `var` freed (don't care).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn with_free(self, var: usize) -> Cube {
        self.with_field(var, DC)
    }

    /// The literal on `var`: `Some(true)` positive, `Some(false)`
    /// negative, `None` if the variable does not appear.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or the cube is empty in that
    /// variable.
    pub fn literal(&self, var: usize) -> Option<bool> {
        assert!(var < self.nvars(), "variable index out of range");
        match self.field(var) {
            0b10 => Some(true),
            0b01 => Some(false),
            0b11 => None,
            _ => panic!("empty cube has no literals"),
        }
    }

    /// Number of bound variables (literals).
    pub fn literal_count(&self) -> u32 {
        let mut count = 0;
        for i in 0..self.nvars() {
            if self.field(i) != DC {
                count += 1;
            }
        }
        count
    }

    /// Returns `true` if the cube covers `minterm`.
    pub fn covers_minterm(&self, minterm: u64) -> bool {
        for i in 0..self.nvars() {
            let bit = (minterm >> i) & 1;
            let needed = if bit == 1 { 0b10u128 } else { 0b01 };
            if self.field(i) & needed == 0 {
                return false;
            }
        }
        true
    }

    /// Returns `true` if every minterm of `other` is covered by `self`.
    pub fn contains(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.nvars, other.nvars);
        // self contains other iff other's allowed sets are subsets.
        self.bits & other.bits == other.bits
    }

    /// Attempts the Quine–McCluskey merge: if the cubes differ in exactly
    /// one variable where one is positive and the other negative (same
    /// literals elsewhere), returns the merged cube with that variable
    /// freed.
    pub fn merge(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.nvars, other.nvars);
        let diff = self.bits ^ other.bits;
        if diff == 0 {
            return None;
        }
        // The differing bits must be confined to one 2-bit field and the
        // union of the two fields must be 11 (one 01, other 10).
        let low = diff.trailing_zeros() as usize / 2;
        if diff & !(DC << (2 * low)) != 0 {
            return None;
        }
        let fa = self.field(low);
        let fb = other.field(low);
        if fa | fb != DC || fa == DC || fb == DC {
            return None;
        }
        Some(self.with_free(low))
    }

    /// Evaluates the cube as a product term on an assignment.
    pub fn eval(&self, assignment: u64) -> bool {
        self.covers_minterm(assignment)
    }

    /// Bitset of free (don't-care) variables. Two cubes can only QM-merge
    /// when their free masks agree.
    pub fn free_mask(&self) -> u64 {
        let mut mask = 0u64;
        for i in 0..self.nvars() {
            if self.field(i) == DC {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Number of positive literals; cubes differing by one QM merge step
    /// have counts that differ by exactly one.
    pub fn positive_count(&self) -> u32 {
        let mut count = 0;
        for i in 0..self.nvars() {
            if self.field(i) == 0b10 {
                count += 1;
            }
        }
        count
    }

    /// The raw positional-cube encoding — a total, collision-free sort
    /// key over cubes of one variable space (the minimiser's sorted-vec
    /// dedup orders generations by it).
    pub fn key(&self) -> u128 {
        self.bits
    }

    /// Iterates over (variable, positive?) literal pairs.
    pub fn literals(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        (0..self.nvars()).filter_map(move |i| self.literal(i).map(|pos| (i, pos)))
    }

    /// Renders with variable names: `a b' d`.
    pub fn format_with(&self, names: &[String]) -> String {
        let parts: Vec<String> = self
            .literals()
            .map(|(i, pos)| {
                let n = names.get(i).map(String::as_str).unwrap_or("?");
                if pos {
                    n.to_string()
                } else {
                    format!("{n}'")
                }
            })
            .collect();
        if parts.is_empty() {
            "1".to_string()
        } else {
            parts.join(" ")
        }
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.nvars()).rev() {
            let c = match self.field(i) {
                0b01 => '0',
                0b10 => '1',
                0b11 => '-',
                _ => '!',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_cube_covers_only_itself() {
        let c = Cube::minterm(4, 0b1010);
        assert!(c.covers_minterm(0b1010));
        for m in 0..16u64 {
            assert_eq!(c.covers_minterm(m), m == 0b1010);
        }
        assert_eq!(c.literal_count(), 4);
    }

    #[test]
    fn full_cube_is_tautology() {
        let c = Cube::full(3);
        for m in 0..8u64 {
            assert!(c.covers_minterm(m));
        }
        assert_eq!(c.literal_count(), 0);
        assert_eq!(c.to_string(), "---");
    }

    #[test]
    fn literal_accessors() {
        let c = Cube::full(3).with_positive(0).with_negative(2);
        assert_eq!(c.literal(0), Some(true));
        assert_eq!(c.literal(1), None);
        assert_eq!(c.literal(2), Some(false));
        assert_eq!(c.literals().collect::<Vec<_>>(), vec![(0, true), (2, false)]);
        assert_eq!(c.to_string(), "0-1");
    }

    #[test]
    fn containment() {
        let big = Cube::full(3).with_positive(0);
        let small = Cube::full(3).with_positive(0).with_negative(1);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
    }

    #[test]
    fn qm_merge() {
        let a = Cube::minterm(3, 0b000);
        let b = Cube::minterm(3, 0b001);
        let merged = a.merge(&b).expect("adjacent minterms merge");
        assert_eq!(merged.to_string(), "00-");
        assert!(merged.covers_minterm(0b000) && merged.covers_minterm(0b001));

        let c = Cube::minterm(3, 0b011);
        assert_eq!(a.merge(&c), None, "distance 2, no merge");
        assert_eq!(a.merge(&a), None, "identical cubes do not merge");
    }

    #[test]
    fn merge_requires_same_dc_pattern() {
        let a = Cube::full(3).with_positive(0); // --1
        let b = Cube::full(3).with_negative(1); // -0-
        assert_eq!(a.merge(&b), None);
        let c = Cube::full(3).with_negative(0); // --0
        assert_eq!(a.merge(&c).unwrap().to_string(), "---");
    }

    #[test]
    fn format_with_names() {
        let names: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let c = Cube::full(3).with_positive(0).with_negative(2);
        assert_eq!(c.format_with(&names), "a c'");
        assert_eq!(Cube::full(3).format_with(&names), "1");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        let _ = Cube::full(2).with_positive(2);
    }
}
