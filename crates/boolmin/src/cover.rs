use std::fmt;

use crate::Cube;

/// A sum-of-products cover: the OR of a set of [`Cube`]s.
///
/// # Examples
///
/// ```
/// use a4a_boolmin::{Cover, Cube};
///
/// let mut cover = Cover::new(2);
/// cover.push(Cube::full(2).with_positive(0)); // a
/// cover.push(Cube::full(2).with_positive(1)); // b
/// assert!(cover.eval(0b01) && cover.eval(0b10) && cover.eval(0b11));
/// assert!(!cover.eval(0b00));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    nvars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant 0) over `nvars` variables.
    pub fn new(nvars: usize) -> Cover {
        Cover {
            nvars,
            cubes: Vec::new(),
        }
    }

    /// A cover holding exactly the given minterms.
    pub fn from_minterms(nvars: usize, minterms: &[u64]) -> Cover {
        Cover {
            nvars,
            cubes: minterms.iter().map(|&m| Cube::minterm(nvars, m)).collect(),
        }
    }

    /// Number of variables in the cover's space.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of cubes.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Returns `true` when the cover has no cubes (constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Adds a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube's variable count disagrees with the cover's.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.nvars(), self.nvars, "cube/cover variable mismatch");
        self.cubes.push(cube);
    }

    /// Evaluates the cover on an assignment.
    pub fn eval(&self, assignment: u64) -> bool {
        self.cubes.iter().any(|c| c.covers_minterm(assignment))
    }

    /// Total number of literals over all cubes (the classic two-level
    /// cost function).
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Removes cubes that are single-cube-contained in another cube of
    /// the cover.
    pub fn absorb(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            #[allow(clippy::needless_range_loop)]
            for j in 0..self.cubes.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if self.cubes[i].contains(&self.cubes[j]) {
                    keep[j] = false;
                }
            }
        }
        let mut idx = 0;
        self.cubes.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Checks that the cover is 1 on every minterm of `on` and 0 on every
    /// minterm of `off`; returns the first counterexample as
    /// `(minterm, expected)` if any.
    pub fn check(&self, on: &[u64], off: &[u64]) -> Option<(u64, bool)> {
        for &m in on {
            if !self.eval(m) {
                return Some((m, true));
            }
        }
        for &m in off {
            if self.eval(m) {
                return Some((m, false));
            }
        }
        None
    }

    /// Renders with variable names, e.g. `a b' + c`.
    pub fn format_with(&self, names: &[String]) -> String {
        if self.cubes.is_empty() {
            return "0".to_string();
        }
        self.cubes
            .iter()
            .map(|c| c.format_with(names))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        let parts: Vec<String> = self.cubes.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join(" + "))
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty (the variable count would be
    /// unknown) or the cubes disagree on variable count.
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Cover {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let nvars = cubes
            .first()
            .expect("cannot collect an empty iterator into a Cover")
            .nvars();
        let mut cover = Cover::new(nvars);
        for c in cubes {
            cover.push(c);
        }
        cover
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_counts() {
        let mut cover = Cover::new(3);
        cover.push(Cube::full(3).with_positive(0).with_negative(1));
        cover.push(Cube::full(3).with_positive(2));
        assert_eq!(cover.cube_count(), 2);
        assert_eq!(cover.literal_count(), 3);
        assert!(cover.eval(0b001)); // a=1 b=0
        assert!(cover.eval(0b100)); // c=1
        assert!(!cover.eval(0b010));
    }

    #[test]
    fn from_minterms_matches_exactly() {
        let cover = Cover::from_minterms(3, &[1, 4, 6]);
        for m in 0..8u64 {
            assert_eq!(cover.eval(m), [1u64, 4, 6].contains(&m));
        }
    }

    #[test]
    fn absorb_removes_contained() {
        let mut cover = Cover::new(2);
        cover.push(Cube::full(2).with_positive(0));
        cover.push(Cube::full(2).with_positive(0).with_positive(1));
        cover.push(Cube::full(2).with_negative(0));
        cover.absorb();
        assert_eq!(cover.cube_count(), 2);
    }

    #[test]
    fn check_finds_counterexamples() {
        let cover = Cover::from_minterms(2, &[0b01]);
        assert_eq!(cover.check(&[0b01], &[0b00]), None);
        assert_eq!(cover.check(&[0b10], &[]), Some((0b10, true)));
        assert_eq!(cover.check(&[], &[0b01]), Some((0b01, false)));
    }

    #[test]
    fn display_and_format() {
        let names: Vec<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let mut cover = Cover::new(2);
        assert_eq!(cover.format_with(&names), "0");
        cover.push(Cube::full(2).with_positive(0));
        cover.push(Cube::full(2).with_negative(1));
        assert_eq!(cover.format_with(&names), "a + b'");
        assert_eq!(cover.to_string(), "-1 + 0-");
    }

    #[test]
    fn collect_from_iterator() {
        let cover: Cover = [Cube::full(2), Cube::minterm(2, 1)].into_iter().collect();
        assert_eq!(cover.cube_count(), 2);
        assert_eq!(cover.nvars(), 2);
    }

    #[test]
    #[should_panic(expected = "variable mismatch")]
    fn mismatched_cube_panics() {
        let mut cover = Cover::new(2);
        cover.push(Cube::full(3));
    }
}
