//! Quine–McCluskey prime-implicant generation and Petrick exact cover
//! selection, with a greedy fallback for large instances.

use std::error::Error;
use std::fmt;

use crate::{Cover, Cube};

/// Problem description for [`minimize`].
///
/// The ON-set and OFF-set are lists of minterms (bit `i` = variable `i`);
/// every minterm in neither list is a don't-care. Instances are bounded
/// to 18 variables because don't-care enumeration walks the full minterm
/// space.
#[derive(Debug, Clone)]
pub struct Minimize<'a> {
    nvars: usize,
    on: &'a [u64],
    off: &'a [u64],
    exact_limit: usize,
}

impl<'a> Minimize<'a> {
    /// Creates a problem over `nvars` variables with empty ON/OFF sets.
    pub fn new(nvars: usize) -> Self {
        Minimize {
            nvars,
            on: &[],
            off: &[],
            exact_limit: 24,
        }
    }

    /// Sets the ON-set minterms.
    pub fn on(mut self, on: &'a [u64]) -> Self {
        self.on = on;
        self
    }

    /// Sets the OFF-set minterms.
    pub fn off(mut self, off: &'a [u64]) -> Self {
        self.off = off;
        self
    }

    /// Sets the Petrick exact-cover budget: problems whose cyclic core has
    /// more rows than this fall back to a greedy cover (default 24).
    pub fn exact_limit(mut self, limit: usize) -> Self {
        self.exact_limit = limit;
        self
    }
}

/// Errors raised by [`minimize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinimizeError {
    /// A minterm appears in both the ON-set and the OFF-set.
    Contradiction {
        /// The offending minterm.
        minterm: u64,
    },
    /// The instance has too many variables for don't-care enumeration.
    TooManyVariables {
        /// The offending count.
        nvars: usize,
    },
}

impl fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinimizeError::Contradiction { minterm } => {
                write!(f, "minterm {minterm:#b} is both ON and OFF")
            }
            MinimizeError::TooManyVariables { nvars } => {
                write!(f, "{nvars} variables exceed the 18-variable enumeration bound")
            }
        }
    }
}

impl Error for MinimizeError {}

/// Minimises an incompletely specified Boolean function into a
/// sum-of-products cover.
///
/// The result covers every ON minterm, avoids every OFF minterm, and uses
/// prime implicants of the function `ON ∪ DC`. Cover selection is exact
/// (Petrick's method, minimising cube count then literal count) when the
/// cyclic core is small, greedy otherwise.
///
/// # Errors
///
/// * [`MinimizeError::Contradiction`] when ON and OFF overlap;
/// * [`MinimizeError::TooManyVariables`] beyond 18 variables.
pub fn minimize(problem: &Minimize<'_>) -> Result<Cover, MinimizeError> {
    let nvars = problem.nvars;
    if nvars > 18 {
        return Err(MinimizeError::TooManyVariables { nvars });
    }
    let mut on_list: Vec<u64> = problem.on.to_vec();
    on_list.sort_unstable();
    on_list.dedup();
    let mut off_list: Vec<u64> = problem.off.to_vec();
    off_list.sort_unstable();
    off_list.dedup();
    // Sorted-list intersection: reports the *smallest* contradictory
    // minterm (hash-set iteration order used to pick an arbitrary one).
    {
        let (mut i, mut j) = (0usize, 0usize);
        while i < on_list.len() && j < off_list.len() {
            match on_list[i].cmp(&off_list[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    return Err(MinimizeError::Contradiction {
                        minterm: on_list[i],
                    })
                }
            }
        }
    }
    if on_list.is_empty() {
        return Ok(Cover::new(nvars));
    }

    // Care-set primes: start from all non-OFF minterms (ON ∪ DC) and merge.
    // Cubes are bucketed by (free-variable mask, positive-literal count);
    // a QM merge only ever pairs cubes in adjacent buckets of the same
    // free mask, which keeps the pass near-linear in practice. Each
    // generation lives in a sorted `Vec` — sorting by (bucket, raw key)
    // makes the buckets contiguous runs, duplicates adjacent, and the
    // whole pass allocation-light; the `HashSet` churn this replaces
    // rebuilt three hash tables per generation.
    let space = 1u64 << nvars;
    let mut current: Vec<Cube> = (0..space)
        .filter(|m| off_list.binary_search(m).is_err())
        .map(|m| Cube::minterm(nvars, m))
        .collect();
    let mut next: Vec<Cube> = Vec::new();
    let mut merged: Vec<bool> = Vec::new();
    let mut primes: Vec<Cube> = Vec::new();
    while !current.is_empty() {
        current.sort_by_cached_key(|c| (c.free_mask(), c.positive_count(), c.key()));
        current.dedup_by_key(|c| c.key());
        // Contiguous (free mask, positive count) runs.
        let mut buckets: Vec<((u64, u32), usize, usize)> = Vec::new();
        let mut start = 0usize;
        for i in 1..=current.len() {
            let tag = |c: &Cube| (c.free_mask(), c.positive_count());
            if i == current.len() || tag(&current[i]) != tag(&current[start]) {
                buckets.push((tag(&current[start]), start, i));
                start = i;
            }
        }
        merged.clear();
        merged.resize(current.len(), false);
        next.clear();
        for (bi, &((mask, ones), lo, hi)) in buckets.iter().enumerate() {
            // The partner bucket, if present, is the next run with the
            // same free mask (runs are sorted by (mask, ones)).
            let Some(&(_, ulo, uhi)) = buckets
                .get(bi + 1)
                .filter(|&&((m, o), _, _)| m == mask && o == ones + 1)
            else {
                continue;
            };
            for a in lo..hi {
                for b in ulo..uhi {
                    if let Some(m) = current[a].merge(&current[b]) {
                        merged[a] = true;
                        merged[b] = true;
                        next.push(m);
                    }
                }
            }
        }
        primes.extend(
            current
                .iter()
                .zip(&merged)
                .filter(|&(_, &was_merged)| !was_merged)
                .map(|(&c, _)| c),
        );
        std::mem::swap(&mut current, &mut next);
    }

    // Keep only primes that cover at least one ON minterm.
    primes.retain(|p| on_list.iter().any(|&m| p.covers_minterm(m)));
    primes.sort_by_cached_key(|p| (p.literal_count(), format!("{p}")));

    // Essential primes first. The two minterm work lists swap roles each
    // round instead of reallocating, and the covering scan stops at the
    // second hit — only a unique coverer is ever looked at again.
    let mut chosen: Vec<Cube> = Vec::new();
    let mut uncovered: Vec<u64> = on_list.clone();
    let mut still_uncovered: Vec<u64> = Vec::new();
    loop {
        let mut essential_found = false;
        for &m in &uncovered {
            let mut count = 0u32;
            let mut only = 0usize;
            for (i, p) in primes.iter().enumerate() {
                if p.covers_minterm(m) {
                    count += 1;
                    if count > 1 {
                        break;
                    }
                    only = i;
                }
            }
            if count == 1 {
                let p = primes[only];
                if !chosen.contains(&p) {
                    chosen.push(p);
                    essential_found = true;
                }
            }
        }
        still_uncovered.clear();
        for &m in &uncovered {
            if !chosen.iter().any(|p| p.covers_minterm(m)) {
                still_uncovered.push(m);
            }
        }
        std::mem::swap(&mut uncovered, &mut still_uncovered);
        if !essential_found || uncovered.is_empty() {
            break;
        }
    }

    if !uncovered.is_empty() {
        // Cyclic core: candidates are primes covering something uncovered.
        let candidates: Vec<Cube> = primes
            .iter()
            .copied()
            .filter(|p| uncovered.iter().any(|&m| p.covers_minterm(m)))
            .collect();
        let extra = if uncovered.len() <= problem.exact_limit && candidates.len() <= 20 {
            petrick(&candidates, &uncovered)
        } else {
            greedy(&candidates, &uncovered)
        };
        chosen.extend(extra);
    }

    let mut cover = Cover::new(nvars);
    for c in chosen {
        cover.push(c);
    }
    cover.absorb();
    debug_assert_eq!(cover.check(problem.on, problem.off), None);
    Ok(cover)
}

/// Petrick's method: exhaustively finds the subset of `candidates`
/// covering all `minterms` with minimal (cube count, literal count).
fn petrick(candidates: &[Cube], minterms: &[u64]) -> Vec<Cube> {
    let n = candidates.len();
    debug_assert!(n <= 20);
    let mut best: Option<(u32, u32, u32)> = None; // (count, literals, mask)
    'outer: for mask in 1u32..(1 << n) {
        let count = mask.count_ones();
        if let Some((bc, _, _)) = best {
            if count > bc {
                continue;
            }
        }
        for &m in minterms {
            let covered = (0..n)
                .any(|i| mask & (1 << i) != 0 && candidates[i].covers_minterm(m));
            if !covered {
                continue 'outer;
            }
        }
        let literals: u32 = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| candidates[i].literal_count())
            .sum();
        let better = match best {
            None => true,
            Some((bc, bl, _)) => (count, literals) < (bc, bl),
        };
        if better {
            best = Some((count, literals, mask));
        }
    }
    let (_, _, mask) = best.expect("candidates jointly cover the minterms");
    (0..n)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| candidates[i])
        .collect()
}

/// Greedy set cover: repeatedly picks the prime covering the most
/// remaining minterms (ties broken toward fewer literals).
fn greedy(candidates: &[Cube], minterms: &[u64]) -> Vec<Cube> {
    let mut remaining: Vec<u64> = minterms.to_vec();
    let mut chosen = Vec::new();
    while !remaining.is_empty() {
        let best = candidates
            .iter()
            .max_by_key(|p| {
                let covered = remaining.iter().filter(|&&m| p.covers_minterm(m)).count();
                (covered, std::cmp::Reverse(p.literal_count()))
            })
            .copied()
            .expect("candidates jointly cover the minterms");
        remaining.retain(|&m| !best.covers_minterm(m));
        chosen.push(best);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_equal(nvars: usize, on: &[u64], off: &[u64], cover: &Cover) {
        for m in 0..(1u64 << nvars) {
            if on.contains(&m) {
                assert!(cover.eval(m), "minterm {m:#b} should be ON");
            }
            if off.contains(&m) {
                assert!(!cover.eval(m), "minterm {m:#b} should be OFF");
            }
        }
    }

    #[test]
    fn xor_is_two_cubes() {
        let on = [0b01u64, 0b10];
        let off = [0b00u64, 0b11];
        let cover = minimize(&Minimize::new(2).on(&on).off(&off)).unwrap();
        assert_eq!(cover.cube_count(), 2);
        brute_force_equal(2, &on, &off, &cover);
    }

    #[test]
    fn and_is_one_cube() {
        let on = [0b11u64];
        let off = [0b00, 0b01, 0b10];
        let cover = minimize(&Minimize::new(2).on(&on).off(&off)).unwrap();
        assert_eq!(cover.cube_count(), 1);
        assert_eq!(cover.literal_count(), 2);
    }

    #[test]
    fn dont_cares_shrink_cover() {
        // f = 1 on {3}, 0 on {0}; minterms 1,2 are DC -> cover can be a
        // single literal.
        let on = [0b11u64];
        let off = [0b00u64];
        let cover = minimize(&Minimize::new(2).on(&on).off(&off)).unwrap();
        assert_eq!(cover.cube_count(), 1);
        assert_eq!(cover.literal_count(), 1);
        brute_force_equal(2, &on, &off, &cover);
    }

    #[test]
    fn constant_one_when_off_empty() {
        let on = [0u64, 1, 2, 3];
        let cover = minimize(&Minimize::new(2).on(&on).off(&[])).unwrap();
        assert_eq!(cover.cube_count(), 1);
        assert_eq!(cover.literal_count(), 0);
    }

    #[test]
    fn constant_zero_when_on_empty() {
        let cover = minimize(&Minimize::new(2).on(&[]).off(&[0, 1])).unwrap();
        assert!(cover.is_empty());
        assert!(!cover.eval(3));
    }

    #[test]
    fn contradiction_detected() {
        let err = minimize(&Minimize::new(2).on(&[1]).off(&[1])).unwrap_err();
        assert_eq!(err, MinimizeError::Contradiction { minterm: 1 });
    }

    #[test]
    fn too_many_variables_rejected() {
        let err = minimize(&Minimize::new(19)).unwrap_err();
        assert_eq!(err, MinimizeError::TooManyVariables { nvars: 19 });
    }

    #[test]
    fn classic_4var_example() {
        // f(a,b,c,d) with ON = {4,8,10,11,12,15}, DC = {9,14} —
        // textbook QM example; minimal cover has 3 cubes? The known
        // result: f = bc'd' + ab' + ac (with DCs used).
        let on = [4u64, 8, 10, 11, 12, 15];
        let all: Vec<u64> = (0..16).collect();
        let dc = [9u64, 14];
        let off: Vec<u64> = all
            .iter()
            .copied()
            .filter(|m| !on.contains(m) && !dc.contains(m))
            .collect();
        let cover = minimize(&Minimize::new(4).on(&on).off(&off)).unwrap();
        brute_force_equal(4, &on, &off, &cover);
        assert!(cover.cube_count() <= 3, "got {}", cover);
    }

    #[test]
    fn majority_function() {
        // maj(a,b,c): minimal SOP = ab + ac + bc.
        let on = [0b011u64, 0b101, 0b110, 0b111];
        let off = [0b000u64, 0b001, 0b010, 0b100];
        let cover = minimize(&Minimize::new(3).on(&on).off(&off)).unwrap();
        assert_eq!(cover.cube_count(), 3);
        assert_eq!(cover.literal_count(), 6);
        brute_force_equal(3, &on, &off, &cover);
    }

    #[test]
    fn greedy_fallback_still_correct() {
        // Force the greedy path with a tiny exact limit.
        let on = [0b011u64, 0b101, 0b110, 0b111];
        let off = [0b000u64, 0b001, 0b010, 0b100];
        let cover = minimize(&Minimize::new(3).on(&on).off(&off).exact_limit(0)).unwrap();
        brute_force_equal(3, &on, &off, &cover);
    }

    #[test]
    fn single_minterm_functions() {
        for m in 0..8u64 {
            let off: Vec<u64> = (0..8).filter(|&x| x != m).collect();
            let cover = minimize(&Minimize::new(3).on(&[m]).off(&off)).unwrap();
            brute_force_equal(3, &[m], &off, &cover);
            assert_eq!(cover.cube_count(), 1);
            assert_eq!(cover.literal_count(), 3);
        }
    }
}
