//! Two-level Boolean minimisation for the speed-independent logic
//! synthesiser.
//!
//! The synthesiser extracts, for every implemented signal, an ON-set and
//! an OFF-set of reachable state codes; everything else is a don't-care.
//! This crate turns those sets into minimal sum-of-products covers:
//!
//! * [`Cube`] — a product term in positional-cube notation;
//! * [`Cover`] — a set of cubes with evaluation and containment helpers;
//! * [`minimize`] — Quine–McCluskey prime generation followed by Petrick
//!   exact covering (greedy fallback for large instances);
//! * [`Expr`] — a Boolean expression AST for rendering the result as a
//!   complex gate.
//!
//! # Examples
//!
//! Minimise `f(a,b) = a xor b` with no don't-cares — it is already
//! minimal, two cubes:
//!
//! ```
//! use a4a_boolmin::{minimize, Minimize};
//!
//! let on = [0b01u64, 0b10]; // a=1,b=0 and a=0,b=1
//! let off = [0b00u64, 0b11];
//! let cover = minimize(&Minimize::new(2).on(&on).off(&off))?;
//! assert_eq!(cover.cube_count(), 2);
//! assert!(cover.eval(0b01) && cover.eval(0b10));
//! assert!(!cover.eval(0b00) && !cover.eval(0b11));
//! # Ok::<(), a4a_boolmin::MinimizeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cover;
mod cube;
mod espresso;
mod expr;
mod qm;

pub use cover::Cover;
pub use espresso::espresso;
pub use cube::Cube;
pub use expr::Expr;
pub use qm::{minimize, Minimize, MinimizeError};
