//! Espresso-style heuristic two-level minimisation.
//!
//! Quine–McCluskey ([`crate::minimize`]) enumerates the full minterm
//! space to account for don't-cares, which caps it at ~18 variables.
//! This module minimises directly on the ON/OFF cube lists — the
//! classic EXPAND / IRREDUNDANT loop — so it scales to the wide state
//! codes of composed controllers. The result is a correct cover (1 on
//! every ON minterm, 0 on every OFF minterm) that is usually minimal
//! but not guaranteed to be; the synthesiser uses it when exact QM is
//! out of reach.

use crate::{Cover, Cube, MinimizeError};

/// Heuristically minimises a function given as ON-set and OFF-set
/// minterm lists (everything else is a don't-care).
///
/// # Errors
///
/// Returns [`MinimizeError::Contradiction`] when a minterm appears in
/// both lists. There is no variable-count bound: complexity is
/// `O(|on| · |off| · n)` per pass.
///
/// # Examples
///
/// ```
/// use a4a_boolmin::espresso;
///
/// // f(a,b) = a xor b, fully specified.
/// let cover = espresso(2, &[0b01, 0b10], &[0b00, 0b11])?;
/// assert_eq!(cover.check(&[0b01, 0b10], &[0b00, 0b11]), None);
/// # Ok::<(), a4a_boolmin::MinimizeError>(())
/// ```
pub fn espresso(nvars: usize, on: &[u64], off: &[u64]) -> Result<Cover, MinimizeError> {
    assert!(nvars <= 64, "at most 64 variables");
    for &m in on {
        if off.contains(&m) {
            return Err(MinimizeError::Contradiction { minterm: m });
        }
    }
    if on.is_empty() {
        return Ok(Cover::new(nvars));
    }

    // Start from the ON minterms as 0-cubes and expand each against the
    // OFF-set.
    let mut cubes: Vec<Cube> = on.iter().map(|&m| Cube::minterm(nvars, m)).collect();
    for cube in &mut cubes {
        *cube = expand(*cube, off, nvars);
    }
    // Irredundant: drop cubes whose ON minterms are covered elsewhere.
    let cover = irredundant(cubes, on, nvars);
    debug_assert_eq!(cover.check(on, off), None);
    Ok(cover)
}

/// Expands a cube variable by variable (raising literals to don't-care)
/// while it stays disjoint from the OFF-set. Variable order is chosen
/// greedily: try the variable whose raise frees the most OFF-distance
/// first (approximated by simple index order with a second pass, which
/// is cheap and works well on control functions).
fn expand(mut cube: Cube, off: &[u64], nvars: usize) -> Cube {
    // Two passes: raising one literal can unlock another.
    for _ in 0..2 {
        for var in 0..nvars {
            if cube.literal(var).is_none() {
                continue;
            }
            let candidate = cube.with_free(var);
            if off.iter().all(|&m| !candidate.covers_minterm(m)) {
                cube = candidate;
            }
        }
    }
    cube
}

/// Selects an irredundant subset of `cubes` still covering every ON
/// minterm, preferring large (few-literal) cubes.
fn irredundant(mut cubes: Vec<Cube>, on: &[u64], _nvars: usize) -> Cover {
    cubes.sort_by_key(Cube::literal_count);
    cubes.dedup();
    let mut chosen: Vec<Cube> = Vec::new();
    let mut uncovered: Vec<u64> = on.to_vec();
    // Greedy: repeatedly take the cube covering the most uncovered ON
    // minterms.
    while !uncovered.is_empty() {
        let (best_idx, _) = cubes
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    i,
                    uncovered.iter().filter(|&&m| c.covers_minterm(m)).count(),
                )
            })
            .max_by_key(|&(i, n)| (n, std::cmp::Reverse(cubes[i].literal_count()), usize::MAX - i))
            .expect("cubes cover the ON set by construction");
        let best = cubes[best_idx];
        uncovered.retain(|&m| !best.covers_minterm(m));
        chosen.push(best);
    }
    let mut cover = Cover::new(chosen[0].nvars());
    for c in chosen {
        cover.push(c);
    }
    cover.absorb();
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{minimize, Minimize};

    fn exhaustive_check(_nvars: usize, on: &[u64], off: &[u64], cover: &Cover) {
        for &m in on {
            assert!(cover.eval(m), "ON minterm {m:#b} missed");
        }
        for &m in off {
            assert!(!cover.eval(m), "OFF minterm {m:#b} covered");
        }
    }

    #[test]
    fn matches_qm_on_small_functions() {
        // Over all 3-variable partitions with a fixed pattern: espresso
        // must be correct; compare cube counts loosely against QM.
        for seed in 0..50u64 {
            let mut on = Vec::new();
            let mut off = Vec::new();
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            for m in 0..8u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                match (state >> 30) % 3 {
                    0 => on.push(m),
                    1 => off.push(m),
                    _ => {}
                }
            }
            if on.is_empty() {
                continue;
            }
            let heur = espresso(3, &on, &off).unwrap();
            exhaustive_check(3, &on, &off, &heur);
            let exact = minimize(&Minimize::new(3).on(&on).off(&off)).unwrap();
            assert!(
                heur.cube_count() <= exact.cube_count() + 2,
                "seed {seed}: heuristic {} vs exact {}",
                heur.cube_count(),
                exact.cube_count()
            );
        }
    }

    #[test]
    fn handles_wide_functions_beyond_qm() {
        // 30 variables: f = 1 when the low 4 bits equal 0b1010,
        // 0 on a scattered OFF sample. QM cannot enumerate this space.
        let nvars = 30;
        let on: Vec<u64> = (0..20)
            .map(|k| 0b1010 | (k << 7) | (1 << 25))
            .collect();
        let off: Vec<u64> = (0..20).map(|k| 0b0110 | (k << 9)).collect();
        let cover = espresso(nvars, &on, &off).unwrap();
        exhaustive_check(nvars, &on, &off, &cover);
        assert!(cover.cube_count() <= on.len());
    }

    #[test]
    fn fully_specified_and() {
        let on = [0b11u64];
        let off = [0b00u64, 0b01, 0b10];
        let cover = espresso(2, &on, &off).unwrap();
        assert_eq!(cover.cube_count(), 1);
        assert_eq!(cover.literal_count(), 2);
    }

    #[test]
    fn dont_cares_enable_expansion() {
        // ON {11}, OFF {00}: one literal suffices.
        let cover = espresso(2, &[0b11], &[0b00]).unwrap();
        assert_eq!(cover.literal_count(), 1);
    }

    #[test]
    fn empty_on_gives_constant_zero() {
        let cover = espresso(4, &[], &[1, 2, 3]).unwrap();
        assert!(cover.is_empty());
    }

    #[test]
    fn contradiction_rejected() {
        let err = espresso(2, &[1], &[1]).unwrap_err();
        assert_eq!(err, MinimizeError::Contradiction { minterm: 1 });
    }

    #[test]
    fn no_off_set_collapses_to_tautology() {
        let cover = espresso(3, &[0, 3, 7], &[]).unwrap();
        assert_eq!(cover.cube_count(), 1);
        assert_eq!(cover.literal_count(), 0, "free expansion to constant 1");
    }
}
