use std::fmt;

use crate::{Cover, Cube};

/// A Boolean expression tree, used to render synthesised functions as
/// complex gates and to evaluate them inside the gate-level simulator.
///
/// # Examples
///
/// ```
/// use a4a_boolmin::Expr;
///
/// // f = a & !b | c
/// let f = Expr::or(vec![
///     Expr::and(vec![Expr::var(0), Expr::not(Expr::var(1))]),
///     Expr::var(2),
/// ]);
/// assert!(f.eval(0b001));
/// assert!(!f.eval(0b010));
/// assert!(f.eval(0b100));
/// assert_eq!(f.support(), vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant.
    Const(bool),
    /// A variable reference by index.
    Var(usize),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction of all operands (empty = constant 1).
    And(Vec<Expr>),
    /// Disjunction of all operands (empty = constant 0).
    Or(Vec<Expr>),
}

impl Expr {
    /// A variable leaf.
    pub fn var(index: usize) -> Expr {
        Expr::Var(index)
    }

    /// A constant leaf.
    pub fn constant(value: bool) -> Expr {
        Expr::Const(value)
    }

    /// Negation, folding double negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        match e {
            Expr::Not(inner) => *inner,
            Expr::Const(v) => Expr::Const(!v),
            other => Expr::Not(Box::new(other)),
        }
    }

    /// N-ary AND with constant folding and single-operand collapse.
    pub fn and(mut operands: Vec<Expr>) -> Expr {
        operands.retain(|e| *e != Expr::Const(true));
        if operands.contains(&Expr::Const(false)) {
            return Expr::Const(false);
        }
        match operands.len() {
            0 => Expr::Const(true),
            1 => operands.pop().expect("length checked"),
            _ => Expr::And(operands),
        }
    }

    /// N-ary OR with constant folding and single-operand collapse.
    pub fn or(mut operands: Vec<Expr>) -> Expr {
        operands.retain(|e| *e != Expr::Const(false));
        if operands.contains(&Expr::Const(true)) {
            return Expr::Const(true);
        }
        match operands.len() {
            0 => Expr::Const(false),
            1 => operands.pop().expect("length checked"),
            _ => Expr::Or(operands),
        }
    }

    /// Builds a sum-of-products expression from a cover.
    pub fn from_cover(cover: &Cover) -> Expr {
        Expr::or(cover.cubes().iter().map(Expr::from_cube).collect())
    }

    /// Builds a product term from a cube.
    pub fn from_cube(cube: &Cube) -> Expr {
        Expr::and(
            cube.literals()
                .map(|(var, pos)| {
                    if pos {
                        Expr::var(var)
                    } else {
                        Expr::not(Expr::var(var))
                    }
                })
                .collect(),
        )
    }

    /// Evaluates on an assignment (bit `i` = variable `i`).
    pub fn eval(&self, assignment: u64) -> bool {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(i) => (assignment >> i) & 1 == 1,
            Expr::Not(e) => !e.eval(assignment),
            Expr::And(es) => es.iter().all(|e| e.eval(assignment)),
            Expr::Or(es) => es.iter().any(|e| e.eval(assignment)),
        }
    }

    /// Sorted list of distinct variables appearing in the expression.
    pub fn support(&self) -> Vec<usize> {
        let mut vars = Vec::new();
        self.collect_support(&mut vars);
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    fn collect_support(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(i) => out.push(*i),
            Expr::Not(e) => e.collect_support(out),
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_support(out);
                }
            }
        }
    }

    /// Number of literal occurrences (complexity measure used for gate
    /// sizing).
    pub fn literal_count(&self) -> u32 {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(_) => 1,
            Expr::Not(e) => e.literal_count(),
            Expr::And(es) | Expr::Or(es) => es.iter().map(Expr::literal_count).sum(),
        }
    }

    /// Rewrites variable indices through a mapping function (used when
    /// embedding a locally-numbered function into a global netlist).
    pub fn map_vars(&self, f: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Const(v) => Expr::Const(*v),
            Expr::Var(i) => Expr::Var(f(*i)),
            Expr::Not(e) => Expr::Not(Box::new(e.map_vars(f))),
            Expr::And(es) => Expr::And(es.iter().map(|e| e.map_vars(f)).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(|e| e.map_vars(f)).collect()),
        }
    }

    /// Renders with variable names.
    pub fn format_with(&self, names: &[String]) -> String {
        self.render(names, 0)
    }

    fn render(&self, names: &[String], prec: u8) -> String {
        // precedence: Or=1, And=2, Not/leaf=3
        match self {
            Expr::Const(v) => if *v { "1" } else { "0" }.to_string(),
            Expr::Var(i) => names
                .get(*i)
                .cloned()
                .unwrap_or_else(|| format!("v{i}")),
            Expr::Not(e) => format!("!{}", e.render(names, 3)),
            Expr::And(es) => {
                let body = es
                    .iter()
                    .map(|e| e.render(names, 2))
                    .collect::<Vec<_>>()
                    .join(" & ");
                if prec > 2 {
                    format!("({body})")
                } else {
                    body
                }
            }
            Expr::Or(es) => {
                let body = es
                    .iter()
                    .map(|e| e.render(names, 1))
                    .collect::<Vec<_>>()
                    .join(" | ");
                if prec > 1 {
                    format!("({body})")
                } else {
                    body
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(&[], 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{minimize, Minimize};

    #[test]
    fn constructors_fold_constants() {
        assert_eq!(Expr::and(vec![]), Expr::Const(true));
        assert_eq!(Expr::or(vec![]), Expr::Const(false));
        assert_eq!(
            Expr::and(vec![Expr::var(0), Expr::Const(false)]),
            Expr::Const(false)
        );
        assert_eq!(
            Expr::or(vec![Expr::var(0), Expr::Const(true)]),
            Expr::Const(true)
        );
        assert_eq!(Expr::and(vec![Expr::var(1)]), Expr::var(1));
        assert_eq!(Expr::not(Expr::not(Expr::var(2))), Expr::var(2));
        assert_eq!(Expr::not(Expr::Const(true)), Expr::Const(false));
    }

    #[test]
    fn eval_matches_semantics() {
        let f = Expr::or(vec![
            Expr::and(vec![Expr::var(0), Expr::not(Expr::var(1))]),
            Expr::var(2),
        ]);
        for m in 0..8u64 {
            let a = m & 1 == 1;
            let b = m & 2 == 2;
            let c = m & 4 == 4;
            assert_eq!(f.eval(m), (a && !b) || c);
        }
    }

    #[test]
    fn from_cover_agrees_with_cover() {
        let on = [0b011u64, 0b101, 0b110, 0b111];
        let off = [0b000u64, 0b001, 0b010, 0b100];
        let cover = minimize(&Minimize::new(3).on(&on).off(&off)).unwrap();
        let expr = Expr::from_cover(&cover);
        for m in 0..8u64 {
            assert_eq!(expr.eval(m), cover.eval(m));
        }
        assert_eq!(expr.literal_count(), cover.literal_count());
    }

    #[test]
    fn support_and_map_vars() {
        let f = Expr::and(vec![Expr::var(3), Expr::not(Expr::var(1))]);
        assert_eq!(f.support(), vec![1, 3]);
        let g = f.map_vars(&|i| i + 10);
        assert_eq!(g.support(), vec![11, 13]);
    }

    #[test]
    fn rendering_uses_precedence() {
        let names: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let f = Expr::and(vec![
            Expr::or(vec![Expr::var(0), Expr::var(1)]),
            Expr::not(Expr::var(2)),
        ]);
        assert_eq!(f.format_with(&names), "(a | b) & !c");
        let g = Expr::or(vec![
            Expr::and(vec![Expr::var(0), Expr::var(1)]),
            Expr::var(2),
        ]);
        assert_eq!(g.format_with(&names), "a & b | c");
    }

    #[test]
    fn display_without_names() {
        let f = Expr::not(Expr::var(4));
        assert_eq!(f.to_string(), "!v4");
    }

    #[test]
    fn empty_cover_renders_zero() {
        let cover = Cover::new(2);
        assert_eq!(Expr::from_cover(&cover), Expr::Const(false));
    }
}
