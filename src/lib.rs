//! Umbrella crate for the A4A multiphase-buck reproduction.
//!
//! Everything is re-exported from the [`a4a`] flow crate; see the README
//! and the `examples/` directory for entry points.

pub use a4a::*;
